//! Cross-record line memoization: the **LineCache**.
//!
//! WHOIS records are machine-generated from a small set of registrar
//! templates (§4 of the paper clusters the whole com/net/org population
//! into a few thousand layouts), so the same boilerplate and title lines
//! recur across millions of records. The per-unique-line potentials of
//! the training engine (`whois-crf::TrainEngine`) exploit this for
//! training; the LineCache brings the same idea to the parse path.
//!
//! For each distinct **(line text, blank-gap flag, previous-line text)**
//! context (hashed by `whois_tokenize::context_hash`, which provably
//! determines the line's feature bag — see DESIGN.md §11) the cache
//! stores a [`CachedLine`]: the interned feature-ID row, the per-label
//! **emission row**, the **edge row** (base transitions + pair-weight
//! blocks, the potentials entering the line's position), and the line's
//! capped `p:` word window (needed to annotate a following uncached
//! line). Emission and edge rows are computed once with exactly the
//! additions, in exactly the order, of `Crf::score_table_into`
//! ([`Crf::emission_row_into`] / [`Crf::edge_row_into`]), so a
//! `ScoreTable` assembled by concatenating cached rows is bit-identical
//! to the one the uncached path builds — Viterbi then returns the same
//! path, and the parse output is bit-identical. That equivalence is the
//! cache's contract, enforced by proptests.
//!
//! Structure: a **sharded, capacity-bounded LRU** (the L2, shared by all
//! workers of an engine and, in `whois-serve`, by successive engines
//! across model hot swaps) under per-worker **L1** hash maps that live
//! in each [`ParseScratch`](crate::ParseScratch) — repeat lines within a
//! worker's chunk hit without touching a lock. Keys mix a per-level salt
//! (the two CRF levels have different dictionaries) and the cache
//! **generation**: bumping the generation on model install makes every
//! old entry unreachable instantly, no sweep required, and a `CachedLine`
//! additionally records the generation it was computed under so even a
//! 64-bit key collision across generations cannot serve a stale row.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Default L2 capacity (entries across all shards). WHOIS line-context
/// vocabularies are small relative to record volume — the paper's few
/// thousand templates share their boilerplate — so this comfortably
/// holds the working set of a large crawl.
pub const DEFAULT_LINE_CACHE_CAPACITY: usize = 32_768;

/// Default shard count for the L2.
pub const DEFAULT_LINE_CACHE_SHARDS: usize = 8;

/// Per-worker L1 bound: the scratch-local map is cleared when it grows
/// past this many entries (it holds `Arc`s into the L2, so clearing is
/// cheap and re-misses land in the L2).
pub(crate) const L1_MAX_ENTRIES: usize = 16_384;

/// Lookups per adaptive-bypass accounting epoch (see
/// [`LineCache::with_bypass_floor`]).
pub(crate) const BYPASS_EPOCH: u64 = 2048;

/// While bypassed, every Nth record still takes the cached path so the
/// epoch counters keep measuring the would-be hit rate and the cache can
/// re-engage when the workload turns template-heavy again.
pub(crate) const BYPASS_PROBE_INTERVAL: u64 = 16;

/// Default hit-rate floor for the adaptive bypass where it is enabled
/// (the serve daemon and the benches). The uniform-corpus line-cache
/// bench sits near 0.31 observed hit rate — all eviction churn, no
/// payoff — while template-skewed WHOIS traffic runs at 0.95+.
pub const DEFAULT_BYPASS_FLOOR: f64 = 0.35;

/// Key salt for the first (block) level.
pub(crate) const LEVEL1_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Key salt for the second (registrant) level.
pub(crate) const LEVEL2_SALT: u64 = 0xc2b2_ae3d_27d4_eb4f;

/// Compose the full cache key of a line: its tokenizer context hash
/// mixed with the level salt and the cache generation (FNV-1a over the
/// three words). Mixing the generation in makes every pre-swap entry
/// unreachable the instant a new model installs.
pub fn compose_key(context_hash: u64, salt: u64, generation: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for word in [salt, generation, context_hash] {
        for b in word.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// Everything memoized for one distinct line context, shared by `Arc`
/// between the L2, the per-worker L1s, and in-flight assemblies.
#[derive(Debug)]
pub struct CachedLine {
    /// Interned feature-ID row (sorted, deduplicated dictionary ids).
    pub(crate) feats: Box<[u32]>,
    /// Emission potentials, length `n` of the owning level.
    pub(crate) emit: Box<[f64]>,
    /// Edge potentials entering this line's position (base transitions
    /// plus pair blocks), length `n²`. Unused when the line is first.
    pub(crate) edge: Box<[f64]>,
    /// The line's capped `w:` window — what a following uncached line's
    /// `p:` features echo.
    pub(crate) window: Box<[Box<str>]>,
    /// Cache generation this entry was computed under.
    pub(crate) generation: u64,
}

impl CachedLine {
    /// The interned feature-ID row.
    pub fn features(&self) -> &[u32] {
        &self.feats
    }

    /// The generation this entry was computed under.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// Point-in-time counters of a [`LineCache`], serialized into the serve
/// daemon's `STATS` reply.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LineCacheStats {
    /// Configured capacity (0 = caching disabled).
    pub capacity: u64,
    /// Entries currently resident in the L2.
    pub entries: u64,
    /// Lookups answered by a per-worker L1 (no lock taken).
    pub l1_hits: u64,
    /// Lookups answered by the shared L2.
    pub l2_hits: u64,
    /// Lookups that computed the line from scratch.
    pub misses: u64,
    /// Entries evicted from the L2 by capacity pressure.
    pub evictions: u64,
    /// L2 hits rejected because the entry's generation did not match
    /// the caller's (possible only via 64-bit key collision across a
    /// model swap; counted to make "never serve stale" observable).
    pub stale_rejects: u64,
    /// `(l1_hits + l2_hits) / lookups`, 0.0 before any lookup.
    pub hit_rate: f64,
    /// Whether the adaptive bypass is currently routing records around
    /// the cache (low observed hit rate; see
    /// [`LineCache::with_bypass_floor`]).
    #[serde(default)]
    pub bypass_active: bool,
    /// Records routed around the cache by the adaptive bypass.
    #[serde(default)]
    pub bypassed_records: u64,
}

/// Intrusive-list slot of one shard's LRU slab.
struct Slot {
    key: u64,
    line: Arc<CachedLine>,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// One L2 shard: key → slab index, slab with intrusive LRU links.
struct Shard {
    map: HashMap<u64, usize>,
    slab: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl Shard {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        match self.head {
            NIL => self.tail = idx,
            h => self.slab[h].prev = idx,
        }
        self.head = idx;
    }

    fn get(&mut self, key: u64) -> Option<Arc<CachedLine>> {
        let idx = *self.map.get(&key)?;
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(self.slab[idx].line.clone())
    }

    /// Insert, evicting the LRU entry when at `capacity`. Returns the
    /// number of evictions (0 or 1).
    fn insert(&mut self, key: u64, line: Arc<CachedLine>, capacity: usize) -> u64 {
        if let Some(&idx) = self.map.get(&key) {
            // Re-insert under the same key (e.g. two workers raced on
            // the same miss): refresh the value and recency.
            self.slab[idx].line = line;
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return 0;
        }
        let mut evicted = 0;
        if self.map.len() >= capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            self.map.remove(&self.slab[lru].key);
            self.free.push(lru);
            evicted = 1;
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slab[idx] = Slot {
                    key,
                    line,
                    prev: NIL,
                    next: NIL,
                };
                idx
            }
            None => {
                self.slab.push(Slot {
                    key,
                    line,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }
}

/// The shared L2: a sharded, capacity-bounded, generation-versioned LRU
/// of [`CachedLine`]s. See the module docs for the design.
pub struct LineCache {
    shards: Box<[Mutex<Shard>]>,
    per_shard: usize,
    capacity: usize,
    generation: AtomicU64,
    l1_hits: AtomicU64,
    l2_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    stale_rejects: AtomicU64,
    /// Adaptive bypass: when the observed hit rate over an epoch of
    /// [`BYPASS_EPOCH`] lookups stays under this floor, the engine stops
    /// routing records through the cache (uniform traffic turns the
    /// cache into pure eviction churn). `0.0` disables the bypass — the
    /// conservative default; serve and the benches opt in.
    bypass_floor: f64,
    epoch_lookups: AtomicU64,
    epoch_hits: AtomicU64,
    bypassed: AtomicBool,
    bypassed_records: AtomicU64,
    probe_tick: AtomicU64,
}

impl std::fmt::Debug for LineCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LineCache")
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .field("generation", &self.generation())
            .finish()
    }
}

impl LineCache {
    /// Cache with `capacity` total entries across `shards` shards, at
    /// generation 1. `capacity == 0` disables caching entirely
    /// ([`enabled`](Self::enabled) returns false and the engine takes
    /// the plain uncached path). A zero `shards` is treated as 1.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards).max(usize::from(capacity > 0));
        LineCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard,
            capacity,
            generation: AtomicU64::new(1),
            l1_hits: AtomicU64::new(0),
            l2_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stale_rejects: AtomicU64::new(0),
            bypass_floor: 0.0,
            epoch_lookups: AtomicU64::new(0),
            epoch_hits: AtomicU64::new(0),
            bypassed: AtomicBool::new(false),
            bypassed_records: AtomicU64::new(0),
            probe_tick: AtomicU64::new(0),
        }
    }

    /// Enable the adaptive bypass with a hit-rate `floor` in `[0, 1]`
    /// (`0.0` keeps it off). When an epoch of [`BYPASS_EPOCH`] lookups
    /// closes with `hit_rate < floor`, [`admit_record`](Self::admit_record)
    /// starts steering records around the cache, still admitting every
    /// [`BYPASS_PROBE_INTERVAL`]th record so the next epochs keep
    /// measuring; a probing epoch that clears the floor re-engages the
    /// cache. Bypassed records parse on an uncached tier with identical
    /// output, so this only trades memoization for churn, never
    /// correctness.
    pub fn with_bypass_floor(mut self, floor: f64) -> Self {
        self.bypass_floor = floor.clamp(0.0, 1.0);
        self
    }

    /// Cache with the default capacity and shard count.
    pub fn with_default_capacity() -> Self {
        LineCache::new(DEFAULT_LINE_CACHE_CAPACITY, DEFAULT_LINE_CACHE_SHARDS)
    }

    /// A disabled cache (capacity 0): every parse takes the plain
    /// uncached path — the baseline engine configuration.
    pub fn disabled() -> Self {
        LineCache::new(0, 1)
    }

    /// Whether caching is enabled (capacity > 0).
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current generation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Move to `generation` (monotonic; called by the model registry
    /// right before building the engine for a newly installed model).
    /// Old-generation entries become unreachable — their keys mix the
    /// old generation — and age out of the LRU; no sweep happens.
    pub fn set_generation(&self, generation: u64) {
        self.generation.fetch_max(generation, Ordering::SeqCst);
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // High bits pick the shard; low bits index the shard's HashMap.
        let idx = (key >> 48) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// Look up `key`, expecting an entry computed under `generation`.
    /// Returns `None` (and counts a stale reject) if a colliding entry
    /// from another generation is found. Does **not** bump hit/miss
    /// counters — workers batch those through
    /// [`record_lookups`](Self::record_lookups).
    pub fn get(&self, key: u64, generation: u64) -> Option<Arc<CachedLine>> {
        if !self.enabled() {
            return None;
        }
        let line = self.shard(key).lock().get(key)?;
        if line.generation != generation {
            self.stale_rejects.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(line)
    }

    /// Insert a computed line under `key`. No-op when disabled.
    pub fn insert(&self, key: u64, line: Arc<CachedLine>) {
        if !self.enabled() {
            return;
        }
        let evicted = self.shard(key).lock().insert(key, line, self.per_shard);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Whether the adaptive bypass is currently steering records away.
    pub fn bypass_active(&self) -> bool {
        self.bypassed.load(Ordering::Relaxed)
    }

    /// The configured bypass floor (`0.0` = bypass disabled).
    pub fn bypass_floor(&self) -> f64 {
        self.bypass_floor
    }

    /// Decide whether the next record should go through the cache.
    /// Always true unless the adaptive bypass is engaged; while
    /// bypassed, every [`BYPASS_PROBE_INTERVAL`]th record still probes
    /// the cached path. Engines call this once per record before
    /// choosing a parse path.
    pub fn admit_record(&self) -> bool {
        if self.bypass_floor == 0.0 || !self.bypassed.load(Ordering::Relaxed) {
            return true;
        }
        let tick = self.probe_tick.fetch_add(1, Ordering::Relaxed);
        if tick.is_multiple_of(BYPASS_PROBE_INTERVAL) {
            true
        } else {
            self.bypassed_records.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Fold one record's lookup outcomes into the shared counters (one
    /// atomic round-trip per counter per record, not per line).
    pub fn record_lookups(&self, l1_hits: u64, l2_hits: u64, misses: u64) {
        if l1_hits > 0 {
            self.l1_hits.fetch_add(l1_hits, Ordering::Relaxed);
        }
        if l2_hits > 0 {
            self.l2_hits.fetch_add(l2_hits, Ordering::Relaxed);
        }
        if misses > 0 {
            self.misses.fetch_add(misses, Ordering::Relaxed);
        }
        if self.bypass_floor > 0.0 {
            self.account_epoch(l1_hits + l2_hits, l1_hits + l2_hits + misses);
        }
    }

    /// Adaptive-bypass epoch accounting: after every [`BYPASS_EPOCH`]
    /// lookups, compare the epoch's hit rate against the floor and flip
    /// the bypass accordingly. The swap-reset is racy across workers
    /// (a concurrent record's counts may land in either epoch) but every
    /// outcome is a valid sample of recent traffic — the decision only
    /// steers memoization, never correctness.
    fn account_epoch(&self, hits: u64, lookups: u64) {
        self.epoch_hits.fetch_add(hits, Ordering::Relaxed);
        let seen = self.epoch_lookups.fetch_add(lookups, Ordering::Relaxed) + lookups;
        if seen >= BYPASS_EPOCH {
            let total = self.epoch_lookups.swap(0, Ordering::Relaxed);
            let hit = self.epoch_hits.swap(0, Ordering::Relaxed);
            if total > 0 {
                let rate = hit as f64 / total as f64;
                self.bypassed
                    .store(rate < self.bypass_floor, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> LineCacheStats {
        let l1_hits = self.l1_hits.load(Ordering::Relaxed);
        let l2_hits = self.l2_hits.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        let lookups = l1_hits + l2_hits + misses;
        LineCacheStats {
            capacity: self.capacity as u64,
            entries: self.len() as u64,
            l1_hits,
            l2_hits,
            misses,
            evictions: self.evictions.load(Ordering::Relaxed),
            stale_rejects: self.stale_rejects.load(Ordering::Relaxed),
            hit_rate: if lookups > 0 {
                (l1_hits + l2_hits) as f64 / lookups as f64
            } else {
                0.0
            },
            bypass_active: self.bypass_active(),
            bypassed_records: self.bypassed_records.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(generation: u64, tag: u32) -> Arc<CachedLine> {
        Arc::new(CachedLine {
            feats: vec![tag].into(),
            emit: vec![tag as f64].into(),
            edge: vec![tag as f64].into(),
            window: Vec::new().into(),
            generation,
        })
    }

    #[test]
    fn get_returns_inserted_entries_and_respects_generation() {
        let cache = LineCache::new(8, 2);
        cache.insert(42, entry(1, 7));
        assert_eq!(cache.get(42, 1).unwrap().features(), &[7]);
        // A generation mismatch on the same key is rejected and counted.
        assert!(cache.get(42, 2).is_none());
        assert_eq!(cache.stats().stale_rejects, 1);
        assert!(cache.get(41, 1).is_none());
    }

    #[test]
    fn capacity_bounds_each_shard_and_counts_evictions() {
        let cache = LineCache::new(4, 1);
        for k in 0..10u64 {
            cache.insert(k, entry(1, k as u32));
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().evictions, 6);
        // LRU: the most recent four keys survive.
        for k in 6..10u64 {
            assert!(cache.get(k, 1).is_some(), "key {k}");
        }
        assert!(cache.get(0, 1).is_none());
    }

    #[test]
    fn lru_order_follows_recency_of_gets() {
        let cache = LineCache::new(2, 1);
        cache.insert(1, entry(1, 1));
        cache.insert(2, entry(1, 2));
        // Touch 1, then insert 3: 2 is now the LRU and gets evicted.
        assert!(cache.get(1, 1).is_some());
        cache.insert(3, entry(1, 3));
        assert!(cache.get(1, 1).is_some());
        assert!(cache.get(2, 1).is_none());
        assert!(cache.get(3, 1).is_some());
    }

    #[test]
    fn disabled_cache_accepts_nothing() {
        let cache = LineCache::disabled();
        assert!(!cache.enabled());
        cache.insert(1, entry(1, 1));
        assert!(cache.get(1, 1).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn capacity_one_always_holds_the_latest_entry() {
        let cache = LineCache::new(1, 4);
        for k in 0..20u64 {
            cache.insert(k, entry(1, k as u32));
            assert!(cache.get(k, 1).is_some(), "key {k} right after insert");
        }
        // Total residency never exceeds sharded capacity.
        assert!(cache.len() <= 4, "len = {}", cache.len());
    }

    #[test]
    fn compose_key_separates_levels_and_generations() {
        let ctx = 0xdead_beef_u64;
        let a = compose_key(ctx, LEVEL1_SALT, 1);
        assert_ne!(a, compose_key(ctx, LEVEL2_SALT, 1), "level salt");
        assert_ne!(a, compose_key(ctx, LEVEL1_SALT, 2), "generation");
        assert_eq!(a, compose_key(ctx, LEVEL1_SALT, 1), "deterministic");
    }

    #[test]
    fn generation_is_monotonic() {
        let cache = LineCache::new(8, 1);
        assert_eq!(cache.generation(), 1);
        cache.set_generation(5);
        cache.set_generation(3);
        assert_eq!(cache.generation(), 5);
    }

    #[test]
    fn counters_accumulate_and_hit_rate_is_computed() {
        let cache = LineCache::new(8, 1);
        cache.record_lookups(6, 2, 2);
        let s = cache.stats();
        assert_eq!((s.l1_hits, s.l2_hits, s.misses), (6, 2, 2));
        assert!((s.hit_rate - 0.8).abs() < 1e-12);
        let fresh = LineCache::new(8, 1);
        assert_eq!(fresh.stats().hit_rate, 0.0);
    }

    #[test]
    fn bypass_engages_on_low_hit_rate_and_recovers_on_high() {
        let cache = LineCache::new(8, 1).with_bypass_floor(0.5);
        assert!(cache.admit_record(), "fresh cache admits");
        // An epoch of pure misses: the bypass engages.
        cache.record_lookups(0, 0, BYPASS_EPOCH);
        assert!(cache.bypass_active());
        // While bypassed, only every Nth record probes the cache.
        let admitted = (0..BYPASS_PROBE_INTERVAL)
            .filter(|_| cache.admit_record())
            .count();
        assert_eq!(admitted, 1);
        assert!(cache.stats().bypass_active);
        assert!(cache.stats().bypassed_records > 0);
        // A probing epoch of pure hits: the cache re-engages.
        cache.record_lookups(BYPASS_EPOCH, 0, 0);
        assert!(!cache.bypass_active());
        assert!(cache.admit_record() && cache.admit_record());
    }

    #[test]
    fn zero_floor_never_bypasses() {
        let cache = LineCache::new(8, 1);
        assert_eq!(cache.bypass_floor(), 0.0);
        cache.record_lookups(0, 0, BYPASS_EPOCH * 4);
        assert!(!cache.bypass_active());
        assert!((0..100).all(|_| cache.admit_record()));
        assert_eq!(cache.stats().bypassed_records, 0);
    }

    #[test]
    fn line_cache_stats_json_without_bypass_fields_still_parses() {
        // Forward compatibility: snapshots serialized before the bypass
        // fields existed must still deserialize.
        let old = r#"{"capacity":8,"entries":1,"l1_hits":2,"l2_hits":3,"misses":4,"evictions":0,"stale_rejects":0,"hit_rate":0.5}"#;
        let s: LineCacheStats = serde_json::from_str(old).unwrap();
        assert_eq!(s.misses, 4);
        assert!(!s.bypass_active);
        assert_eq!(s.bypassed_records, 0);
    }

    #[test]
    fn concurrent_inserts_and_gets_stay_bounded() {
        let cache = Arc::new(LineCache::new(64, 4));
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let cache = cache.clone();
                scope.spawn(move || {
                    for i in 0..500u64 {
                        let k = w * 1000 + i;
                        cache.insert(k, entry(1, k as u32));
                        let _ = cache.get(k, 1);
                    }
                });
            }
        });
        assert!(cache.len() <= 64, "len = {}", cache.len());
    }
}
