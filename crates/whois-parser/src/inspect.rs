//! Model introspection: the paper's Table 1 and Figure 1.
//!
//! After training, "it can be instructive to examine the features with the
//! highest statistical weights" (§3.4). [`top_emission_features`]
//! reproduces Table 1 (heaviest word features per label) and
//! [`top_transition_features`] reproduces Figure 1 (the features the CRF
//! uses to detect the end of one block and the beginning of another).

use crate::level::LevelParser;
use serde::de::DeserializeOwned;
use serde::Serialize;
use whois_model::Label;

/// One feature with its learned weight.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedFeature {
    /// The feature string (e.g. `w:organization@T`).
    pub feature: String,
    /// Its weight θ.
    pub weight: f64,
}

/// Table 1: for each label, the `k` emission features with the largest
/// positive weights.
pub fn top_emission_features<L: Label + Serialize + DeserializeOwned>(
    parser: &LevelParser<L>,
    k: usize,
) -> Vec<(L, Vec<WeightedFeature>)> {
    let crf = parser.crf();
    let dict = parser.encoder().dictionary();
    L::ALL
        .iter()
        .map(|&label| {
            let j = label.index();
            let mut feats: Vec<WeightedFeature> = dict
                .iter()
                .map(|(id, name)| WeightedFeature {
                    feature: name.to_string(),
                    weight: crf.weights()[crf.emit_index(id, j)],
                })
                .collect();
            feats.sort_by(|a, b| b.weight.total_cmp(&a.weight));
            feats.truncate(k);
            (label, feats)
        })
        .collect()
}

/// Figure 1: for each ordered label pair `(from, to)` with `from != to`,
/// the `k` pair features with the largest positive weights on that
/// transition (plus the bare transition weight itself).
pub fn top_transition_features<L: Label + Serialize + DeserializeOwned>(
    parser: &LevelParser<L>,
    k: usize,
) -> Vec<(L, L, f64, Vec<WeightedFeature>)> {
    let crf = parser.crf();
    let dict = parser.encoder().dictionary();
    let mut out = Vec::new();
    for &from in L::ALL {
        for &to in L::ALL {
            if from == to {
                continue;
            }
            let (i, j) = (from.index(), to.index());
            let base = crf.weights()[crf.trans_index(i, j)];
            let mut feats: Vec<WeightedFeature> = dict
                .iter()
                .filter_map(|(id, name)| {
                    crf.pair_index(id, i, j).map(|idx| WeightedFeature {
                        feature: name.to_string(),
                        weight: crf.weights()[idx],
                    })
                })
                .collect();
            feats.sort_by(|a, b| b.weight.total_cmp(&a.weight));
            feats.truncate(k);
            out.push((from, to, base, feats));
        }
    }
    out
}

/// Render Table 1 as aligned text (used by the `repro-table1` binary).
pub fn render_emission_table<L: Label + Serialize + DeserializeOwned>(
    parser: &LevelParser<L>,
    k: usize,
) -> String {
    let mut s = String::new();
    s.push_str(&format!("{:<12} top-weight features\n", "label"));
    for (label, feats) in top_emission_features(parser, k) {
        let names: Vec<String> = feats
            .iter()
            .filter(|f| f.weight > 0.0)
            .map(|f| pretty(&f.feature))
            .collect();
        s.push_str(&format!("{:<12} {}\n", label.name(), names.join(", ")));
    }
    s
}

/// Render Figure 1's strongest block-to-block transition cues as text.
pub fn render_transition_graph<L: Label + Serialize + DeserializeOwned>(
    parser: &LevelParser<L>,
    per_edge: usize,
) -> String {
    let mut rows = top_transition_features(parser, per_edge);
    // Strongest edges first, judged by their best pair feature.
    rows.sort_by(|a, b| {
        let wa = a.3.first().map_or(f64::NEG_INFINITY, |f| f.weight);
        let wb = b.3.first().map_or(f64::NEG_INFINITY, |f| f.weight);
        wb.total_cmp(&wa)
    });
    let mut s = String::new();
    for (from, to, base, feats) in rows.iter().take(14) {
        let names: Vec<String> = feats
            .iter()
            .filter(|f| f.weight > 0.05)
            .map(|f| pretty(&f.feature))
            .collect();
        if names.is_empty() {
            continue;
        }
        s.push_str(&format!(
            "{:>10} -> {:<10} (base {:+.2})  {}\n",
            from.name(),
            to.name(),
            base,
            names.join(", ")
        ));
    }
    s
}

/// Human-readable feature name: `w:owner@T` → `owner@T`, `m:NL` → `NL`.
fn pretty(feature: &str) -> String {
    feature
        .strip_prefix("w:")
        .or_else(|| feature.strip_prefix("m:"))
        .or_else(|| feature.strip_prefix("c:"))
        .unwrap_or(feature)
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::TrainExample;
    use crate::level::ParserConfig;
    use whois_model::BlockLabel;

    fn parser() -> LevelParser<BlockLabel> {
        use BlockLabel::*;
        let mut examples = Vec::new();
        for i in 0..12 {
            examples.push(TrainExample {
                text: format!(
                    "Domain Name: D{i}.COM\nRegistrar: Reg{i}\nCreation Date: 201{}-01-02\n\
                     Registrant Organization: Org {i}\nAdmin Name: Person {i}\nboilerplate legal text",
                    i % 10
                ),
                labels: vec![Domain, Registrar, Date, Registrant, Other, Null],
            });
        }
        LevelParser::train(&examples, &ParserConfig::default())
    }

    #[test]
    fn emission_table_has_intuitive_top_features() {
        let p = parser();
        let table = top_emission_features(&p, 8);
        assert_eq!(table.len(), 6);
        let find = |label: BlockLabel| {
            table
                .iter()
                .find(|(l, _)| *l == label)
                .unwrap()
                .1
                .iter()
                .map(|f| f.feature.clone())
                .collect::<Vec<_>>()
        };
        // The word "registrant@T" should be among the registrant label's
        // strongest cues; "registrar@T" for registrar (Table 1's finding).
        assert!(
            find(BlockLabel::Registrant)
                .iter()
                .any(|f| f.contains("registrant@T")),
            "registrant features: {:?}",
            find(BlockLabel::Registrant)
        );
        assert!(find(BlockLabel::Registrar)
            .iter()
            .any(|f| f.contains("registrar@T")));
        assert!(find(BlockLabel::Date)
            .iter()
            .any(|f| f.contains("date@T") || f.contains("creation@T") || f.contains("DATE")));
    }

    #[test]
    fn transition_features_cover_all_ordered_pairs() {
        let p = parser();
        let rows = top_transition_features(&p, 3);
        assert_eq!(rows.len(), 6 * 5);
        for (_, _, _, feats) in &rows {
            assert!(feats.len() <= 3);
        }
    }

    #[test]
    fn renders_are_nonempty_text() {
        let p = parser();
        let t = render_emission_table(&p, 5);
        assert!(t.contains("registrant"));
        assert!(t.lines().count() >= 7);
        let g = render_transition_graph(&p, 3);
        assert!(g.contains("->"));
    }

    #[test]
    fn pretty_strips_namespaces() {
        assert_eq!(pretty("w:owner@T"), "owner@T");
        assert_eq!(pretty("m:NL"), "NL");
        assert_eq!(pretty("c:DATE@V"), "DATE@V");
        assert_eq!(pretty("other"), "other");
    }
}
