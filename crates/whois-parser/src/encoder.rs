//! Feature encoding: raw record text → CRF [`Sequence`]s.
//!
//! The encoder owns the trimmed feature [`Dictionary`] plus the
//! [`FeatureOptions`] ablation switches, and decides which observation
//! features are *pair-eligible* (also generate `(y_{t-1}, y_t, x_t)`
//! features, eq. 8 of the paper): title-side words, layout markers, and
//! word classes — the kinds of features Figure 1 shows detecting block
//! transitions.

use serde::{Deserialize, Serialize};
use whois_crf::Sequence;
use whois_tokenize::{annotate_record_into, AnnotateScratch, Dictionary, FeatureSink};

/// Ablation switches over the feature families of §3.3.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureOptions {
    /// Keep the `@T`/`@V` title/value suffixes on word features.
    pub title_value: bool,
    /// Keep the layout markers (`NL`, `SHL`, `SYM`, `SEP`, ...).
    pub markers: bool,
    /// Keep the word-class features (`FIVEDIGIT`, `EMAIL`, ...).
    pub classes: bool,
    /// Generate pair features (observed transitions, eq. 8).
    pub pair_features: bool,
    /// Keep the previous-line context features (`p:`), which carry block
    /// discriminators like `Contact Type: registrant` onto following
    /// generically-titled lines.
    pub prev_line: bool,
}

impl Default for FeatureOptions {
    fn default() -> Self {
        FeatureOptions {
            title_value: true,
            markers: true,
            classes: true,
            pair_features: true,
            prev_line: true,
        }
    }
}

impl FeatureOptions {
    /// Apply the ablation switches to one raw feature string; `None`
    /// drops the feature entirely. Pure suffix surgery, so the result
    /// borrows from the input — no allocation.
    fn transform<'a>(&self, feature: &'a str) -> Option<&'a str> {
        if feature.starts_with("m:") {
            return self.markers.then_some(feature);
        }
        if feature.starts_with("c:") {
            if !self.classes {
                return None;
            }
            return Some(self.strip_side_if_disabled(feature));
        }
        if feature.starts_with("w:") {
            return Some(self.strip_side_if_disabled(feature));
        }
        if feature.starts_with("p:") {
            if !self.prev_line {
                return None;
            }
            return Some(feature);
        }
        Some(feature)
    }

    fn strip_side_if_disabled<'a>(&self, feature: &'a str) -> &'a str {
        if self.title_value {
            feature
        } else {
            feature
                .strip_suffix("@T")
                .or_else(|| feature.strip_suffix("@V"))
                .unwrap_or(feature)
        }
    }

    /// Wrap `inner` in a sink that applies these ablation switches to
    /// every streamed feature before forwarding it.
    pub fn filter_sink<S: FeatureSink>(self, inner: S) -> FilteredSink<S> {
        FilteredSink { opts: self, inner }
    }
}

/// [`FeatureSink`] adaptor applying [`FeatureOptions`] to each feature.
///
/// Dropped features never reach the inner sink; side suffixes are
/// stripped in place on the borrowed string when `title_value` is off.
#[derive(Debug)]
pub struct FilteredSink<S> {
    opts: FeatureOptions,
    inner: S,
}

impl<S> FilteredSink<S> {
    /// Recover the wrapped sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: FeatureSink> FeatureSink for FilteredSink<S> {
    fn begin_line(&mut self, text: &str) {
        self.inner.begin_line(text);
    }

    fn feature(&mut self, feature: &str) {
        if let Some(t) = self.opts.transform(feature) {
            self.inner.feature(t);
        }
    }

    fn end_line(&mut self) {
        self.inner.end_line();
    }
}

/// A training example: full record text plus the gold labels of its
/// non-empty lines (in `whois_model::non_empty_lines` order).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainExample<L> {
    /// The verbatim record text, blank lines included (they shape the
    /// `NL` markers).
    pub text: String,
    /// Gold labels, one per non-empty line.
    pub labels: Vec<L>,
}

/// Encodes record text into dense feature-id sequences.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Encoder {
    dict: Dictionary,
    opts: FeatureOptions,
}

impl Encoder {
    /// Build the dictionary from training texts, trimming open-class word
    /// features seen fewer than `min_word_count` times.
    pub fn fit<'a>(
        texts: impl IntoIterator<Item = &'a str>,
        opts: FeatureOptions,
        min_word_count: u32,
    ) -> Self {
        let mut builder = whois_tokenize::DictionaryBuilder::new();
        let mut scratch = AnnotateScratch::new();
        {
            let mut sink = opts.filter_sink(builder.as_sink());
            for text in texts {
                annotate_record_into(text, &mut scratch, &mut sink);
            }
        }
        Encoder {
            dict: builder.build(min_word_count),
            opts,
        }
    }

    /// The underlying dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// The ablation switches in effect.
    pub fn options(&self) -> FeatureOptions {
        self.opts
    }

    /// Encode record text into a [`Sequence`] (one position per non-empty
    /// line).
    pub fn encode_text(&self, text: &str) -> Sequence {
        let mut scratch = AnnotateScratch::new();
        self.encode_text_with(text, &mut scratch, Vec::new())
    }

    /// Encode using a caller-owned [`AnnotateScratch`] and spent row
    /// buffers — the steady-state path: once the scratch's interner has
    /// seen the record's feature vocabulary, no `String` is allocated.
    pub fn encode_text_with(
        &self,
        text: &str,
        scratch: &mut AnnotateScratch,
        row_buffers: Vec<Vec<u32>>,
    ) -> Sequence {
        let mut sink = self
            .opts
            .filter_sink(self.dict.encode_sink_with(row_buffers));
        annotate_record_into(text, scratch, &mut sink);
        Sequence::new(sink.into_inner().take_rows())
    }

    /// Encode a single labelable line given its layout context, reusing
    /// `scratch`'s buffers and recycling row buffers through `free` —
    /// one step of [`encode_text_with`](Self::encode_text_with) for
    /// callers that drive the record walk themselves (the line-cache
    /// miss path). The caller owns the scratch's previous-line window
    /// state (`AnnotateScratch::reset_context` / `set_prev_window`).
    pub fn encode_line_with(
        &self,
        line: &str,
        preceded_by_blank: bool,
        prev_indent: Option<usize>,
        scratch: &mut AnnotateScratch,
        free: &mut Vec<Vec<u32>>,
    ) -> Vec<u32> {
        let mut sink = self
            .opts
            .filter_sink(self.dict.encode_sink_with(std::mem::take(free)));
        scratch.annotate_line_into(&mut sink, line, preceded_by_blank, prev_indent);
        let mut inner = sink.into_inner();
        let row = inner.take_rows().pop().expect("one line was annotated");
        *free = inner.into_buffers();
        row
    }

    /// Pair eligibility per dictionary feature: title-side words, layout
    /// markers, and word classes (when pair features are enabled at all).
    pub fn pair_eligibility(&self) -> Vec<bool> {
        (0..self.dict.len() as u32)
            .map(|id| {
                if !self.opts.pair_features {
                    return false;
                }
                let name = self.dict.name(id);
                name.starts_with("m:")
                    || name.starts_with("c:")
                    || name.starts_with("p:")
                    || (name.starts_with("w:") && name.ends_with("@T"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str =
        "Domain Name: X.COM\n\nRegistrant Name: John Smith\nRegistrant Postal Code: 92093";

    fn encoder(opts: FeatureOptions) -> Encoder {
        Encoder::fit([SAMPLE, SAMPLE], opts, 1)
    }

    #[test]
    fn fit_then_encode_roundtrips_known_features() {
        let e = encoder(FeatureOptions::default());
        let seq = e.encode_text(SAMPLE);
        assert_eq!(seq.len(), 3);
        // Every position has at least one feature.
        assert!(seq.obs.iter().all(|p| !p.is_empty()));
        // Known feature present.
        assert!(e.dict.id("w:registrant@T").is_some());
        assert!(e.dict.id("c:FIVEDIGIT@V").is_some());
        assert!(e.dict.id("m:NL").is_some());
    }

    #[test]
    fn title_value_ablation_strips_suffixes() {
        let e = encoder(FeatureOptions {
            title_value: false,
            ..Default::default()
        });
        assert!(e.dict.id("w:registrant@T").is_none());
        assert!(e.dict.id("w:registrant").is_some());
        assert!(e.dict.id("c:FIVEDIGIT").is_some());
    }

    #[test]
    fn marker_ablation_drops_markers() {
        let e = encoder(FeatureOptions {
            markers: false,
            ..Default::default()
        });
        assert!(e.dict.id("m:NL").is_none());
        assert!(e.dict.id("m:SEP").is_none());
        assert!(e.dict.id("w:registrant@T").is_some());
    }

    #[test]
    fn class_ablation_drops_classes() {
        let e = encoder(FeatureOptions {
            classes: false,
            ..Default::default()
        });
        assert!(e.dict.id("c:FIVEDIGIT@V").is_none());
        assert!(e.dict.id("m:SEP").is_some());
    }

    #[test]
    fn pair_eligibility_covers_titles_markers_classes() {
        let e = encoder(FeatureOptions::default());
        let elig = e.pair_eligibility();
        assert_eq!(elig.len(), e.dict.len());
        let check = |name: &str, expect: bool| {
            let id = e.dict.id(name).unwrap() as usize;
            assert_eq!(elig[id], expect, "{name}");
        };
        check("w:registrant@T", true);
        check("w:john@V", false);
        check("m:NL", true);
        check("c:FIVEDIGIT@V", true);
    }

    #[test]
    fn pair_feature_ablation_disables_all() {
        let e = encoder(FeatureOptions {
            pair_features: false,
            ..Default::default()
        });
        assert!(e.pair_eligibility().iter().all(|&b| !b));
    }

    #[test]
    fn oov_words_are_dropped_at_encode_time() {
        let e = encoder(FeatureOptions::default());
        let seq = e.encode_text("Totally Unseen Words: zyzzyva qwxv");
        assert_eq!(seq.len(), 1);
        // Only structural features (SEP marker) survive.
        let names: Vec<&str> = seq.obs[0].iter().map(|&id| e.dict.name(id)).collect();
        assert!(names
            .iter()
            .all(|n| n.starts_with("m:") || n.starts_with("c:")));
    }

    #[test]
    fn serde_roundtrip() {
        let e = encoder(FeatureOptions::default());
        let json = serde_json::to_string(&e).unwrap();
        let back: Encoder = serde_json::from_str(&json).unwrap();
        assert_eq!(back.encode_text(SAMPLE), e.encode_text(SAMPLE));
    }

    #[test]
    fn scratch_encode_matches_fresh_encode() {
        for opts in [
            FeatureOptions::default(),
            FeatureOptions {
                title_value: false,
                ..Default::default()
            },
            FeatureOptions {
                markers: false,
                prev_line: false,
                ..Default::default()
            },
        ] {
            let e = encoder(opts);
            let mut scratch = AnnotateScratch::new();
            let got = e.encode_text_with(SAMPLE, &mut scratch, Vec::new());
            assert_eq!(got, e.encode_text(SAMPLE));
        }
    }

    #[test]
    fn line_by_line_encode_matches_whole_record_encode() {
        for opts in [
            FeatureOptions::default(),
            FeatureOptions {
                prev_line: false,
                ..Default::default()
            },
        ] {
            let e = encoder(opts);
            let want = e.encode_text(SAMPLE);
            let mut scratch = AnnotateScratch::new();
            let mut free = Vec::new();
            scratch.reset_context();
            let rows: Vec<Vec<u32>> = whois_tokenize::context_lines(SAMPLE)
                .map(|cl| {
                    e.encode_line_with(
                        cl.text,
                        cl.preceded_by_blank,
                        cl.prev_indent,
                        &mut scratch,
                        &mut free,
                    )
                })
                .collect();
            assert_eq!(rows, want.obs);
        }
    }

    #[test]
    fn steady_state_encode_allocates_no_feature_strings() {
        let e = encoder(FeatureOptions::default());
        let mut scratch = AnnotateScratch::new();
        let first = e.encode_text_with(SAMPLE, &mut scratch, Vec::new());
        // The scratch interner is the only String producer on the encode
        // path; a stable size across repeat encodes certifies the
        // steady state is allocation-free.
        let vocab = scratch.distinct_features();
        let again = e.encode_text_with(SAMPLE, &mut scratch, Vec::new());
        assert_eq!(scratch.distinct_features(), vocab);
        assert_eq!(again, first);
        // Row buffers recycled through the engine path keep working too.
        let recycled = e.encode_text_with(SAMPLE, &mut scratch, again.obs);
        assert_eq!(recycled, first);
        assert_eq!(scratch.distinct_features(), vocab);
    }
}
