//! The **fast decode tier** of the parser: fused tokenize-and-score over
//! a compiled [`DecodeModel`].
//!
//! The exact uncached path spends most of its time moving feature
//! *strings* around: every emitted feature is interned for within-line
//! dedup (one SipHash + hash-map probe), then looked up in the
//! [`Dictionary`](whois_tokenize::Dictionary) (a second SipHash), and
//! the resulting id rows are only then turned into `f64` potentials. The
//! fast tier collapses all of that into a single pass: features are
//! FNV-hashed *incrementally from their parts* (no composition buffer)
//! and probed once against a precompiled open-addressing table mapping
//! feature hash → SoA stripe offsets, and the `f32` emission/edge rows
//! accumulate directly during tokenization. Lines are interned
//! per-record by their
//! [`context_hash`](whois_tokenize::context_hash) — which fully
//! determines a line's feature bag *and* its `p:` word window — so each
//! distinct line context is scored once and batched Viterbi decodes over
//! the unique-row banks.
//!
//! ## Exactness
//!
//! The streamed feature *set* per line is provably identical to the
//! exact encoder's (same walk, same detectors, and the encode sink's
//! end-of-line `sort`/`dedup` makes within-line duplicate handling
//! equivalent to this tier's per-slot stamps); the only divergence from
//! the `f64` engine is `f32` rounding, which the decode margin guards —
//! records whose margin falls under the caller's guard threshold are
//! transparently re-decoded on the exact engine (see
//! [`DecodeModel::viterbi_batch_into`]).
//!
//! One semantic corner is unsupported: with `title_value` *disabled* the
//! ablation maps the raw features `w:x@T` and `w:x@V` onto one
//! dictionary entry while the `p:` window still distinguishes them, so
//! a single hash table cannot serve both identities.
//! [`FastLevel::compile`] returns `None` for such models and the engine
//! stays on the exact tier.

use crate::level::LevelParser;
use serde::de::DeserializeOwned;
use serde::Serialize;
use whois_crf::{kernels, DecodeModel, DecodeScratch, KernelLevel, NO_SLOT};
use whois_model::Label;
use whois_tokenize::{context_lines, for_each_word, line_markers, split_title_value, WordClass};

/// Default decode-margin guard: Viterbi decisions won by less than this
/// (in unnormalized log-score) are considered too close to trust to
/// `f32` rounding and the record re-decodes exactly. Worst-case
/// accumulated rounding for WHOIS-sized records is orders of magnitude
/// below this.
pub const DEFAULT_MARGIN_GUARD: f32 = 1e-3;

/// How many of the previous line's `w:` features feed the next line's
/// `p:` context. Must match `whois_tokenize::annotate`'s cap.
const MAX_PREV_FEATURES: usize = 12;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hash a feature name from its parts, as the hot path composes them.
fn fnv_parts(parts: &[&str]) -> u64 {
    let mut h = FNV_OFFSET;
    for p in parts {
        h = fnv(h, p.as_bytes());
    }
    // 0 marks an empty table slot; remap the (astronomically unlikely)
    // real hash 0.
    if h == 0 {
        1
    } else {
        h
    }
}

/// One compiled feature-table entry: where this feature's weights live
/// in the [`DecodeModel`], plus — for `w:` features — where the weights
/// of its `p:` (previous-line echo) counterpart live.
#[derive(Clone, Copy, Debug)]
struct FastSlot {
    emit_off: u32,
    pair_off: u32,
    p_emit_off: u32,
    p_pair_off: u32,
}

const EMPTY_SLOT: FastSlot = FastSlot {
    emit_off: NO_SLOT,
    pair_off: NO_SLOT,
    p_emit_off: NO_SLOT,
    p_pair_off: NO_SLOT,
};

/// A window entry: one captured `w:` feature of the previous line, with
/// its `p:` counterpart's weight offsets pre-resolved at capture time.
#[derive(Clone, Copy, Debug)]
struct WinEntry {
    /// FNV hash of the raw `w:` feature (capture dedup identity).
    raw: u64,
    p_emit_off: u32,
    p_pair_off: u32,
}

/// Per-record map interning `context_hash` → unique row index.
/// Generation-stamped open addressing: `begin_record` is O(1).
#[derive(Default, Debug)]
struct UniqMap {
    keys: Vec<u64>,
    rows: Vec<u32>,
    stamps: Vec<u32>,
    gen: u32,
    len: usize,
}

impl UniqMap {
    fn begin_record(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Stamp wrap: every slot looks live again; hard-reset.
            self.stamps.fill(0);
            self.gen = 1;
        }
        self.len = 0;
        if self.keys.is_empty() {
            self.keys = vec![0; 64];
            self.rows = vec![0; 64];
            self.stamps = vec![0; 64];
        }
    }

    #[inline]
    fn lookup(&self, h: u64) -> Option<u32> {
        let mask = self.keys.len() - 1;
        let mut i = (h ^ (h >> 33)) as usize & mask;
        loop {
            if self.stamps[i] != self.gen {
                return None;
            }
            if self.keys[i] == h {
                return Some(self.rows[i]);
            }
            i = (i + 1) & mask;
        }
    }

    fn insert(&mut self, h: u64, row: u32) {
        if self.len * 2 >= self.keys.len() {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = (h ^ (h >> 33)) as usize & mask;
        while self.stamps[i] == self.gen {
            i = (i + 1) & mask;
        }
        self.keys[i] = h;
        self.rows[i] = row;
        self.stamps[i] = self.gen;
        self.len += 1;
    }

    fn grow(&mut self) {
        let live: Vec<(u64, u32)> = (0..self.keys.len())
            .filter(|&i| self.stamps[i] == self.gen)
            .map(|i| (self.keys[i], self.rows[i]))
            .collect();
        let cap = self.keys.len() * 2;
        self.keys = vec![0; cap];
        self.rows = vec![0; cap];
        self.stamps = vec![0; cap];
        let mask = cap - 1;
        for (h, row) in live {
            let mut i = (h ^ (h >> 33)) as usize & mask;
            while self.stamps[i] == self.gen {
                i = (i + 1) & mask;
            }
            self.keys[i] = h;
            self.rows[i] = row;
            self.stamps[i] = self.gen;
        }
    }
}

/// Reusable buffers for the fast tier, one per [`crate::ParseScratch`].
#[derive(Default, Debug)]
pub struct FastScratch {
    /// Unique-row emission bank (`rows × n`).
    emit_bank: Vec<f32>,
    /// Unique-row edge bank (`rows × n²`).
    edge_bank: Vec<f32>,
    /// Unique-row index of each position.
    row_of_line: Vec<u32>,
    /// Captured `w:` windows of all unique rows, concatenated.
    window_bank: Vec<WinEntry>,
    /// Per unique row: `(start, len)` into `window_bank`.
    window_span: Vec<(u32, u32)>,
    uniq: UniqMap,
    /// Per-feature-table-slot line stamps (sized to the level's table).
    stamps: Vec<u64>,
    line_gen: u64,
    /// Lower-cased word composition buffer.
    word: String,
    /// Word-class detection buffer.
    classes: Vec<WordClass>,
    dec: DecodeScratch,
}

impl FastScratch {
    /// New empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One CRF level compiled for the fast tier: the quantized
/// [`DecodeModel`] plus the feature-hash table.
#[derive(Clone, Debug)]
pub struct FastLevel {
    decode: DecodeModel,
    keys: Vec<u64>,
    slots: Vec<FastSlot>,
}

impl FastLevel {
    /// Compile a trained level, or `None` when its feature options are
    /// outside the fast tier's exactness envelope (see module docs).
    pub fn compile<L: Label + Serialize + DeserializeOwned>(
        level: &LevelParser<L>,
    ) -> Option<FastLevel> {
        Self::compile_with_kernel(level, KernelLevel::active())
    }

    /// [`compile`](Self::compile) with an explicit [`KernelLevel`]
    /// (testing/benchmarking hook; unsupported levels degrade to scalar).
    pub fn compile_with_kernel<L: Label + Serialize + DeserializeOwned>(
        level: &LevelParser<L>,
        kernel: KernelLevel,
    ) -> Option<FastLevel> {
        let enc = level.encoder();
        if !enc.options().title_value {
            return None;
        }
        let dict = enc.dictionary();
        let decode = DecodeModel::compile_with_kernel(level.crf(), kernel);

        // Load factor ≤ 1/4 even if every dictionary entry is a `p:`
        // feature needing a synthetic `w:` slot.
        let cap = (dict.len().max(1) * 4).next_power_of_two();
        let mut keys = vec![0u64; cap];
        let mut slots = vec![EMPTY_SLOT; cap];
        let probe = |keys: &[u64], h: u64| -> usize {
            let mask = keys.len() - 1;
            let mut i = (h ^ (h >> 33)) as usize & mask;
            while keys[i] != 0 && keys[i] != h {
                i = (i + 1) & mask;
            }
            i
        };
        for (id, name) in dict.iter() {
            let h = fnv_parts(&[name]);
            let i = probe(&keys, h);
            keys[i] = h;
            slots[i].emit_off = decode.emit_offset(id);
            slots[i].pair_off = decode.pair_offset(id);
        }
        // Attach each `p:` feature's weights to its `w:` counterpart so
        // window capture resolves them without a second lookup. The
        // counterpart may be absent from the dictionary (frequency
        // trimming counts the two independently): synthesize a
        // score-less slot for it.
        for (id, name) in dict.iter() {
            if let Some(rest) = name.strip_prefix("p:") {
                let h = fnv_parts(&["w:", rest]);
                let i = probe(&keys, h);
                keys[i] = h;
                slots[i].p_emit_off = decode.emit_offset(id);
                slots[i].p_pair_off = decode.pair_offset(id);
            }
        }
        Some(FastLevel {
            decode,
            keys,
            slots,
        })
    }

    /// The compiled decode model.
    pub fn decode_model(&self) -> &DecodeModel {
        &self.decode
    }

    /// The SIMD kernel level this level's scoring dispatches to.
    pub fn kernel_level(&self) -> KernelLevel {
        self.decode.kernel_level()
    }

    #[inline]
    fn find(&self, h: u64) -> Option<usize> {
        let mask = self.keys.len() - 1;
        let mut i = (h ^ (h >> 33)) as usize & mask;
        loop {
            let k = self.keys[i];
            if k == h {
                return Some(i);
            }
            if k == 0 {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Predict the labels of `text`'s labelable lines on the fast tier,
    /// or `None` when the decode margin falls under `guard` and the
    /// caller must re-decode exactly.
    pub fn predict<L: Label>(
        &self,
        text: &str,
        fs: &mut FastScratch,
        guard: f32,
    ) -> Option<Vec<L>> {
        self.predict_scored(text, fs, guard)
            .map(|(labels, _)| labels)
    }

    /// [`predict`](Self::predict) that also surfaces the decode margin —
    /// the unnormalized log-score gap between the best and runner-up
    /// Viterbi decisions, already computed by the batched decoder. The
    /// drift monitor maps it to a `[0, 1)` confidence via
    /// `margin / (margin + 1)`: a record the model has firmly memorized
    /// decodes with a wide gap, a drifted schema with a narrow one.
    pub fn predict_scored<L: Label>(
        &self,
        text: &str,
        fs: &mut FastScratch,
        guard: f32,
    ) -> Option<(Vec<L>, f32)> {
        let n = self.decode.num_states();
        debug_assert_eq!(n, L::COUNT);
        let nn = n * n;
        fs.emit_bank.clear();
        fs.edge_bank.clear();
        fs.row_of_line.clear();
        fs.window_bank.clear();
        fs.window_span.clear();
        fs.uniq.begin_record();
        if fs.stamps.len() < self.keys.len() {
            fs.stamps.resize(self.keys.len(), 0);
        }

        for cl in context_lines(text) {
            let row = match fs.uniq.lookup(cl.context_hash) {
                Some(r) => r,
                None => {
                    let r = fs.window_span.len() as u32;
                    fs.uniq.insert(cl.context_hash, r);
                    fs.emit_bank.resize((r as usize + 1) * n, 0.0);
                    fs.edge_bank.resize((r as usize + 1) * nn, 0.0);
                    // The previous position's row (repeat or fresh)
                    // carries the window its `p:` features echo.
                    let prev_span = fs
                        .row_of_line
                        .last()
                        .map(|&pr| fs.window_span[pr as usize])
                        .unwrap_or((0, 0));
                    self.score_line(cl.text, cl.preceded_by_blank, cl.prev_indent, prev_span, fs);
                    r
                }
            };
            fs.row_of_line.push(row);
        }

        let margin = self.decode.viterbi_batch_into(
            &fs.emit_bank,
            &fs.edge_bank,
            &fs.row_of_line,
            &mut fs.dec,
        );
        if margin < guard {
            return None;
        }
        Some((
            fs.dec.path.iter().map(|&j| L::from_index(j)).collect(),
            margin,
        ))
    }

    /// Score one fresh line context into the last bank rows: stream the
    /// line's features exactly as `whois_tokenize::annotate` does,
    /// accumulating stripes/blocks instead of strings, and capture its
    /// `w:` window for the following line.
    fn score_line(
        &self,
        line: &str,
        preceded_by_blank: bool,
        prev_indent: Option<usize>,
        prev_span: (u32, u32),
        fs: &mut FastScratch,
    ) {
        let n = self.decode.num_states();
        let nn = n * n;
        fs.line_gen += 1;
        let line_gen = fs.line_gen;
        let row = fs.window_span.len();
        let emit = &mut fs.emit_bank[row * n..(row + 1) * n];
        let edge = &mut fs.edge_bank[row * nn..(row + 1) * nn];
        edge.copy_from_slice(self.decode.base_trans());
        let stamps = &mut fs.stamps;
        let win_start = fs.window_bank.len();

        // Layout markers.
        let markers = line_markers(line, preceded_by_blank, prev_indent);
        markers.for_each_feature(|m| {
            self.score_named(&["m:", m], stamps, line_gen, emit, edge);
        });

        // Title/value split, words (with window capture), classes.
        let (title, value) = match split_title_value(line) {
            Some((t, v, kind)) => {
                self.score_named(&["m:SEP"], stamps, line_gen, emit, edge);
                self.score_named(&["m:SEP:", kind.name()], stamps, line_gen, emit, edge);
                (t, v)
            }
            None => ("", line),
        };
        let mut word = std::mem::take(&mut fs.word);
        for (text, side) in [(title, "@T"), (value, "@V")] {
            let window_bank = &mut fs.window_bank;
            for_each_word(text, &mut word, |w| {
                let h = fnv_parts(&["w:", w, side]);
                match self.find(h) {
                    Some(i) => {
                        if stamps[i] != line_gen {
                            stamps[i] = line_gen;
                            let s = self.slots[i];
                            add_offsets(&self.decode, s.emit_off, s.pair_off, emit, edge);
                            if window_bank.len() - win_start < MAX_PREV_FEATURES {
                                window_bank.push(WinEntry {
                                    raw: h,
                                    p_emit_off: s.p_emit_off,
                                    p_pair_off: s.p_pair_off,
                                });
                            }
                        }
                    }
                    None => {
                        // Out-of-vocabulary word: scores nothing, but
                        // still occupies (capped, deduplicated) window
                        // slots exactly like the exact path's capture.
                        let cur = &window_bank[win_start..];
                        if cur.len() < MAX_PREV_FEATURES && !cur.iter().any(|e| e.raw == h) {
                            window_bank.push(WinEntry {
                                raw: h,
                                p_emit_off: NO_SLOT,
                                p_pair_off: NO_SLOT,
                            });
                        }
                    }
                }
            });
        }
        fs.word = word;

        let mut classes = std::mem::take(&mut fs.classes);
        for (text, side) in [(title, "@T"), (value, "@V")] {
            whois_tokenize::word_classes_into(text, &mut classes);
            for &c in &classes {
                self.score_named(&["c:", c.name(), side], stamps, line_gen, emit, edge);
            }
        }
        fs.classes = classes;

        // Previous-line context: offsets were resolved at capture time.
        let (ps, pl) = prev_span;
        for k in ps..ps + pl {
            let e = fs.window_bank[k as usize];
            add_offsets(&self.decode, e.p_emit_off, e.p_pair_off, emit, edge);
        }

        let win_len = (fs.window_bank.len() - win_start) as u32;
        fs.window_span.push((win_start as u32, win_len));
    }

    /// Hash a feature from its parts, probe, stamp-dedup, accumulate.
    #[inline]
    fn score_named(
        &self,
        parts: &[&str],
        stamps: &mut [u64],
        line_gen: u64,
        emit: &mut [f32],
        edge: &mut [f32],
    ) {
        if let Some(i) = self.find(fnv_parts(parts)) {
            if stamps[i] != line_gen {
                stamps[i] = line_gen;
                let s = self.slots[i];
                add_offsets(&self.decode, s.emit_off, s.pair_off, emit, edge);
            }
        }
    }
}

/// Accumulate a stripe and/or pair block by compiled offset, through the
/// model's dispatched SIMD kernel (bit-exact across kernel levels).
#[inline]
fn add_offsets(
    decode: &DecodeModel,
    emit_off: u32,
    pair_off: u32,
    emit: &mut [f32],
    edge: &mut [f32],
) {
    let kernel = decode.kernel_level();
    if emit_off != NO_SLOT {
        let stripe = &decode.stripes()[emit_off as usize..emit_off as usize + emit.len()];
        kernels::add_assign_f32(kernel, emit, stripe);
    }
    if pair_off != NO_SLOT {
        let block = &decode.pair_blocks()[pair_off as usize..pair_off as usize + edge.len()];
        kernels::add_assign_f32(kernel, edge, block);
    }
}

/// Both levels of a [`crate::WhoisParser`] compiled for the fast tier.
#[derive(Clone, Debug)]
pub struct FastParser {
    pub(crate) first: FastLevel,
    pub(crate) second: FastLevel,
}

impl FastParser {
    /// Compile both levels, or `None` when either is outside the fast
    /// tier's envelope.
    pub fn compile(parser: &crate::WhoisParser) -> Option<FastParser> {
        Self::compile_with_kernel(parser, KernelLevel::active())
    }

    /// [`compile`](Self::compile) with an explicit [`KernelLevel`]
    /// (testing/benchmarking hook; unsupported levels degrade to scalar).
    pub fn compile_with_kernel(
        parser: &crate::WhoisParser,
        kernel: KernelLevel,
    ) -> Option<FastParser> {
        Some(FastParser {
            first: FastLevel::compile_with_kernel(parser.first_level(), kernel)?,
            second: FastLevel::compile_with_kernel(parser.second_level(), kernel)?,
        })
    }

    /// The SIMD kernel level the compiled tiers dispatch to.
    pub fn kernel_level(&self) -> KernelLevel {
        self.first.kernel_level()
    }

    /// The compiled first (block) level.
    pub fn first_level(&self) -> &FastLevel {
        &self.first
    }

    /// The compiled second (registrant) level.
    pub fn second_level(&self) -> &FastLevel {
        &self.second
    }
}
