//! One level of the parser: an encoder plus a CRF over a label space.

use crate::encoder::{Encoder, FeatureOptions, TrainExample};
use crate::engine::ParseScratch;
use crate::line_cache::{compose_key, CachedLine, LineCache, L1_MAX_ENTRIES};
use serde::{de::DeserializeOwned, Deserialize, Serialize};
use std::marker::PhantomData;
use std::sync::Arc;
use whois_crf::{train, Crf, Instance, TrainConfig};
use whois_model::{ErrorStats, Label};
use whois_tokenize::context_lines;

/// Configuration for training a [`LevelParser`].
#[derive(Clone, Debug, Default)]
pub struct ParserConfig {
    /// Feature-family switches (ablations; default = everything on).
    pub features: FeatureOptions,
    /// Dictionary trim threshold for open-class word features. `0` means
    /// auto: keep everything below 2000 training records, trim singletons
    /// above. (Trimming too early defeats §5.3 adaptation: a single added
    /// example of a new format must contribute its discriminating words.)
    pub min_word_count: u32,
    /// Optimizer configuration.
    pub train: TrainConfig,
}

impl ParserConfig {
    fn resolved_min_count(&self, num_records: usize) -> u32 {
        if self.min_word_count > 0 {
            self.min_word_count
        } else if num_records < 2000 {
            1
        } else {
            2
        }
    }
}

/// A trained CRF labeler over one label space `L`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LevelParser<L> {
    encoder: Encoder,
    crf: Crf,
    #[serde(skip)]
    _label: PhantomData<L>,
}

impl<L: Label + Serialize + DeserializeOwned> LevelParser<L> {
    /// Train a parser from labeled examples.
    ///
    /// # Panics
    /// Panics if `examples` is empty or any example's label count differs
    /// from its non-empty line count.
    pub fn train(examples: &[TrainExample<L>], cfg: &ParserConfig) -> Self {
        assert!(!examples.is_empty(), "training needs at least one example");
        let encoder = Encoder::fit(
            examples.iter().map(|e| e.text.as_str()),
            cfg.features,
            cfg.resolved_min_count(examples.len()),
        );
        let crf = Crf::new(
            L::COUNT,
            encoder.dictionary().len(),
            &encoder.pair_eligibility(),
        );
        let mut parser = LevelParser {
            encoder,
            crf,
            _label: PhantomData,
        };
        parser.fit_weights(examples, cfg);
        parser
    }

    /// Re-estimate weights on (possibly extended) data. When the new data
    /// contains unseen words the dictionary is rebuilt and training starts
    /// from scratch; otherwise training warm-starts from the current
    /// weights — the paper's "add the example and retrain" maintenance
    /// loop (§5.3).
    pub fn retrain(&mut self, examples: &[TrainExample<L>], cfg: &ParserConfig) {
        let rebuilt = Encoder::fit(
            examples.iter().map(|e| e.text.as_str()),
            self.encoder.options(),
            cfg.resolved_min_count(examples.len()),
        );
        if rebuilt.dictionary().len() != self.encoder.dictionary().len()
            || rebuilt
                .dictionary()
                .iter()
                .any(|(id, name)| self.encoder.dictionary().name(id) != name)
        {
            self.encoder = rebuilt;
            self.crf = Crf::new(
                L::COUNT,
                self.encoder.dictionary().len(),
                &self.encoder.pair_eligibility(),
            );
        }
        self.fit_weights(examples, cfg);
    }

    fn fit_weights(&mut self, examples: &[TrainExample<L>], cfg: &ParserConfig) {
        // One annotation scratch across all examples: WHOIS corpora repeat
        // the same line vocabulary heavily, so after the first few records
        // the interner is warm and encoding stops allocating `String`s.
        let mut scratch = whois_tokenize::AnnotateScratch::new();
        let instances: Vec<Instance> = examples
            .iter()
            .map(|e| {
                let seq = self
                    .encoder
                    .encode_text_with(&e.text, &mut scratch, Vec::new());
                assert_eq!(
                    seq.len(),
                    e.labels.len(),
                    "labels must align with non-empty lines"
                );
                Instance::new(seq, e.labels.iter().map(|l| l.index()).collect())
            })
            .collect();
        train(&mut self.crf, &instances, &cfg.train);
    }

    /// Predict labels for the non-empty lines of `text`.
    pub fn predict(&self, text: &str) -> Vec<L> {
        self.predict_with(text, &mut ParseScratch::new())
    }

    /// [`predict`](Self::predict) reusing a caller-owned scratch — the
    /// steady-state path: encoding and inference run entirely in the
    /// scratch's buffers.
    pub fn predict_with(&self, text: &str, scratch: &mut ParseScratch) -> Vec<L> {
        let seq = self.encode_into(text, scratch);
        let (path, _) = scratch.infer.viterbi(&self.crf, &seq);
        let labels = path.iter().map(|&j| L::from_index(j)).collect();
        scratch.rows = seq.obs;
        labels
    }

    /// [`predict_with`](Self::predict_with) through a [`LineCache`]:
    /// each line's feature row, emission row, and edge row are computed
    /// at most once per distinct (text, blank gap, previous line)
    /// context per `generation`, then reused by every later record.
    ///
    /// Output is bit-identical to `predict_with` — the memoized rows
    /// replay exactly the additions `Crf::score_table_into` performs
    /// (see [`Crf::emission_row_into`] / [`Crf::edge_row_into`]), so the
    /// assembled [`whois_crf::ScoreTable`] matches bit-for-bit and
    /// Viterbi decodes the same path.
    ///
    /// `salt` scopes keys to this level (the two levels have different
    /// dictionaries); `generation` scopes them to the installed model.
    pub fn predict_cached(
        &self,
        text: &str,
        scratch: &mut ParseScratch,
        cache: &LineCache,
        salt: u64,
        generation: u64,
    ) -> Vec<L> {
        scratch.annotate.reset_context();
        scratch.entries.clear();
        let (mut l1_hits, mut l2_hits, mut misses) = (0u64, 0u64, 0u64);
        // Window of the last hit line, deferred: it only needs to be
        // replayed into the annotation scratch when the *next* line is
        // a miss (consecutive hits never touch the annotator).
        let mut pending_window: Option<Arc<CachedLine>> = None;
        for cl in context_lines(text) {
            let key = compose_key(cl.context_hash, salt, generation);
            if let Some(hit) = scratch.l1.get(&key) {
                l1_hits += 1;
                pending_window = Some(hit.clone());
                scratch.entries.push(hit.clone());
                continue;
            }
            if let Some(hit) = cache.get(key, generation) {
                l2_hits += 1;
                if scratch.l1.len() >= L1_MAX_ENTRIES {
                    scratch.l1.clear();
                }
                scratch.l1.insert(key, hit.clone());
                pending_window = Some(hit.clone());
                scratch.entries.push(hit);
                continue;
            }
            misses += 1;
            if let Some(prev) = pending_window.take() {
                scratch.annotate.set_prev_window(prev.window.iter());
            }
            let row = self.encoder.encode_line_with(
                cl.text,
                cl.preceded_by_blank,
                cl.prev_indent,
                &mut scratch.annotate,
                &mut scratch.rows,
            );
            self.crf.emission_row_into(&row, &mut scratch.emit_row);
            self.crf.edge_row_into(&row, &mut scratch.edge_row);
            let entry = Arc::new(CachedLine {
                emit: scratch.emit_row.as_slice().into(),
                edge: scratch.edge_row.as_slice().into(),
                window: scratch
                    .annotate
                    .prev_window()
                    .iter()
                    .map(|w| w.as_str().into())
                    .collect(),
                feats: row.as_slice().into(),
                generation,
            });
            scratch.rows.push(row);
            if scratch.l1.len() >= L1_MAX_ENTRIES {
                scratch.l1.clear();
            }
            scratch.l1.insert(key, entry.clone());
            cache.insert(key, entry.clone());
            scratch.entries.push(entry);
        }
        cache.record_lookups(l1_hits, l2_hits, misses);

        // Assemble the score table by concatenating the memoized rows —
        // the only remaining per-line work on an all-hit record.
        let n = self.crf.num_states();
        let table = scratch.infer.table_mut();
        table.n = n;
        table.len = scratch.entries.len();
        table.emit.clear();
        table.trans.clear();
        for (t, entry) in scratch.entries.iter().enumerate() {
            table.emit.extend_from_slice(&entry.emit);
            if t > 0 {
                table.trans.extend_from_slice(&entry.edge);
            }
        }
        scratch.entries.clear();
        let (path, _) = scratch.infer.viterbi_on_table();
        path.iter().map(|&j| L::from_index(j)).collect()
    }

    /// Predict labels together with per-line posterior confidences
    /// `Pr(y_t = ŷ_t | x)` from the forward–backward marginals (eq. 12).
    /// Lines the model is unsure about surface with low confidence — the
    /// natural triage signal for the §5.3 maintenance loop.
    pub fn predict_with_confidence(&self, text: &str) -> Vec<(L, f64)> {
        self.predict_with_confidence_with(text, &mut ParseScratch::new())
    }

    /// [`predict_with_confidence`](Self::predict_with_confidence) reusing
    /// a caller-owned scratch.
    pub fn predict_with_confidence_with(
        &self,
        text: &str,
        scratch: &mut ParseScratch,
    ) -> Vec<(L, f64)> {
        let seq = self.encode_into(text, scratch);
        let n = L::COUNT;
        let (path, marginals) = scratch.infer.viterbi_with_marginals(&self.crf, &seq);
        let scored = path
            .iter()
            .enumerate()
            .map(|(t, &j)| (L::from_index(j), marginals[t * n + j]))
            .collect();
        scratch.rows = seq.obs;
        scored
    }

    /// Encode `text` through the scratch's annotation buffers, recycling
    /// its spare sequence rows.
    fn encode_into(&self, text: &str, scratch: &mut ParseScratch) -> whois_crf::Sequence {
        self.encoder.encode_text_with(
            text,
            &mut scratch.annotate,
            std::mem::take(&mut scratch.rows),
        )
    }

    /// Confusion matrix over held-out examples (per-label P/R/F1 view).
    pub fn confusion(&self, examples: &[TrainExample<L>]) -> whois_model::ConfusionMatrix {
        let mut matrix = whois_model::ConfusionMatrix::new::<L>();
        let mut scratch = ParseScratch::new();
        for e in examples {
            let pred = self.predict_with(&e.text, &mut scratch);
            matrix.observe_all(&e.labels, &pred);
        }
        matrix
    }

    /// Line/document error statistics over held-out examples.
    pub fn evaluate(&self, examples: &[TrainExample<L>]) -> ErrorStats {
        let mut stats = ErrorStats::default();
        let mut scratch = ParseScratch::new();
        for e in examples {
            let pred = self.predict_with(&e.text, &mut scratch);
            assert_eq!(pred.len(), e.labels.len(), "evaluation misalignment");
            let errors = pred.iter().zip(&e.labels).filter(|(p, g)| p != g).count();
            stats.record(e.labels.len(), errors);
        }
        stats
    }

    /// The trained CRF (for inspection).
    pub fn crf(&self) -> &Crf {
        &self.crf
    }

    /// Mutable access to the trained CRF (weight surgery in tests and
    /// experiments).
    pub fn crf_mut(&mut self) -> &mut Crf {
        &mut self.crf
    }

    /// The encoder (for inspection).
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whois_model::BlockLabel;

    /// Tiny two-format corpus, enough for the CRF to learn exact rules.
    fn examples() -> Vec<TrainExample<BlockLabel>> {
        use BlockLabel::*;
        let a = TrainExample {
            text: "Domain Name: EX.COM\nRegistrar: GoDaddy\nCreation Date: 2014-01-02\n\
                   Registrant Name: John Smith\nAdmin Name: John Smith\nlegal boilerplate text"
                .to_string(),
            labels: vec![Domain, Registrar, Date, Registrant, Other, Null],
        };
        let b = TrainExample {
            text: "Domain Name: WHY.COM\nRegistrar: eNom\nCreation Date: 2011-05-06\n\
                   Registrant Name: Jane Roe\nAdmin Name: Jane Roe\nlegal boilerplate text"
                .to_string(),
            labels: vec![Domain, Registrar, Date, Registrant, Other, Null],
        };
        vec![a, b]
    }

    #[test]
    fn trains_and_predicts_exactly_on_seen_format() {
        let parser = LevelParser::train(&examples(), &ParserConfig::default());
        let pred = parser.predict(
            "Domain Name: NEW.COM\nRegistrar: GoDaddy\nCreation Date: 2013-03-04\n\
             Registrant Name: Alice Doe\nAdmin Name: Alice Doe\nlegal boilerplate text",
        );
        use BlockLabel::*;
        assert_eq!(pred, vec![Domain, Registrar, Date, Registrant, Other, Null]);
    }

    #[test]
    fn evaluate_is_zero_on_training_data() {
        let ex = examples();
        let parser = LevelParser::train(&ex, &ParserConfig::default());
        let stats = parser.evaluate(&ex);
        assert_eq!(stats.line_errors, 0);
        assert_eq!(stats.document_errors, 0);
        assert_eq!(stats.documents, 2);
    }

    #[test]
    fn retrain_adapts_to_new_format() {
        let mut parser = LevelParser::train(&examples(), &ParserConfig::default());
        // A new format: "Owner:" instead of "Registrant Name:".
        let new_format = TrainExample {
            text: "Domain Name: Z.COM\nRegistrar: Moniker\nCreation Date: 2010-01-01\n\
                   Owner: Bob Roe\nAdmin Name: Bob Roe\nlegal boilerplate text"
                .to_string(),
            labels: vec![
                BlockLabel::Domain,
                BlockLabel::Registrar,
                BlockLabel::Date,
                BlockLabel::Registrant,
                BlockLabel::Other,
                BlockLabel::Null,
            ],
        };
        let mut extended = examples();
        extended.push(new_format.clone());
        parser.retrain(&extended, &ParserConfig::default());
        let stats = parser.evaluate(&[new_format]);
        assert_eq!(stats.line_errors, 0, "adapted to the new schema");
        // Old format still works.
        let stats = parser.evaluate(&examples());
        assert_eq!(stats.line_errors, 0);
    }

    #[test]
    #[should_panic(expected = "at least one example")]
    fn empty_training_set_rejected() {
        let _ = LevelParser::<BlockLabel>::train(&[], &ParserConfig::default());
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_labels_rejected() {
        let bad = TrainExample {
            text: "one line".to_string(),
            labels: vec![BlockLabel::Null, BlockLabel::Null],
        };
        let _ = LevelParser::train(&[bad], &ParserConfig::default());
    }

    #[test]
    fn confidence_is_high_on_seen_formats_and_sums_sensibly() {
        let parser = LevelParser::train(&examples(), &ParserConfig::default());
        let scored = parser.predict_with_confidence(
            "Domain Name: Q.COM\nRegistrar: eNom\nCreation Date: 2012-02-02\n\
             Registrant Name: Kim Roe\nAdmin Name: Kim Roe\nlegal boilerplate text",
        );
        assert_eq!(scored.len(), 6);
        for (label, conf) in &scored {
            assert!(
                (0.0..=1.0 + 1e-9).contains(conf),
                "{label:?} confidence {conf}"
            );
            assert!(*conf > 0.8, "seen format should be confident: {conf}");
        }
        // Viterbi path and confidence labels agree.
        let plain = parser.predict(
            "Domain Name: Q.COM\nRegistrar: eNom\nCreation Date: 2012-02-02\n\
             Registrant Name: Kim Roe\nAdmin Name: Kim Roe\nlegal boilerplate text",
        );
        assert_eq!(plain, scored.iter().map(|(l, _)| *l).collect::<Vec<_>>());
    }

    #[test]
    fn confidence_marginals_are_proper_posteriors_on_generated_corpus() {
        use whois_gen::corpus::{generate_corpus, GenConfig};
        let corpus = generate_corpus(GenConfig::new(47, 120));
        let (train_set, test_set) = corpus.split_at(90);
        let examples: Vec<TrainExample<BlockLabel>> = train_set
            .iter()
            .map(|d| TrainExample {
                text: d.rendered.text(),
                labels: d.block_labels().labels(),
            })
            .collect();
        let parser = LevelParser::train(&examples, &ParserConfig::default());

        let mut scratch = ParseScratch::new();
        let mut high_confidence = 0usize;
        let mut lines = 0usize;
        for d in test_set {
            let text = d.rendered.text();
            let scored = parser.predict_with_confidence_with(&text, &mut scratch);
            let plain = parser.predict(&text);
            assert_eq!(plain.len(), scored.len());
            // Scratch reuse across records must not change the scores.
            assert_eq!(scored, parser.predict_with_confidence(&text));
            for (t, (label, conf)) in scored.iter().enumerate() {
                // A marginal is a posterior probability: strictly positive
                // (the decoded label was reachable) and at most 1.
                assert!(
                    *conf > 0.0 && *conf <= 1.0 + 1e-9,
                    "line {t}: {label:?} marginal {conf} outside (0, 1]"
                );
                // The scored label is the Viterbi label for that line...
                assert_eq!(*label, plain[t]);
                // ...and on high-confidence lines it must be the marginal
                // argmax: any other label's posterior is < 1 - conf < conf.
                if *conf > 0.5 {
                    high_confidence += 1;
                }
                lines += 1;
            }
        }
        assert!(
            high_confidence * 10 > lines * 9,
            "expected >90% high-confidence lines on held-out records, got \
             {high_confidence}/{lines}"
        );
    }

    #[test]
    fn confusion_matrix_matches_evaluate() {
        let ex = examples();
        let parser = LevelParser::train(&ex, &ParserConfig::default());
        let matrix = parser.confusion(&ex);
        let stats = parser.evaluate(&ex);
        assert_eq!(matrix.total() as usize, stats.lines);
        assert!((matrix.accuracy() - (1.0 - stats.line_error_rate())).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let parser = LevelParser::train(&examples(), &ParserConfig::default());
        let json = serde_json::to_string(&parser).unwrap();
        let back: LevelParser<BlockLabel> = serde_json::from_str(&json).unwrap();
        let text = "Domain Name: R.COM\nRegistrar: GoDaddy";
        assert_eq!(back.predict(text), parser.predict(text));
    }
}
