//! # whois-parser
//!
//! The paper's **two-level statistical WHOIS parser** (§3), assembled from
//! `whois-tokenize` (feature extraction) and `whois-crf` (the model):
//!
//! * [`LevelParser`] — one CRF over any label space: builds the trimmed
//!   feature dictionary from training text, chooses pair-eligible
//!   features (title words, markers, classes — the features of eq. 8),
//!   trains by L-BFGS or SGD, and Viterbi-decodes new records.
//! * [`WhoisParser`] — the two-level composition: a six-state first-level
//!   CRF segments the record into blocks; a twelve-state second-level CRF
//!   re-parses the registrant block into sub-fields; mechanical value
//!   extraction then fills a [`whois_model::ParsedRecord`].
//! * [`ParseEngine`] — batch parsing: the trained parser plus a pool of
//!   reusable per-worker scratches ([`ParseScratch`]), parsing record
//!   batches across crossbeam scoped threads with a [`BatchStats`]
//!   throughput report, and with zero per-feature allocation at steady
//!   state.
//! * [`LineCache`] — cross-record line memoization: WHOIS records are
//!   rendered from a few thousand registrar templates, so the engine
//!   memoizes each distinct (line, layout context, previous line)'s
//!   feature row and CRF potentials in a sharded, generation-versioned
//!   LRU — parses are bit-identical to the uncached path, repeated
//!   template lines cost a hash lookup instead of re-tokenization.
//! * [`FastParser`] — the compiled fast decode tier: zero-pruned `f32`
//!   structure-of-arrays weights probed by feature hash *during*
//!   tokenization (no strings, no dictionary lookups), per-record
//!   unique-line interning, and batched Viterbi. Decodes whose margin
//!   falls under a guard threshold transparently re-run on the exact
//!   `f64` engine, so engine output is byte-identical either way; the
//!   engine routes per record via [`DecodeTier`].
//! * [`inspect`] — model introspection: the top-weight word features per
//!   label (Table 1) and the top transition-detecting features between
//!   blocks (Figure 1).
//! * [`FeatureOptions`] — ablation switches for the title/value
//!   annotation, layout markers, word classes, and pair features, used by
//!   the `features_ablation` bench.
//!
//! Models serialize with serde ([`WhoisParser::to_json`] /
//! [`WhoisParser::from_json`]), and adapt to new formats by retraining
//! with a handful of additional labeled examples (§5.3) —
//! [`WhoisParser::retrain_first_level`].

pub mod encoder;
pub mod engine;
pub mod extract;
pub mod fast;
pub mod inspect;
pub mod level;
pub mod line_cache;
pub mod parser;

pub use encoder::{Encoder, FeatureOptions, TrainExample};
pub use engine::{BatchStats, DecodeCounters, DecodeTier, ParseEngine, ParseScratch};
pub use fast::{FastLevel, FastParser, FastScratch, DEFAULT_MARGIN_GUARD};
pub use level::{LevelParser, ParserConfig};
pub use line_cache::{
    CachedLine, LineCache, LineCacheStats, DEFAULT_BYPASS_FLOOR, DEFAULT_LINE_CACHE_CAPACITY,
    DEFAULT_LINE_CACHE_SHARDS,
};
pub use parser::WhoisParser;
pub use whois_crf::{KernelLevel, TrainConfig};
