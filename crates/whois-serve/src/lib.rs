//! `whois-serve`: a long-running WHOIS parse service.
//!
//! The paper's parser ("Who is .com?", IMC 2015) is batch-oriented:
//! train a CRF, sweep a corpus. Operationally, though, WHOIS parsing is
//! a *service* — abuse pipelines and registrar hygiene systems ask for
//! one domain at a time, the same domains repeat, and models are
//! retrained as new registrar templates appear (§5.3). This crate wraps
//! the existing [`whois_parser::ParseEngine`] in a daemon shaped for
//! that workload:
//!
//! - **Line protocol over loopback TCP** ([`wire`]): `PARSE` a supplied
//!   body, `FETCH` a domain through upstream WHOIS, `STATS`.
//! - **Sharded LRU result cache** ([`cache`]): keyed by a hash of the
//!   normalized record body + domain + model generation; stores fully
//!   serialized reply lines, so a hit skips parse *and* serialization
//!   and is byte-identical to the miss that populated it.
//! - **Model hot-reload** ([`registry`]): versioned model directory,
//!   arc-swap installs, generation-tagged cache keys — zero downtime,
//!   zero stale reads.
//! - **Admission control** ([`queue`], [`service`]): bounded queue,
//!   explicit `shed` replies under overload, graceful drain on shutdown
//!   with a [`DrainReport`].
//! - **Two serving cores** ([`service`]): a nonblocking epoll event
//!   loop (default) multiplexing every connection on one acceptor
//!   thread, and the blocking thread-per-connection fallback/oracle —
//!   byte-identical by construction, selected by [`ServeConfig::mode`].
//!   Both enforce idle/read deadlines and an optional per-IP
//!   concurrent-connection cap.
//! - **Observability** ([`stats`]): counters and per-stage latency via
//!   the `STATS` verb; liveness (worker health, contained panics,
//!   quarantine) via the `HEALTH` verb.
//! - **Panic containment** ([`service`]): a parse that panics costs one
//!   request, not a worker — the record is quarantined by (domain, body
//!   hash) and refused thereafter, and the service keeps answering.
//! - **Disk tier** ([`ServeConfig::store`](service::ServeConfig)): an
//!   optional `whois_store::RecordStore` under the LRU — evictions
//!   spill down, misses fill up, model swaps fence stored parses by
//!   persistent generation, and a restarted daemon reopens the
//!   segments and answers its first requests at warm-cache hit rates.
//! - **Closed-loop continual learning** ([`retrain`]): a per-record
//!   confidence monitor detects sustained schema drift, low-confidence
//!   records queue into a crash-safe retrain queue, and a background
//!   loop labels them with the rule/template baselines, refits from the
//!   incumbent's weights, gates the candidate on a retained golden set,
//!   deploys through the hot-swap path, and rolls back automatically if
//!   post-swap confidence collapses. Surface: the `RETRAIN` verb and a
//!   `retrain` section in `STATS`/`HEALTH`.
//!
//! ```no_run
//! use std::sync::Arc;
//! use whois_serve::{ModelRegistry, ParseService, ServeClient, ServeConfig};
//! # fn parser() -> whois_parser::WhoisParser { unimplemented!() }
//!
//! let registry = Arc::new(ModelRegistry::new(parser(), "model-0001", 1));
//! let mut service = ParseService::start(registry, ServeConfig::default(), 0).unwrap();
//! let mut client = ServeClient::connect(service.addr()).unwrap();
//! let reply = client.parse("example.com", "Domain Name: EXAMPLE.COM\n").unwrap();
//! println!("{:?}", reply.record);
//! let report = service.shutdown();
//! println!("drained {} queued jobs", report.drained);
//! ```

pub mod cache;
pub mod client;
pub mod queue;
pub mod registry;
pub mod retrain;
pub mod service;
pub mod stats;
pub mod wire;

pub use cache::{cache_key, ShardedCache};
pub use client::{ClientError, ServeClient, DEFAULT_TIMEOUT};
pub use queue::{BoundedQueue, PushError};
pub use registry::{newest_model_file, ActiveModel, InstallHook, ModelRegistry, ModelWatcher};
pub use retrain::{
    DriftMonitor, QueuedRecord, RetrainConfig, RetrainHub, RetrainLoop, RetrainOutcome,
    RetrainQueue, RetrainSnapshot, Retrainer,
};
pub use service::{DrainReport, ParseService, ServeConfig, StoreTierConfig, UpstreamConfig};
pub use stats::{
    ConnectionGauges, DecodeTierStats, HealthSnapshot, QuarantineEntry, ServeStats, StageSnapshot,
    StatsSnapshot, StoreTierStats,
};
pub use wire::{ParseRequest, Reply, Request};
