//! Sharded, capacity-bounded LRU cache over parse results.
//!
//! The serving insight (WHOIS Right?, Fernandez et al. 2024; §5 of the
//! source paper): registrars render records from a handful of templates,
//! so a serving workload sees the same record body over and over. The
//! cache keys on a 64-bit FNV-1a hash of the *normalized* body (plus the
//! queried domain, which the parse output embeds, and the active model
//! generation, so a hot-swapped model can never serve a stale parse —
//! entries from old generations simply stop being referenced and age out
//! of the LRU).
//!
//! Values are the fully serialized reply lines ([`Arc<String>`]), so a
//! cache hit skips tokenization, inference, extraction *and*
//! serialization, and a cached reply is byte-identical to the uncached
//! one by construction.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

// The key function lives in `whois-store` now, shared with the disk
// tier so RAM and disk agree byte-for-byte on what "the same record"
// means; re-exported here so existing callers keep compiling.
pub use whois_store::key::cache_key;

/// Slot sentinel for the intrusive LRU list.
const NIL: usize = usize::MAX;

/// One LRU node in a shard's slab.
struct Entry {
    key: u64,
    value: Arc<String>,
    /// Opaque spill tag carried alongside the value — the serve layer
    /// stores the generation-free body key here so an evicted entry
    /// can be written to the disk tier (the LRU key alone is a one-way
    /// hash; domain and body are long gone by eviction time). 0 means
    /// "not spillable".
    spill: u64,
    /// Model generation the value was produced under, carried so the
    /// spill path can refuse victims parsed by a since-replaced model
    /// (an old-generation entry evicted *after* a hot swap must not
    /// leak onto disk under the new generation's fence).
    spill_gen: u64,
    prev: usize,
    next: usize,
}

/// A single LRU shard: hash map into a slab with an intrusive
/// most-recently-used list, O(1) get/insert/evict.
struct Shard {
    map: HashMap<u64, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity: capacity.max(1),
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn get(&mut self, key: u64) -> Option<Arc<String>> {
        let &idx = self.map.get(&key)?;
        if idx != self.head {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(self.slab[idx].value.clone())
    }

    fn insert(
        &mut self,
        key: u64,
        spill: u64,
        spill_gen: u64,
        value: Arc<String>,
    ) -> Option<(u64, u64, Arc<String>)> {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            self.slab[idx].spill = spill;
            self.slab[idx].spill_gen = spill_gen;
            if idx != self.head {
                self.unlink(idx);
                self.push_front(idx);
            }
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slab[victim].key);
            self.free.push(victim);
            let v = &self.slab[victim];
            if v.spill != 0 {
                evicted = Some((v.spill, v.spill_gen, v.value.clone()));
            }
        }
        let idx = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = Entry {
                    key,
                    value,
                    spill,
                    spill_gen,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.slab.push(Entry {
                    key,
                    value,
                    spill,
                    spill_gen,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Hand out every resident entry's `(spill, generation, value)` and
    /// empty the shard (graceful-shutdown path: spill the whole hot
    /// tier).
    fn drain(&mut self) -> Vec<(u64, u64, Arc<String>)> {
        let out = self
            .map
            .values()
            .filter(|&&idx| self.slab[idx].spill != 0)
            .map(|&idx| {
                (
                    self.slab[idx].spill,
                    self.slab[idx].spill_gen,
                    self.slab[idx].value.clone(),
                )
            })
            .collect();
        self.clear();
        out
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

/// The sharded cache: keys are spread across independently locked LRU
/// shards so parse workers don't serialize on one mutex.
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
}

impl ShardedCache {
    /// `capacity` total entries spread over `shards` shards (both
    /// clamped to at least 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.max(shards).div_ceil(shards);
        ShardedCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // High bits pick the shard; low bits drive the in-shard map, so
        // the two uses of the hash stay decorrelated.
        &self.shards[(key >> 32) as usize % self.shards.len()]
    }

    /// Look up a cached reply, promoting it to most-recently-used.
    pub fn get(&self, key: u64) -> Option<Arc<String>> {
        self.shard(key).lock().get(key)
    }

    /// Insert (or refresh) a cached reply.
    pub fn insert(&self, key: u64, value: Arc<String>) {
        self.shard(key).lock().insert(key, 0, 0, value);
    }

    /// Insert (or refresh) a cached reply carrying a spill tag — the
    /// generation-free body key the disk tier needs — and the model
    /// generation the value was parsed under. If the insert evicts a
    /// spillable entry, its `(spill, generation, value)` triple is
    /// returned so the caller can write it to the cold tier (or drop
    /// it, if its generation is no longer current).
    pub fn insert_with_spill(
        &self,
        key: u64,
        spill: u64,
        spill_gen: u64,
        value: Arc<String>,
    ) -> Option<(u64, u64, Arc<String>)> {
        self.shard(key).lock().insert(key, spill, spill_gen, value)
    }

    /// Remove and return every spillable resident entry (shutdown
    /// path: the whole hot tier goes to disk so the next process
    /// starts warm).
    pub fn drain_spillable(&self) -> Vec<(u64, u64, Arc<String>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().drain());
        }
        out
    }

    /// Entries currently cached across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (used by operators; model swaps don't need it —
    /// the generation in the key already fences old entries off).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Arc<String> {
        Arc::new(s.to_string())
    }

    #[test]
    fn normalization_ignores_transport_noise() {
        let a = cache_key(0, "example.com", "Domain Name: X\r\nRegistrar: Y\r\n");
        let b = cache_key(0, "example.com", "Domain Name: X\nRegistrar: Y");
        let c = cache_key(0, "EXAMPLE.COM", "Domain Name: X   \nRegistrar: Y\n\n\n");
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn normalization_keeps_meaningful_differences() {
        let base = cache_key(0, "example.com", "Domain Name: X\nRegistrar: Y\n");
        assert_ne!(
            base,
            cache_key(0, "example.com", "Domain Name: X\nRegistrar: Z\n"),
            "different body"
        );
        assert_ne!(
            base,
            cache_key(0, "other.com", "Domain Name: X\nRegistrar: Y\n"),
            "different domain"
        );
        assert_ne!(
            base,
            cache_key(1, "example.com", "Domain Name: X\nRegistrar: Y\n"),
            "different model generation"
        );
        // An interior blank line separates blocks; its presence matters.
        assert_ne!(
            base,
            cache_key(0, "example.com", "Domain Name: X\n\nRegistrar: Y\n"),
            "interior blank line"
        );
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ShardedCache::new(2, 1);
        cache.insert(1, v("one"));
        cache.insert(2, v("two"));
        assert_eq!(cache.get(1).as_deref().map(|s| s.as_str()), Some("one"));
        // Key 2 is now LRU; inserting key 3 evicts it.
        cache.insert(3, v("three"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let cache = ShardedCache::new(2, 1);
        cache.insert(1, v("one"));
        cache.insert(2, v("two"));
        cache.insert(1, v("uno"));
        cache.insert(3, v("three")); // evicts 2, not 1
        assert_eq!(cache.get(1).as_deref().map(|s| s.as_str()), Some("uno"));
        assert!(cache.get(2).is_none());
    }

    #[test]
    fn shards_split_the_keyspace() {
        let cache = ShardedCache::new(64, 8);
        for key in 0..64u64 {
            cache.insert(key.wrapping_mul(0x9e37_79b9_7f4a_7c15), v("x"));
        }
        assert!(cache.len() > 32, "keys should spread across shards");
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn eviction_surfaces_spillable_victims() {
        let cache = ShardedCache::new(2, 1);
        assert!(cache.insert_with_spill(1, 101, 7, v("one")).is_none());
        assert!(cache.insert_with_spill(2, 102, 7, v("two")).is_none());
        // Key 1 is LRU; inserting key 3 must hand it back for spilling,
        // generation intact.
        let (spill, spill_gen, value) = cache.insert_with_spill(3, 103, 8, v("three")).unwrap();
        assert_eq!(spill, 101);
        assert_eq!(spill_gen, 7);
        assert_eq!(value.as_str(), "one");
        // Plain inserts are not spillable: evicting one returns None.
        cache.insert(4, v("four")); // evicts 2 (spillable) first
        let evicted = cache.insert_with_spill(5, 105, 8, v("five"));
        assert!(
            evicted.is_none() || evicted.unwrap().0 != 0,
            "spill tag 0 never surfaces"
        );
    }

    #[test]
    fn drain_spillable_empties_the_cache() {
        let cache = ShardedCache::new(8, 2);
        cache.insert_with_spill(1, 11, 3, v("a"));
        cache.insert_with_spill(2, 22, 4, v("b"));
        cache.insert(3, v("untagged"));
        let mut drained = cache.drain_spillable();
        drained.sort_by_key(|(s, _, _)| *s);
        assert_eq!(drained.len(), 2, "untagged entries are not spilled");
        assert_eq!((drained[0].0, drained[0].1), (11, 3));
        assert_eq!((drained[1].0, drained[1].1), (22, 4));
        assert!(cache.is_empty());
    }

    #[test]
    fn heavy_churn_keeps_capacity_bound() {
        let cache = ShardedCache::new(100, 4);
        for key in 0..10_000u64 {
            cache.insert(key.wrapping_mul(0x2545_f491_4f6c_dd1d), v("y"));
        }
        assert!(cache.len() <= 112, "len {} exceeds bound", cache.len());
    }
}
