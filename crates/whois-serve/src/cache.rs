//! Sharded, capacity-bounded LRU cache over parse results.
//!
//! The serving insight (WHOIS Right?, Fernandez et al. 2024; §5 of the
//! source paper): registrars render records from a handful of templates,
//! so a serving workload sees the same record body over and over. The
//! cache keys on a 64-bit FNV-1a hash of the *normalized* body (plus the
//! queried domain, which the parse output embeds, and the active model
//! generation, so a hot-swapped model can never serve a stale parse —
//! entries from old generations simply stop being referenced and age out
//! of the LRU).
//!
//! Values are the fully serialized reply lines ([`Arc<String>`]), so a
//! cache hit skips tokenization, inference, extraction *and*
//! serialization, and a cached reply is byte-identical to the uncached
//! one by construction.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Slot sentinel for the intrusive LRU list.
const NIL: usize = usize::MAX;

#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Cache key for one (model generation, domain, record body) triple.
///
/// The body is normalized line-by-line without allocating: line endings
/// (`\r\n` vs `\n`) are unified, trailing whitespace is dropped, and
/// leading/trailing blank lines are ignored — the differences WHOIS
/// transports introduce between byte-wise different but semantically
/// identical bodies. The domain is lower-cased to match
/// [`RawRecord::new`](whois_model::RawRecord::new) and the generation is
/// mixed in so a model swap invalidates every prior entry without any
/// coordination.
pub fn cache_key(generation: u64, domain: &str, body: &str) -> u64 {
    let mut h = Fnv::new();
    h.write(&generation.to_le_bytes());
    for b in domain.bytes() {
        h.write(&[b.to_ascii_lowercase()]);
    }
    h.write(&[0xff]); // domain/body separator outside both alphabets
    let mut pending_blank = 0usize;
    let mut seen_content = false;
    for line in body.lines() {
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            pending_blank += 1;
            continue;
        }
        if seen_content {
            // Interior blank runs are structure (block separators): keep
            // their count, normalized to the run length.
            for _ in 0..pending_blank {
                h.write(b"\n");
            }
        }
        pending_blank = 0;
        seen_content = true;
        h.write(trimmed.as_bytes());
        h.write(b"\n");
    }
    h.0
}

/// One LRU node in a shard's slab.
struct Entry {
    key: u64,
    value: Arc<String>,
    prev: usize,
    next: usize,
}

/// A single LRU shard: hash map into a slab with an intrusive
/// most-recently-used list, O(1) get/insert/evict.
struct Shard {
    map: HashMap<u64, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity: capacity.max(1),
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn get(&mut self, key: u64) -> Option<Arc<String>> {
        let &idx = self.map.get(&key)?;
        if idx != self.head {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(self.slab[idx].value.clone())
    }

    fn insert(&mut self, key: u64, value: Arc<String>) {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            if idx != self.head {
                self.unlink(idx);
                self.push_front(idx);
            }
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slab[victim].key);
            self.free.push(victim);
        }
        let idx = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = Entry {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.slab.push(Entry {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

/// The sharded cache: keys are spread across independently locked LRU
/// shards so parse workers don't serialize on one mutex.
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
}

impl ShardedCache {
    /// `capacity` total entries spread over `shards` shards (both
    /// clamped to at least 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.max(shards).div_ceil(shards);
        ShardedCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // High bits pick the shard; low bits drive the in-shard map, so
        // the two uses of the hash stay decorrelated.
        &self.shards[(key >> 32) as usize % self.shards.len()]
    }

    /// Look up a cached reply, promoting it to most-recently-used.
    pub fn get(&self, key: u64) -> Option<Arc<String>> {
        self.shard(key).lock().get(key)
    }

    /// Insert (or refresh) a cached reply.
    pub fn insert(&self, key: u64, value: Arc<String>) {
        self.shard(key).lock().insert(key, value);
    }

    /// Entries currently cached across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (used by operators; model swaps don't need it —
    /// the generation in the key already fences old entries off).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Arc<String> {
        Arc::new(s.to_string())
    }

    #[test]
    fn normalization_ignores_transport_noise() {
        let a = cache_key(0, "example.com", "Domain Name: X\r\nRegistrar: Y\r\n");
        let b = cache_key(0, "example.com", "Domain Name: X\nRegistrar: Y");
        let c = cache_key(0, "EXAMPLE.COM", "Domain Name: X   \nRegistrar: Y\n\n\n");
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn normalization_keeps_meaningful_differences() {
        let base = cache_key(0, "example.com", "Domain Name: X\nRegistrar: Y\n");
        assert_ne!(
            base,
            cache_key(0, "example.com", "Domain Name: X\nRegistrar: Z\n"),
            "different body"
        );
        assert_ne!(
            base,
            cache_key(0, "other.com", "Domain Name: X\nRegistrar: Y\n"),
            "different domain"
        );
        assert_ne!(
            base,
            cache_key(1, "example.com", "Domain Name: X\nRegistrar: Y\n"),
            "different model generation"
        );
        // An interior blank line separates blocks; its presence matters.
        assert_ne!(
            base,
            cache_key(0, "example.com", "Domain Name: X\n\nRegistrar: Y\n"),
            "interior blank line"
        );
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ShardedCache::new(2, 1);
        cache.insert(1, v("one"));
        cache.insert(2, v("two"));
        assert_eq!(cache.get(1).as_deref().map(|s| s.as_str()), Some("one"));
        // Key 2 is now LRU; inserting key 3 evicts it.
        cache.insert(3, v("three"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let cache = ShardedCache::new(2, 1);
        cache.insert(1, v("one"));
        cache.insert(2, v("two"));
        cache.insert(1, v("uno"));
        cache.insert(3, v("three")); // evicts 2, not 1
        assert_eq!(cache.get(1).as_deref().map(|s| s.as_str()), Some("uno"));
        assert!(cache.get(2).is_none());
    }

    #[test]
    fn shards_split_the_keyspace() {
        let cache = ShardedCache::new(64, 8);
        for key in 0..64u64 {
            cache.insert(key.wrapping_mul(0x9e37_79b9_7f4a_7c15), v("x"));
        }
        assert!(cache.len() > 32, "keys should spread across shards");
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn heavy_churn_keeps_capacity_bound() {
        let cache = ShardedCache::new(100, 4);
        for key in 0..10_000u64 {
            cache.insert(key.wrapping_mul(0x2545_f491_4f6c_dd1d), v("y"));
        }
        assert!(cache.len() <= 112, "len {} exceeds bound", cache.len());
    }
}
