//! Versioned model registry with atomic hot swap.
//!
//! The paper's §5.3 story — retrain on a few labeled records from a new
//! registrar/TLD, redeploy — only pays off operationally if the fresh
//! model can go live without restarting the service. The registry keeps
//! the active model behind an `RwLock<Arc<_>>` (arc-swap idiom): readers
//! clone the `Arc` under a briefly held read lock and keep parsing on
//! whatever model they grabbed; `install` builds the new engine outside
//! any lock and swaps the pointer in one write. Requests in flight on
//! the old model finish on the old model; the next request sees the new
//! one. Each install bumps a monotonically increasing *generation*,
//! which the result cache mixes into its keys, so stale cached parses
//! are unreachable the instant a swap lands.
//!
//! [`ModelWatcher`] polls a versioned model directory (`*.json`, highest
//! file stem wins) and installs new versions as they appear — drop a
//! `model-0002.json` next to `model-0001.json` and the service picks it
//! up within one poll interval.

use parking_lot::RwLock;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use whois_parser::{
    DecodeCounters, DecodeTier, LineCache, ParseEngine, WhoisParser, DEFAULT_BYPASS_FLOOR,
};

/// The currently active model: an immutable snapshot shared by every
/// request that started while it was current.
pub struct ActiveModel {
    /// Human-readable version (file stem for directory-loaded models).
    pub version: String,
    /// Monotonic install counter; cache keys include it.
    pub generation: u64,
    /// The parse engine wrapping this model.
    pub engine: ParseEngine,
}

/// Callback invoked after a model swap lands: `(version, generation)`.
/// The disk tier hangs off this to fence its stored parses.
pub type InstallHook = Box<dyn Fn(&str, u64) + Send + Sync>;

/// Registry holding the active model and performing atomic swaps.
pub struct ModelRegistry {
    active: RwLock<Arc<ActiveModel>>,
    generation: AtomicU64,
    swaps: AtomicU64,
    load_failures: AtomicU64,
    install_hooks: RwLock<Vec<InstallHook>>,
    engine_workers: usize,
    line_cache: Arc<LineCache>,
    /// Decode tier for this and every subsequently installed engine.
    decode_tier: DecodeTier,
    /// Fast-tier outcome counters, shared across model swaps so `STATS`
    /// reports service-lifetime totals.
    decode_counters: Arc<DecodeCounters>,
}

impl ModelRegistry {
    /// Start with `parser` as generation 1. `engine_workers` is passed
    /// through to the engine for this and every subsequently installed
    /// model (0 = available parallelism). The line cache is created at
    /// [`whois_parser::DEFAULT_LINE_CACHE_CAPACITY`] with the adaptive
    /// bypass enabled, and uncached records decode on the fast tier —
    /// the serving defaults.
    pub fn new(parser: WhoisParser, version: impl Into<String>, engine_workers: usize) -> Self {
        Self::with_line_cache(
            parser,
            version,
            engine_workers,
            Arc::new(LineCache::with_default_capacity().with_bypass_floor(DEFAULT_BYPASS_FLOOR)),
        )
    }

    /// [`new`](Self::new) with a caller-provided line cache — the shared
    /// L2 every installed model's engine memoizes into. Capacity 0
    /// disables memoization entirely. Decodes default to the fast tier.
    pub fn with_line_cache(
        parser: WhoisParser,
        version: impl Into<String>,
        engine_workers: usize,
        line_cache: Arc<LineCache>,
    ) -> Self {
        Self::with_decode_tier(
            parser,
            version,
            engine_workers,
            line_cache,
            DecodeTier::Fast,
        )
    }

    /// [`with_line_cache`](Self::with_line_cache) with an explicit
    /// [`DecodeTier`] for records that miss or bypass the line cache
    /// (the `--decode-tier` serve flag lands here). Install compiles the
    /// requested tier for every engine; parse output is byte-identical
    /// either way.
    pub fn with_decode_tier(
        parser: WhoisParser,
        version: impl Into<String>,
        engine_workers: usize,
        line_cache: Arc<LineCache>,
        decode_tier: DecodeTier,
    ) -> Self {
        // The cache is born at generation 1, matching the first model.
        line_cache.set_generation(1);
        let decode_counters = Arc::new(DecodeCounters::new());
        let active = Arc::new(ActiveModel {
            version: version.into(),
            generation: 1,
            engine: ParseEngine::with_decode_tier(
                parser,
                engine_workers,
                line_cache.clone(),
                decode_tier,
                decode_counters.clone(),
            ),
        });
        ModelRegistry {
            active: RwLock::new(active),
            generation: AtomicU64::new(1),
            swaps: AtomicU64::new(0),
            load_failures: AtomicU64::new(0),
            install_hooks: RwLock::new(Vec::new()),
            engine_workers,
            line_cache,
            decode_tier,
            decode_counters,
        }
    }

    /// The decode tier every installed engine is built with.
    pub fn decode_tier(&self) -> DecodeTier {
        self.decode_tier
    }

    /// Service-lifetime fast-tier outcome counters (shared across
    /// swaps).
    pub fn decode_counters(&self) -> &Arc<DecodeCounters> {
        &self.decode_counters
    }

    /// The SIMD kernel level the active engine's decodes dispatch to
    /// (surfaced in `STATS`/`HEALTH`).
    pub fn kernel_level(&self) -> whois_parser::KernelLevel {
        self.current().engine.kernel_level()
    }

    /// Snapshot the active model. Cheap: one read lock + `Arc` clone.
    pub fn current(&self) -> Arc<ActiveModel> {
        self.active.read().clone()
    }

    /// The shared line cache all installed engines memoize into.
    pub fn line_cache(&self) -> &Arc<LineCache> {
        &self.line_cache
    }

    /// Atomically swap in a new model; returns its generation. The
    /// engine is built before the write lock is taken, so readers are
    /// never blocked behind model construction. The line cache's
    /// generation is bumped *before* the new engine is built: entries
    /// memoized under the old model become unreachable at that instant
    /// (no sweep), while the still-running old engine keeps its own
    /// generation and keeps hitting its own entries until it drains.
    ///
    /// Install hooks run while the write lock is still held, so no
    /// reader can obtain the new model before every hook has finished.
    /// The disk tier depends on that fence: if the new model were
    /// visible before its `bump_generation` hook persisted, a request
    /// racing the install could serve an old-model parse from disk and
    /// re-promote it under the new generation.
    pub fn install(&self, parser: WhoisParser, version: impl Into<String>) -> u64 {
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        self.line_cache.set_generation(generation);
        let fresh = Arc::new(ActiveModel {
            version: version.into(),
            generation,
            engine: ParseEngine::with_decode_tier(
                parser,
                self.engine_workers,
                self.line_cache.clone(),
                self.decode_tier,
                self.decode_counters.clone(),
            ),
        });
        let version = fresh.version.clone();
        {
            let mut active = self.active.write();
            *active = fresh;
            for hook in self.install_hooks.read().iter() {
                hook(&version, generation);
            }
        }
        self.swaps.fetch_add(1, Ordering::SeqCst);
        generation
    }

    /// Register a callback to run on every future [`install`], after
    /// the swap but *before* it becomes visible: hooks run under the
    /// registry's write lock, so `current()` returns the new model
    /// only once every hook has completed. The disk store uses this to
    /// bump its persistent generation, guaranteeing no request can
    /// pair the new model with an unfenced store. Keep hooks brief —
    /// readers block on `current()` while they run.
    ///
    /// [`install`]: Self::install
    pub fn on_install(&self, hook: InstallHook) {
        self.install_hooks.write().push(hook);
    }

    /// Load a serialized [`WhoisParser`] from `path` and install it,
    /// versioned by the file stem. A read or deserialization failure
    /// bumps [`load_failures`](Self::load_failures) — corrupt or
    /// half-written uploads are an operational signal, not just an
    /// `eprintln`.
    pub fn install_file(&self, path: &Path) -> Result<u64, String> {
        let loaded = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: {e}", path.display()))
            .and_then(|json| {
                WhoisParser::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
            });
        match loaded {
            Ok(parser) => Ok(self.install(parser, file_version(path))),
            Err(e) => {
                self.load_failures.fetch_add(1, Ordering::SeqCst);
                Err(e)
            }
        }
    }

    /// Number of completed swaps (installs after the first model).
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::SeqCst)
    }

    /// Number of failed [`install_file`](Self::install_file) attempts
    /// (every retry of the same bad file counts).
    pub fn load_failures(&self) -> u64 {
        self.load_failures.load(Ordering::SeqCst)
    }
}

/// Version string for a model file: its stem (`model-0002.json` →
/// `model-0002`).
fn file_version(path: &Path) -> String {
    path.file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

/// The newest model file in `dir`: the `*.json` entry with the
/// lexicographically greatest file name (versioned naming —
/// `model-0001.json`, `model-0002.json`, … — sorts chronologically).
pub fn newest_model_file(dir: &Path) -> Option<PathBuf> {
    let entries = std::fs::read_dir(dir).ok()?;
    entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json") && p.is_file())
        .max()
}

/// Poll delay after `failures` consecutive load failures on the same
/// file: `interval * 2^min(failures, 6)` plus up to 25% jitter, so a
/// fleet of watchers staring at the same bad upload doesn't retry in
/// lockstep. Zero failures → the plain interval, no jitter.
fn backoff_delay(interval: Duration, failures: u32) -> Duration {
    if failures == 0 {
        return interval;
    }
    let scaled = interval.saturating_mul(1u32 << failures.min(6));
    // Cheap decorrelation without a PRNG dependency: hash the clock.
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0)
        .hash(&mut h);
    let jitter_cap = (scaled.as_millis() as u64 / 4).max(1);
    scaled + Duration::from_millis(h.finish() % jitter_cap)
}

/// Background thread polling a model directory for new versions.
pub struct ModelWatcher {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ModelWatcher {
    /// Watch `dir`, installing any new newest model into `registry`
    /// every `interval`. Files that fail to load are left alone and
    /// retried on later polls (logged once per path), so a corrupt or
    /// half-written upload can't take the service down — and a slow
    /// upload is picked up once it finishes. Publishing via
    /// write-to-temp-then-rename avoids the retry window entirely.
    ///
    /// Repeated failures on the *same* file back off exponentially
    /// (capped at 64× the poll interval) with a little jitter, so a
    /// permanently corrupt upload costs a handful of load attempts per
    /// minute instead of one per poll — the failure count stays visible
    /// in `HEALTH` as `model_load_failures`. The backoff resets the
    /// moment a different newest file appears or a load succeeds.
    pub fn start(
        registry: Arc<ModelRegistry>,
        dir: impl Into<PathBuf>,
        interval: Duration,
    ) -> Self {
        let dir = dir.into();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let thread = std::thread::Builder::new()
            .name("whois-serve-model-watcher".into())
            .spawn(move || {
                let mut last_seen: Option<PathBuf> = None;
                let mut last_failed: Option<PathBuf> = None;
                let mut failures: u32 = 0;
                while !stop_flag.load(Ordering::SeqCst) {
                    if let Some(newest) = newest_model_file(&dir) {
                        let is_new = last_seen.as_ref() != Some(&newest)
                            && file_version(&newest) != registry.current().version;
                        if is_new {
                            if last_failed.as_ref() != Some(&newest) {
                                // A different file: whatever we were
                                // backing off from is moot.
                                failures = 0;
                            }
                            match registry.install_file(&newest) {
                                Ok(generation) => {
                                    eprintln!(
                                        "[whois-serve] installed {} (generation {generation})",
                                        newest.display()
                                    );
                                    last_seen = Some(newest);
                                    last_failed = None;
                                    failures = 0;
                                }
                                Err(e) => {
                                    if last_failed.as_ref() != Some(&newest) {
                                        eprintln!(
                                            "[whois-serve] model load failed (will retry): {e}"
                                        );
                                        last_failed = Some(newest);
                                    }
                                    failures = failures.saturating_add(1);
                                }
                            }
                        }
                    }
                    // Sleep in small steps so stop() is prompt. Repeated
                    // failures stretch the sleep exponentially (with
                    // jitter) so a permanently bad file doesn't get
                    // hammered every poll.
                    let mut remaining = backoff_delay(interval, failures);
                    while !remaining.is_zero() && !stop_flag.load(Ordering::SeqCst) {
                        let step = remaining.min(Duration::from_millis(10));
                        std::thread::sleep(step);
                        remaining = remaining.saturating_sub(step);
                    }
                }
            })
            .expect("spawn model watcher");
        ModelWatcher {
            stop,
            thread: Some(thread),
        }
    }

    /// Stop the watcher and join its thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ModelWatcher {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whois_model::{BlockLabel, RegistrantLabel};
    use whois_parser::ParserConfig;
    use whois_parser::TrainExample;

    fn tiny_parser(seed: u64) -> WhoisParser {
        let corpus =
            whois_gen::corpus::generate_corpus(whois_gen::corpus::GenConfig::new(seed, 40));
        let first: Vec<TrainExample<BlockLabel>> = corpus
            .iter()
            .map(|d| TrainExample {
                text: d.rendered.text(),
                labels: d.block_labels().labels(),
            })
            .collect();
        let second: Vec<TrainExample<RegistrantLabel>> = corpus
            .iter()
            .filter_map(|d| {
                let reg = d.registrant_labels();
                (!reg.is_empty()).then(|| TrainExample {
                    text: reg.texts().join("\n"),
                    labels: reg.labels(),
                })
            })
            .collect();
        WhoisParser::train(&first, &second, &ParserConfig::default())
    }

    #[test]
    fn install_bumps_generation_and_readers_keep_old_arcs() {
        let registry = ModelRegistry::new(tiny_parser(1), "v1", 1);
        let before = registry.current();
        assert_eq!(before.generation, 1);
        assert_eq!(before.version, "v1");

        let gen2 = registry.install(tiny_parser(2), "v2");
        assert_eq!(gen2, 2);
        assert_eq!(registry.swaps(), 1);
        let after = registry.current();
        assert_eq!(after.version, "v2");
        // The pre-swap snapshot still works: in-flight requests finish
        // on the model they started with.
        assert_eq!(before.generation, 1);
        let raw = whois_model::RawRecord::new("x.com", "Domain Name: X.COM\n");
        let _ = before.engine.parse_one(&raw);
        let _ = after.engine.parse_one(&raw);
    }

    #[test]
    fn install_advances_shared_line_cache_generation() {
        let registry = ModelRegistry::new(tiny_parser(5), "v1", 1);
        assert_eq!(registry.line_cache().generation(), 1);
        let raw = whois_model::RawRecord::new("x.com", "Domain Name: X.COM\nRegistrar: R\n");
        let before = registry.current();
        let want_v1 = before.engine.parse_one(&raw);
        // Populate generation-1 entries, then swap models.
        let _ = before.engine.parse_one(&raw);

        let parser2 = tiny_parser(6);
        let want_v2 = parser2.parse(&raw);
        registry.install(parser2, "v2");
        assert_eq!(registry.line_cache().generation(), 2);
        let after = registry.current();
        assert_eq!(after.engine.cache_generation(), 2);
        // The new engine never sees generation-1 rows; the drained old
        // engine keeps matching its own model.
        assert_eq!(after.engine.parse_one(&raw), want_v2);
        assert_eq!(before.engine.parse_one(&raw), want_v1);
        // Both engines share the registry's cache.
        assert!(Arc::ptr_eq(
            before.engine.line_cache(),
            after.engine.line_cache()
        ));
    }

    #[test]
    fn fast_tier_registry_is_byte_identical_and_shares_counters_across_swaps() {
        let parser = tiny_parser(7);
        // Disabled line cache: every record exercises the decode tier.
        let registry = ModelRegistry::with_decode_tier(
            parser.clone(),
            "v1",
            1,
            Arc::new(LineCache::disabled()),
            DecodeTier::Fast,
        );
        assert_eq!(registry.decode_tier(), DecodeTier::Fast);
        assert!(registry.current().engine.fast_tier_active());
        let raw = whois_model::RawRecord::new(
            "x.com",
            "Domain Name: X.COM\nRegistrar: R\nRegistrant Name: J. Doe\n",
        );
        assert_eq!(
            registry.current().engine.parse_one(&raw),
            parser.parse(&raw)
        );
        let seen = registry.decode_counters().fast_decodes()
            + registry.decode_counters().exact_fallbacks();
        assert!(seen > 0, "decode outcomes are counted");
        // The same counters keep accumulating across a hot swap.
        let parser2 = tiny_parser(8);
        let want2 = parser2.parse(&raw);
        registry.install(parser2, "v2");
        assert_eq!(registry.current().engine.parse_one(&raw), want2);
        let after = registry.decode_counters().fast_decodes()
            + registry.decode_counters().exact_fallbacks();
        assert!(after > seen, "counters survive the swap");
    }

    #[test]
    fn install_hooks_complete_before_new_model_is_visible() {
        // Regression: install() used to publish the new model and only
        // then run hooks, so a racing request could pair the new model
        // with a store whose generation fence hadn't landed yet. The
        // hook now runs under the write lock; a reader must never
        // observe a model generation ahead of the hook-maintained
        // fence.
        let registry = Arc::new(ModelRegistry::new(tiny_parser(9), "v1", 1));
        let fence = Arc::new(AtomicU64::new(1));
        let hook_fence = fence.clone();
        registry.on_install(Box::new(move |_, generation| {
            // Simulate the disk tier's manifest persist: slow enough
            // that an unfenced reader would race past us.
            std::thread::sleep(Duration::from_millis(40));
            hook_fence.store(generation, Ordering::SeqCst);
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let registry = registry.clone();
            let fence = fence.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let model_generation = registry.current().generation;
                    let fenced = fence.load(Ordering::SeqCst);
                    assert!(
                        fenced >= model_generation,
                        "saw generation-{model_generation} model while the \
                         install hook had only fenced {fenced}"
                    );
                }
            })
        };
        registry.install(tiny_parser(10), "v2");
        registry.install(tiny_parser(12), "v3");
        stop.store(true, Ordering::SeqCst);
        reader.join().unwrap();
        assert_eq!(fence.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn backoff_delay_grows_exponentially_with_bounded_jitter() {
        let base = Duration::from_millis(10);
        assert_eq!(backoff_delay(base, 0), base, "no failures, no backoff");
        for failures in 1..=10u32 {
            let scaled = base * (1 << failures.min(6));
            let cap = scaled + Duration::from_millis((scaled.as_millis() as u64 / 4).max(1));
            for _ in 0..8 {
                let d = backoff_delay(base, failures);
                assert!(d >= scaled, "{failures} failures: {d:?} < {scaled:?}");
                assert!(d <= cap, "{failures} failures: {d:?} > {cap:?}");
            }
        }
        // The exponent is capped: 20 failures sleep no longer than 7.
        assert!(backoff_delay(base, 20) <= backoff_delay(base, 6) * 2);
    }

    #[test]
    fn watcher_backs_off_on_repeated_corrupt_loads() {
        let dir = std::env::temp_dir().join(format!(
            "whois-serve-backoff-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("model-0002.json"), "not json").unwrap();

        let registry = Arc::new(ModelRegistry::new(tiny_parser(11), "model-0001", 1));
        let watcher = ModelWatcher::start(registry.clone(), &dir, Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(400));
        watcher.stop();

        let failures = registry.load_failures();
        assert!(failures >= 1, "the corrupt file is attempted at least once");
        // Without backoff a 5 ms poll would attempt ~80 loads in 400 ms;
        // exponential backoff (5, 10, 20, 40, 80, 160 ms ... + jitter)
        // bounds it to a handful. Scheduling delays only *reduce* the
        // count, so the bound is load-robust.
        assert!(
            failures <= 8,
            "backoff should bound retries, saw {failures}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn newest_model_file_picks_greatest_name() {
        let dir = std::env::temp_dir().join(format!("whois-serve-reg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(newest_model_file(&dir).is_none());
        std::fs::write(dir.join("model-0001.json"), "{}").unwrap();
        std::fs::write(dir.join("model-0002.json"), "{}").unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let newest = newest_model_file(&dir).unwrap();
        assert!(newest.ends_with("model-0002.json"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watcher_installs_new_versions_and_survives_corrupt_files() {
        let dir = std::env::temp_dir().join(format!("whois-serve-watch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let registry = Arc::new(ModelRegistry::new(tiny_parser(3), "model-0001", 1));
        let watcher = ModelWatcher::start(registry.clone(), &dir, Duration::from_millis(10));

        // A corrupt newest file is skipped without killing the watcher,
        // and every failed attempt is counted.
        std::fs::write(dir.join("model-0002.json"), "not json").unwrap();
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(registry.current().version, "model-0001");
        assert!(registry.load_failures() >= 1, "failed loads are counted");

        // A valid one is installed.
        let parser = tiny_parser(4);
        std::fs::write(dir.join("model-0003.json"), parser.to_json().unwrap()).unwrap();
        // Generous: the watcher retries torn mid-write reads, and on a
        // loaded single-core test host the poll thread can be starved
        // for seconds at a time.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while registry.current().version != "model-0003" && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(registry.current().version, "model-0003");
        assert_eq!(registry.current().generation, 2);

        watcher.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
