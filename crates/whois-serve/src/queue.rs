//! Bounded MPMC admission queue: shed, don't stall.
//!
//! The serving rule the ISSUE encodes — under overload a service must
//! answer *something* fast rather than queue without bound — lives
//! here. [`BoundedQueue::try_push`] never blocks: when the queue is at
//! capacity the request is handed straight back so the connection thread
//! can reply "overloaded" while the client's timeout budget is still
//! intact. Workers block on [`pop`](BoundedQueue::pop), which drains any
//! remaining items after [`close`](BoundedQueue::close) and only then
//! returns `None` — which is exactly graceful drain-on-shutdown.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// At capacity: the caller should shed the request.
    Full(T),
    /// Shutting down: no new work is admitted.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

/// Mutex+condvar bounded queue (the vendored crossbeam stub only ships
/// unbounded channels; admission control needs the bound to be real).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Queue admitting at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.max(1)),
                capacity: capacity.max(1),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Non-blocking push. `Err(Full)` means shed; `Err(Closed)` means
    /// the service is draining.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= inner.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking pop: `Some(item)` while work exists (queued items are
    /// still handed out after `close`), `None` once closed *and* empty.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue poisoned");
        }
    }

    /// Stop admitting work; wake every blocked worker so they can drain
    /// the backlog and exit.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_roundtrip() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds_immediately() {
        let q = BoundedQueue::new(1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn closed_queue_refuses_new_work_but_drains_old() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_workers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for w in workers {
            assert_eq!(w.join().unwrap(), None);
        }
    }

    #[test]
    fn producers_and_consumers_interleave() {
        let q = Arc::new(BoundedQueue::<u64>::new(8));
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut sum = 0u64;
                while let Some(v) = q.pop() {
                    sum += v;
                }
                sum
            })
        };
        let mut pushed = 0u64;
        for v in 1..=100u64 {
            loop {
                match q.try_push(v) {
                    Ok(()) => {
                        pushed += v;
                        break;
                    }
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => unreachable!(),
                }
            }
        }
        q.close();
        assert_eq!(consumer.join().unwrap(), pushed);
    }
}
