//! Serving counters and per-stage latency accounting.
//!
//! Everything is a relaxed atomic: counters are bumped on the hot path
//! by connection threads and parse workers, and [`ServeStats::snapshot`]
//! reads a consistent-enough view for the `STATS` protocol verb without
//! stopping the world.

use crate::retrain::RetrainSnapshot;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use whois_parser::LineCacheStats;

/// Latency sum + count for one pipeline stage.
#[derive(Debug, Default)]
pub struct StageTimer {
    nanos: AtomicU64,
    count: AtomicU64,
}

impl StageTimer {
    /// Fold one measured duration into the stage.
    pub fn record(&self, elapsed: Duration) {
        self.nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> StageSnapshot {
        let nanos = self.nanos.load(Ordering::Relaxed);
        let count = self.count.load(Ordering::Relaxed);
        StageSnapshot {
            total_us: nanos / 1_000,
            count,
            mean_us: if count > 0 {
                nanos as f64 / count as f64 / 1_000.0
            } else {
                0.0
            },
        }
    }
}

/// Serialized view of one [`StageTimer`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StageSnapshot {
    /// Total time spent in the stage, microseconds.
    pub total_us: u64,
    /// Number of measurements.
    pub count: u64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
}

/// Live counters for a running service.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Protocol requests received (all verbs).
    pub requests: AtomicU64,
    /// `PARSE` requests.
    pub parse_requests: AtomicU64,
    /// `FETCH` requests.
    pub fetch_requests: AtomicU64,
    /// `STATS` requests.
    pub stats_requests: AtomicU64,
    /// Requests answered from the result cache.
    pub cache_hits: AtomicU64,
    /// Requests that had to run the parser.
    pub cache_misses: AtomicU64,
    /// Engine parses performed.
    pub parses: AtomicU64,
    /// Requests shed by admission control (queue full or draining).
    pub sheds: AtomicU64,
    /// Requests answered with an error.
    pub errors: AtomicU64,
    /// Upstream WHOIS fetches attempted.
    pub fetches: AtomicU64,
    /// Upstream fetches that produced no usable body.
    pub fetch_failures: AtomicU64,
    /// Parses that panicked inside a worker (contained, record
    /// quarantined).
    pub panics: AtomicU64,
    /// Cache evictions (and shutdown drains) written to the disk tier.
    pub store_spills: AtomicU64,
    /// RAM-cache misses answered from the disk tier.
    pub disk_hits: AtomicU64,
    /// RAM-cache misses the disk tier also missed (parse required).
    pub disk_misses: AtomicU64,
    /// Connections currently open (gauge).
    pub conns_open: AtomicU64,
    /// Connections currently reading request bytes (gauge; event loop
    /// only — the blocking core reads and writes on one thread and
    /// reports open connections as reading between requests).
    pub conns_reading: AtomicU64,
    /// Connections with a request queued on the worker pool (gauge).
    pub conns_queued: AtomicU64,
    /// Connections with unflushed reply bytes (gauge).
    pub conns_writing: AtomicU64,
    /// Connections closed by the idle/read deadline (counter).
    pub idle_closed: AtomicU64,
    /// Time jobs spent queued before a worker picked them up.
    pub queue_wait: StageTimer,
    /// Cache lookup time (hits and misses).
    pub cache_lookup: StageTimer,
    /// Engine parse time (misses only).
    pub parse: StageTimer,
    /// Reply serialization time (misses only).
    pub serialize: StageTimer,
    /// Upstream fetch time (`FETCH` only).
    pub fetch: StageTimer,
}

impl ServeStats {
    /// Bump a counter.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop a gauge (saturating; a gauge must never wrap on a missed
    /// increment).
    pub fn dec(gauge: &AtomicU64) {
        let _ = gauge.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(1))
        });
    }

    /// Point-in-time view of the live connection gauges.
    pub fn connection_gauges(&self) -> ConnectionGauges {
        ConnectionGauges {
            open: self.conns_open.load(Ordering::Relaxed),
            reading: self.conns_reading.load(Ordering::Relaxed),
            queued: self.conns_queued.load(Ordering::Relaxed),
            writing: self.conns_writing.load(Ordering::Relaxed),
            idle_closed: self.idle_closed.load(Ordering::Relaxed),
        }
    }

    /// Point-in-time view for the `STATS` verb. Model/cache fields are
    /// supplied by the service, which owns those components, as are the
    /// watcher's load-failure count and the quarantine ring's contents.
    #[allow(clippy::too_many_arguments)]
    pub fn snapshot(
        &self,
        model_version: &str,
        model_generation: u64,
        model_swaps: u64,
        cache_len: usize,
        workers: usize,
        line_cache: LineCacheStats,
        model_load_failures: u64,
        quarantine: Vec<QuarantineEntry>,
        decode: DecodeTierStats,
        store: StoreTierStats,
        retrain: RetrainSnapshot,
    ) -> StatsSnapshot {
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            parse_requests: self.parse_requests.load(Ordering::Relaxed),
            fetch_requests: self.fetch_requests.load(Ordering::Relaxed),
            stats_requests: self.stats_requests.load(Ordering::Relaxed),
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: if hits + misses > 0 {
                hits as f64 / (hits + misses) as f64
            } else {
                0.0
            },
            parses: self.parses.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            fetches: self.fetches.load(Ordering::Relaxed),
            fetch_failures: self.fetch_failures.load(Ordering::Relaxed),
            queue_wait: self.queue_wait.snapshot(),
            cache_lookup: self.cache_lookup.snapshot(),
            parse: self.parse.snapshot(),
            serialize: self.serialize.snapshot(),
            fetch: self.fetch.snapshot(),
            model_version: model_version.to_string(),
            model_generation,
            model_swaps,
            cache_len: cache_len as u64,
            workers: workers as u64,
            line_cache,
            panics: self.panics.load(Ordering::Relaxed),
            model_load_failures,
            quarantine_len: quarantine.len() as u64,
            quarantine,
            connections: self.connection_gauges(),
            decode,
            store,
            retrain,
        }
    }

    /// Fill the serving-side counters of a [`StoreTierStats`] (the
    /// store-side gauges come from [`whois_store::StoreStats`]).
    pub fn store_tier(&self, disk: Option<whois_store::StoreStats>) -> StoreTierStats {
        match disk {
            None => StoreTierStats::default(),
            Some(s) => StoreTierStats {
                enabled: true,
                segments: s.segments,
                live_bytes: s.live_bytes,
                dead_bytes: s.dead_bytes,
                parsed_entries: s.parsed_entries,
                raw_entries: s.raw_entries,
                compactions: s.compactions,
                last_recovery_truncated: s.last_recovery_truncated,
                spills: self.store_spills.load(Ordering::Relaxed),
                disk_hits: self.disk_hits.load(Ordering::Relaxed),
                disk_misses: self.disk_misses.load(Ordering::Relaxed),
            },
        }
    }
}

/// Disk-tier section of `STATS`/`HEALTH`: segment/byte gauges from the
/// store plus the serving-side spill and hit/miss counters. All zeros
/// (and `enabled: false`) when the daemon runs without `--store`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreTierStats {
    /// Whether a disk tier is attached.
    pub enabled: bool,
    /// Segment files in the store.
    pub segments: u64,
    /// Bytes of live (indexed) entries.
    pub live_bytes: u64,
    /// Reclaimable bytes (superseded / generation-fenced entries).
    pub dead_bytes: u64,
    /// Live parsed replies on disk.
    pub parsed_entries: u64,
    /// Live raw records on disk.
    pub raw_entries: u64,
    /// Compaction passes over the store's lifetime.
    pub compactions: u64,
    /// Bytes dropped by torn-tail truncation at the last open.
    pub last_recovery_truncated: u64,
    /// Cache evictions (and shutdown drains) written to disk.
    pub spills: u64,
    /// RAM misses answered from disk.
    pub disk_hits: u64,
    /// RAM misses the disk also missed.
    pub disk_misses: u64,
}

/// Fast-tier decode outcomes for the `STATS` verb: which tier the
/// registry builds engines with, and how often fast decodes stuck
/// versus fell back to the exact engine under the margin guard.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DecodeTierStats {
    /// Configured tier (`"fast"` / `"exact"`).
    pub tier: String,
    /// Level decodes completed on the fast tier.
    pub fast_decodes: u64,
    /// Level decodes re-run on the exact engine (margin under guard).
    pub exact_fallbacks: u64,
    /// `exact_fallbacks / (fast_decodes + exact_fallbacks)`.
    pub fallback_rate: f64,
    /// Active SIMD kernel level (`"scalar"`/`"sse2"`/`"avx2"`; appended
    /// after `fallback_rate`, empty in replies from older servers).
    #[serde(default)]
    pub kernel: String,
}

/// Live connection gauges: how many sockets the serving core holds and
/// what they are doing, plus the idle-deadline casualty count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionGauges {
    /// Connections currently open.
    pub open: u64,
    /// Connections accumulating request bytes.
    pub reading: u64,
    /// Connections whose request sits on the worker queue.
    pub queued: u64,
    /// Connections with unflushed reply bytes.
    pub writing: u64,
    /// Connections closed by the idle/read deadline (counter, not a
    /// gauge).
    pub idle_closed: u64,
}

/// One quarantined record: a (domain, body hash) pair whose parse
/// panicked. Subsequent requests for the same pair are refused without
/// re-running the parser.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineEntry {
    /// The domain of the poisoned request.
    pub domain: String,
    /// Hash of the record body as 16 hex digits (same keying as the
    /// result cache at generation 0, so it is model-independent; hex
    /// because JSON integers don't reliably carry full u64 range).
    pub body_hash: String,
}

/// The `HEALTH` verb's payload: liveness, not throughput. Answered
/// inline by the connection thread — it must work even when every parse
/// worker is wedged.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthSnapshot {
    /// Milliseconds since the service started.
    pub uptime_ms: u64,
    /// Configured parse workers.
    pub workers: u64,
    /// Workers currently alive (a worker that died to a contained panic
    /// and could not be respawned drops this below `workers`).
    pub workers_alive: u64,
    /// Contained parse panics since start.
    pub panics: u64,
    /// Entries in the quarantine ring.
    pub quarantine_len: u64,
    /// Model-file loads that failed (corrupt/half-written uploads).
    pub model_load_failures: u64,
    /// Active model version.
    pub model_version: String,
    /// Active model generation.
    pub model_generation: u64,
    /// Completed model swaps.
    pub model_swaps: u64,
    /// Whether the service is draining (shutdown in progress).
    pub draining: bool,
    /// Live connection gauges. `#[serde(default)]` keeps replies from
    /// older servers (which omit the field) deserializable.
    #[serde(default)]
    pub connections: ConnectionGauges,
    /// Configured decode tier (`"fast"` / `"exact"`; appended after
    /// `connections`, empty in replies from older servers).
    #[serde(default)]
    pub decode_tier: String,
    /// Disk-tier gauges and counters (appended after `decode_tier`;
    /// older replies omit it and deserialize to the disabled default).
    #[serde(default)]
    pub store: StoreTierStats,
    /// Active SIMD kernel level (appended after `store`; empty in
    /// replies from older servers).
    #[serde(default)]
    pub kernel: String,
    /// Drift-monitor and retrain-loop state (appended after `kernel`;
    /// older replies omit it and deserialize to the disabled default).
    #[serde(default)]
    pub retrain: RetrainSnapshot,
}

/// The `STATS` verb's payload.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Protocol requests received (all verbs).
    pub requests: u64,
    /// `PARSE` requests.
    pub parse_requests: u64,
    /// `FETCH` requests.
    pub fetch_requests: u64,
    /// `STATS` requests.
    pub stats_requests: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Requests that had to run the parser.
    pub cache_misses: u64,
    /// hits / (hits + misses), 0 when nothing was looked up.
    pub cache_hit_rate: f64,
    /// Engine parses performed.
    pub parses: u64,
    /// Requests shed by admission control.
    pub sheds: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Upstream fetches attempted.
    pub fetches: u64,
    /// Upstream fetches without a usable body.
    pub fetch_failures: u64,
    /// Queue-wait latency.
    pub queue_wait: StageSnapshot,
    /// Cache-lookup latency.
    pub cache_lookup: StageSnapshot,
    /// Parse latency (misses only).
    pub parse: StageSnapshot,
    /// Serialization latency (misses only).
    pub serialize: StageSnapshot,
    /// Upstream fetch latency.
    pub fetch: StageSnapshot,
    /// Active model version.
    pub model_version: String,
    /// Active model generation.
    pub model_generation: u64,
    /// Completed model swaps.
    pub model_swaps: u64,
    /// Entries in the result cache.
    pub cache_len: u64,
    /// Parse worker threads.
    pub workers: u64,
    /// Line-memoization cache counters (hits, misses, evictions).
    /// `#[serde(default)]` keeps old clients' replies parseable.
    #[serde(default)]
    pub line_cache: LineCacheStats,
    /// Contained parse panics. New fields stay `#[serde(default)]` and
    /// serialize *after* `line_cache` so replies from older servers
    /// (which stop at `line_cache` or earlier) still deserialize.
    #[serde(default)]
    pub panics: u64,
    /// Model-file loads that failed (watcher retries them).
    #[serde(default)]
    pub model_load_failures: u64,
    /// Entries in the quarantine ring.
    #[serde(default)]
    pub quarantine_len: u64,
    /// The quarantine ring's contents, oldest first.
    #[serde(default)]
    pub quarantine: Vec<QuarantineEntry>,
    /// Live connection gauges (appended after `quarantine`; older
    /// replies omit it and deserialize to zeros).
    #[serde(default)]
    pub connections: ConnectionGauges,
    /// Fast-tier decode outcomes (appended after `connections`; older
    /// replies omit it and deserialize to the zeroed default).
    #[serde(default)]
    pub decode: DecodeTierStats,
    /// Disk-tier gauges and counters (appended after `decode`; older
    /// replies omit it and deserialize to the disabled default).
    #[serde(default)]
    pub store: StoreTierStats,
    /// Drift-monitor and retrain-loop state (appended after `store`;
    /// older replies omit it and deserialize to the disabled default).
    #[serde(default)]
    pub retrain: RetrainSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_timer_accumulates() {
        let t = StageTimer::default();
        t.record(Duration::from_micros(100));
        t.record(Duration::from_micros(300));
        let s = t.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_us, 400);
        assert!((s.mean_us - 200.0).abs() < 1.0);
    }

    #[test]
    fn snapshot_computes_hit_rate_and_roundtrips_json() {
        let stats = ServeStats::default();
        for _ in 0..9 {
            ServeStats::inc(&stats.cache_hits);
        }
        ServeStats::inc(&stats.cache_misses);
        let line_cache = LineCacheStats {
            capacity: 1024,
            l1_hits: 7,
            l2_hits: 2,
            misses: 1,
            hit_rate: 0.9,
            ..LineCacheStats::default()
        };
        ServeStats::inc(&stats.panics);
        let quarantine = vec![QuarantineEntry {
            domain: "poison.com".into(),
            body_hash: format!("{:016x}", 0xDEAD_BEEFu64),
        }];
        let snap = stats.snapshot(
            "model-0001",
            3,
            2,
            17,
            4,
            line_cache,
            2,
            quarantine,
            DecodeTierStats {
                tier: "fast".into(),
                fast_decodes: 10,
                exact_fallbacks: 1,
                fallback_rate: 1.0 / 11.0,
                kernel: "avx2".into(),
            },
            StoreTierStats {
                enabled: true,
                segments: 2,
                live_bytes: 4096,
                dead_bytes: 128,
                parsed_entries: 9,
                raw_entries: 3,
                compactions: 1,
                last_recovery_truncated: 0,
                spills: 5,
                disk_hits: 4,
                disk_misses: 6,
            },
            RetrainSnapshot {
                enabled: true,
                records_seen: 100,
                low_confidence: 12,
                window_len: 48,
                window_mean: 0.91,
                drifting: false,
                queue_len: 3,
                queue_dropped: 0,
                queue_acked: 9,
                attempts: 2,
                deployed: 1,
                rejected: 1,
                rollbacks: 0,
                labeled: 8,
                label_dropped: 1,
                probation: true,
                incumbent_accuracy: 0.97,
                candidate_accuracy: 0.98,
                last_outcome: "deployed".into(),
            },
        );
        assert!((snap.cache_hit_rate - 0.9).abs() < 1e-9);
        assert_eq!(snap.model_generation, 3);
        assert_eq!(snap.cache_len, 17);
        assert_eq!(snap.line_cache.l1_hits, 7);
        assert_eq!(snap.panics, 1);
        assert_eq!(snap.model_load_failures, 2);
        assert_eq!(snap.quarantine_len, 1);
        assert_eq!(snap.quarantine[0].domain, "poison.com");
        assert!(snap.store.enabled);
        assert_eq!(snap.store.spills, 5);
        assert!(snap.retrain.enabled);
        assert_eq!(snap.retrain.deployed, 1);
        assert_eq!(snap.retrain.last_outcome, "deployed");
        let json = serde_json::to_string(&snap).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_deserializes_replies_without_line_cache_field() {
        // A reply from a pre-line-cache server omits that field and
        // everything after it; the serde defaults keep the client
        // compatible.
        let snap = ServeStats::default().snapshot(
            "v",
            1,
            0,
            0,
            1,
            LineCacheStats::default(),
            0,
            vec![],
            DecodeTierStats::default(),
            StoreTierStats::default(),
            RetrainSnapshot::default(),
        );
        let json = serde_json::to_string(&snap).unwrap();
        // `line_cache` and the robustness fields serialize last; chop
        // them off at the text level.
        let start = json.find(",\"line_cache\"").unwrap();
        let stripped = format!("{}}}", &json[..start]);
        let back: StatsSnapshot = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn old_snapshot_without_decode_field_still_deserializes() {
        let snap = ServeStats::default().snapshot(
            "v",
            1,
            0,
            0,
            1,
            LineCacheStats::default(),
            0,
            vec![],
            DecodeTierStats::default(),
            StoreTierStats::default(),
            RetrainSnapshot::default(),
        );
        let json = serde_json::to_string(&snap).unwrap();
        let start = json.find(",\"decode\"").unwrap();
        let stripped = format!("{}}}", &json[..start]);
        let back: StatsSnapshot = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, snap, "missing decode stats default to zero");
    }

    #[test]
    fn old_snapshot_without_store_section_still_deserializes() {
        let snap = ServeStats::default().snapshot(
            "v",
            1,
            0,
            0,
            1,
            LineCacheStats::default(),
            0,
            vec![],
            DecodeTierStats::default(),
            StoreTierStats::default(),
            RetrainSnapshot::default(),
        );
        let json = serde_json::to_string(&snap).unwrap();
        let start = json.find(",\"store\"").unwrap();
        let stripped = format!("{}}}", &json[..start]);
        let back: StatsSnapshot = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, snap, "missing store section defaults to disabled");
    }

    #[test]
    fn old_health_without_store_section_still_deserializes() {
        let health = HealthSnapshot::default();
        let json = serde_json::to_string(&health).unwrap();
        let start = json.find(",\"store\"").unwrap();
        let stripped = format!("{}}}", &json[..start]);
        let back: HealthSnapshot = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, health, "missing store section defaults to disabled");
    }

    #[test]
    fn store_tier_merges_disk_gauges_with_serve_counters() {
        let stats = ServeStats::default();
        ServeStats::inc(&stats.store_spills);
        ServeStats::inc(&stats.disk_hits);
        ServeStats::inc(&stats.disk_hits);
        ServeStats::inc(&stats.disk_misses);
        assert_eq!(stats.store_tier(None), StoreTierStats::default());
        let tier = stats.store_tier(Some(whois_store::StoreStats {
            segments: 3,
            total_bytes: 9000,
            live_bytes: 8000,
            dead_bytes: 1000,
            parsed_entries: 40,
            raw_entries: 2,
            generation: 7,
            compactions: 2,
            last_recovery_truncated: 13,
        }));
        assert!(tier.enabled);
        assert_eq!(tier.segments, 3);
        assert_eq!(tier.live_bytes, 8000);
        assert_eq!(tier.dead_bytes, 1000);
        assert_eq!(tier.compactions, 2);
        assert_eq!(tier.last_recovery_truncated, 13);
        assert_eq!((tier.spills, tier.disk_hits, tier.disk_misses), (1, 2, 1));
    }

    #[test]
    fn old_decode_stats_without_kernel_still_deserialize() {
        // `kernel` is the last DecodeTierStats field; replies from
        // pre-kernel servers omit it.
        let decode = DecodeTierStats::default();
        let json = serde_json::to_string(&decode).unwrap();
        let start = json.find(",\"kernel\"").unwrap();
        let stripped = format!("{}}}", &json[..start]);
        let back: DecodeTierStats = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, decode, "missing kernel defaults to empty");
    }

    #[test]
    fn old_health_without_kernel_still_deserializes() {
        let health = HealthSnapshot::default();
        let json = serde_json::to_string(&health).unwrap();
        let start = json.find(",\"kernel\"").unwrap();
        let stripped = format!("{}}}", &json[..start]);
        let back: HealthSnapshot = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, health, "missing kernel defaults to empty");
    }

    #[test]
    fn old_snapshot_without_retrain_section_still_deserializes() {
        let snap = ServeStats::default().snapshot(
            "v",
            1,
            0,
            0,
            1,
            LineCacheStats::default(),
            0,
            vec![],
            DecodeTierStats::default(),
            StoreTierStats::default(),
            RetrainSnapshot::default(),
        );
        let json = serde_json::to_string(&snap).unwrap();
        let start = json.find(",\"retrain\"").unwrap();
        let stripped = format!("{}}}", &json[..start]);
        let back: StatsSnapshot = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, snap, "missing retrain section defaults to disabled");
    }

    #[test]
    fn old_health_without_retrain_section_still_deserializes() {
        let health = HealthSnapshot {
            retrain: RetrainSnapshot::default(),
            ..HealthSnapshot::default()
        };
        let json = serde_json::to_string(&health).unwrap();
        let start = json.find(",\"retrain\"").unwrap();
        let stripped = format!("{}}}", &json[..start]);
        let back: HealthSnapshot = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, health, "missing retrain section defaults to disabled");
    }

    #[test]
    fn old_health_without_decode_tier_still_deserializes() {
        let health = HealthSnapshot::default();
        let json = serde_json::to_string(&health).unwrap();
        let start = json.find(",\"decode_tier\"").unwrap();
        let stripped = format!("{}}}", &json[..start]);
        let back: HealthSnapshot = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, health, "missing decode tier defaults to empty");
    }

    #[test]
    fn health_snapshot_roundtrips_json() {
        let health = HealthSnapshot {
            uptime_ms: 1234,
            workers: 4,
            workers_alive: 4,
            panics: 1,
            quarantine_len: 1,
            model_load_failures: 0,
            model_version: "model-0001".into(),
            model_generation: 2,
            model_swaps: 1,
            draining: false,
            decode_tier: "fast".into(),
            kernel: "sse2".into(),
            store: StoreTierStats {
                enabled: true,
                segments: 1,
                ..StoreTierStats::default()
            },
            connections: ConnectionGauges {
                open: 3,
                reading: 1,
                queued: 1,
                writing: 1,
                idle_closed: 2,
            },
            retrain: RetrainSnapshot {
                enabled: true,
                drifting: true,
                queue_len: 7,
                ..RetrainSnapshot::default()
            },
        };
        let json = serde_json::to_string(&health).unwrap();
        let back: HealthSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, health);
    }

    #[test]
    fn connection_gauges_saturate_and_surface_in_snapshots() {
        let stats = ServeStats::default();
        ServeStats::dec(&stats.conns_open); // never wraps below zero
        assert_eq!(stats.connection_gauges().open, 0);
        ServeStats::inc(&stats.conns_open);
        ServeStats::inc(&stats.conns_open);
        ServeStats::inc(&stats.conns_reading);
        ServeStats::inc(&stats.conns_writing);
        ServeStats::dec(&stats.conns_open);
        ServeStats::inc(&stats.idle_closed);
        let gauges = stats.connection_gauges();
        assert_eq!(
            (
                gauges.open,
                gauges.reading,
                gauges.writing,
                gauges.idle_closed
            ),
            (1, 1, 1, 1)
        );
        let snap = ServeStats::default().snapshot(
            "v",
            1,
            0,
            0,
            1,
            LineCacheStats::default(),
            0,
            vec![],
            DecodeTierStats::default(),
            StoreTierStats::default(),
            RetrainSnapshot::default(),
        );
        assert_eq!(snap.connections, ConnectionGauges::default());
    }

    #[test]
    fn old_snapshot_without_connection_gauges_still_deserializes() {
        let snap = ServeStats::default().snapshot(
            "v",
            1,
            0,
            0,
            1,
            LineCacheStats::default(),
            0,
            vec![],
            DecodeTierStats::default(),
            StoreTierStats::default(),
            RetrainSnapshot::default(),
        );
        let json = serde_json::to_string(&snap).unwrap();
        let start = json.find(",\"connections\"").unwrap();
        let stripped = format!("{}}}", &json[..start]);
        let back: StatsSnapshot = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, snap, "missing gauges default to zero");
    }
}
