//! Serving counters and per-stage latency accounting.
//!
//! Everything is a relaxed atomic: counters are bumped on the hot path
//! by connection threads and parse workers, and [`ServeStats::snapshot`]
//! reads a consistent-enough view for the `STATS` protocol verb without
//! stopping the world.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use whois_parser::LineCacheStats;

/// Latency sum + count for one pipeline stage.
#[derive(Debug, Default)]
pub struct StageTimer {
    nanos: AtomicU64,
    count: AtomicU64,
}

impl StageTimer {
    /// Fold one measured duration into the stage.
    pub fn record(&self, elapsed: Duration) {
        self.nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> StageSnapshot {
        let nanos = self.nanos.load(Ordering::Relaxed);
        let count = self.count.load(Ordering::Relaxed);
        StageSnapshot {
            total_us: nanos / 1_000,
            count,
            mean_us: if count > 0 {
                nanos as f64 / count as f64 / 1_000.0
            } else {
                0.0
            },
        }
    }
}

/// Serialized view of one [`StageTimer`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StageSnapshot {
    /// Total time spent in the stage, microseconds.
    pub total_us: u64,
    /// Number of measurements.
    pub count: u64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
}

/// Live counters for a running service.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Protocol requests received (all verbs).
    pub requests: AtomicU64,
    /// `PARSE` requests.
    pub parse_requests: AtomicU64,
    /// `FETCH` requests.
    pub fetch_requests: AtomicU64,
    /// `STATS` requests.
    pub stats_requests: AtomicU64,
    /// Requests answered from the result cache.
    pub cache_hits: AtomicU64,
    /// Requests that had to run the parser.
    pub cache_misses: AtomicU64,
    /// Engine parses performed.
    pub parses: AtomicU64,
    /// Requests shed by admission control (queue full or draining).
    pub sheds: AtomicU64,
    /// Requests answered with an error.
    pub errors: AtomicU64,
    /// Upstream WHOIS fetches attempted.
    pub fetches: AtomicU64,
    /// Upstream fetches that produced no usable body.
    pub fetch_failures: AtomicU64,
    /// Time jobs spent queued before a worker picked them up.
    pub queue_wait: StageTimer,
    /// Cache lookup time (hits and misses).
    pub cache_lookup: StageTimer,
    /// Engine parse time (misses only).
    pub parse: StageTimer,
    /// Reply serialization time (misses only).
    pub serialize: StageTimer,
    /// Upstream fetch time (`FETCH` only).
    pub fetch: StageTimer,
}

impl ServeStats {
    /// Bump a counter.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time view for the `STATS` verb. Model/cache fields are
    /// supplied by the service, which owns those components.
    pub fn snapshot(
        &self,
        model_version: &str,
        model_generation: u64,
        model_swaps: u64,
        cache_len: usize,
        workers: usize,
        line_cache: LineCacheStats,
    ) -> StatsSnapshot {
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            parse_requests: self.parse_requests.load(Ordering::Relaxed),
            fetch_requests: self.fetch_requests.load(Ordering::Relaxed),
            stats_requests: self.stats_requests.load(Ordering::Relaxed),
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: if hits + misses > 0 {
                hits as f64 / (hits + misses) as f64
            } else {
                0.0
            },
            parses: self.parses.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            fetches: self.fetches.load(Ordering::Relaxed),
            fetch_failures: self.fetch_failures.load(Ordering::Relaxed),
            queue_wait: self.queue_wait.snapshot(),
            cache_lookup: self.cache_lookup.snapshot(),
            parse: self.parse.snapshot(),
            serialize: self.serialize.snapshot(),
            fetch: self.fetch.snapshot(),
            model_version: model_version.to_string(),
            model_generation,
            model_swaps,
            cache_len: cache_len as u64,
            workers: workers as u64,
            line_cache,
        }
    }
}

/// The `STATS` verb's payload.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Protocol requests received (all verbs).
    pub requests: u64,
    /// `PARSE` requests.
    pub parse_requests: u64,
    /// `FETCH` requests.
    pub fetch_requests: u64,
    /// `STATS` requests.
    pub stats_requests: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Requests that had to run the parser.
    pub cache_misses: u64,
    /// hits / (hits + misses), 0 when nothing was looked up.
    pub cache_hit_rate: f64,
    /// Engine parses performed.
    pub parses: u64,
    /// Requests shed by admission control.
    pub sheds: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Upstream fetches attempted.
    pub fetches: u64,
    /// Upstream fetches without a usable body.
    pub fetch_failures: u64,
    /// Queue-wait latency.
    pub queue_wait: StageSnapshot,
    /// Cache-lookup latency.
    pub cache_lookup: StageSnapshot,
    /// Parse latency (misses only).
    pub parse: StageSnapshot,
    /// Serialization latency (misses only).
    pub serialize: StageSnapshot,
    /// Upstream fetch latency.
    pub fetch: StageSnapshot,
    /// Active model version.
    pub model_version: String,
    /// Active model generation.
    pub model_generation: u64,
    /// Completed model swaps.
    pub model_swaps: u64,
    /// Entries in the result cache.
    pub cache_len: u64,
    /// Parse worker threads.
    pub workers: u64,
    /// Line-memoization cache counters (hits, misses, evictions).
    /// `#[serde(default)]` keeps old clients' replies parseable.
    #[serde(default)]
    pub line_cache: LineCacheStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_timer_accumulates() {
        let t = StageTimer::default();
        t.record(Duration::from_micros(100));
        t.record(Duration::from_micros(300));
        let s = t.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_us, 400);
        assert!((s.mean_us - 200.0).abs() < 1.0);
    }

    #[test]
    fn snapshot_computes_hit_rate_and_roundtrips_json() {
        let stats = ServeStats::default();
        for _ in 0..9 {
            ServeStats::inc(&stats.cache_hits);
        }
        ServeStats::inc(&stats.cache_misses);
        let line_cache = LineCacheStats {
            capacity: 1024,
            l1_hits: 7,
            l2_hits: 2,
            misses: 1,
            hit_rate: 0.9,
            ..LineCacheStats::default()
        };
        let snap = stats.snapshot("model-0001", 3, 2, 17, 4, line_cache);
        assert!((snap.cache_hit_rate - 0.9).abs() < 1e-9);
        assert_eq!(snap.model_generation, 3);
        assert_eq!(snap.cache_len, 17);
        assert_eq!(snap.line_cache.l1_hits, 7);
        let json = serde_json::to_string(&snap).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_deserializes_replies_without_line_cache_field() {
        // A reply from a pre-line-cache server omits the field; the
        // serde default keeps the client compatible.
        let snap = ServeStats::default().snapshot("v", 1, 0, 0, 1, LineCacheStats::default());
        let json = serde_json::to_string(&snap).unwrap();
        // `line_cache` serializes last; chop it off at the text level.
        let start = json.find(",\"line_cache\"").unwrap();
        let stripped = format!("{}}}", &json[..start]);
        let back: StatsSnapshot = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, snap);
    }
}
