//! The parse daemon: acceptor → bounded queue → parse workers.
//!
//! Request path, in stage order (each stage timed into [`ServeStats`]):
//!
//! ```text
//! connection thread        parse worker
//! ─────────────────        ────────────────────────────────────
//! read line                queue_wait (time spent queued)
//! decode verb              [FETCH only] upstream fetch
//! admission: try_push ──►  cache lookup (hit → reply as cached)
//!   full?   shed reply     parse (ParseEngine::parse_one)
//!   closed? drain reply    serialize + cache insert
//! write reply line    ◄──  send reply
//! ```
//!
//! Admission control is the `try_push`: the queue is capacity-bounded
//! and never blocks, so under overload clients get an explicit
//! `{"ok":false,"error":"overloaded","shed":true}` in microseconds
//! instead of a stalled socket. Shutdown closes the queue: workers
//! drain what was admitted, connection threads answer everything newer
//! with a drain reply, and [`ParseService::shutdown`] reports both
//! counts.

use crate::cache::{cache_key, ShardedCache};
use crate::queue::{BoundedQueue, PushError};
use crate::registry::ModelRegistry;
use crate::stats::{HealthSnapshot, QuarantineEntry, ServeStats, StatsSnapshot};
use crate::wire::{ParseRequest, Reply, Request};
use bytes::BytesMut;
use crossbeam::channel;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use whois_model::RawRecord;
use whois_net::proto::{self, ReplyKind};
use whois_net::WhoisClient;

/// Where `FETCH` requests go: a WHOIS registry plus the referral
/// resolver, exactly like [`whois_net::Crawler`]'s view of the world.
#[derive(Clone, Debug)]
pub struct UpstreamConfig {
    /// The registry (thin) server.
    pub registry: SocketAddr,
    /// Referral host name → address.
    pub resolver: HashMap<String, SocketAddr>,
    /// Client used for upstream queries.
    pub client: WhoisClient,
}

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Parse worker threads (0 = available parallelism).
    pub workers: usize,
    /// Admission queue capacity; requests beyond it are shed.
    pub queue_capacity: usize,
    /// Result cache capacity, total entries.
    pub cache_capacity: usize,
    /// Result cache shard count.
    pub cache_shards: usize,
    /// Per-connection read timeout (idle persistent connections are
    /// closed after this).
    pub read_timeout: Duration,
    /// Longest accepted request line.
    pub max_request_len: usize,
    /// Upstream WHOIS for `FETCH` (absent → `FETCH` is an error).
    pub upstream: Option<UpstreamConfig>,
    /// Quarantine ring capacity: how many (domain, body-hash) pairs
    /// whose parse panicked are remembered and refused without
    /// re-parsing. 0 disables quarantine (panics are still contained).
    pub quarantine_capacity: usize,
    /// Test hook: a domain whose parse panics unconditionally. Lets the
    /// survivability tests rig a poison record without needing a real
    /// parser bug.
    pub panic_trigger: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_capacity: 64,
            cache_capacity: 4096,
            cache_shards: 8,
            read_timeout: Duration::from_secs(10),
            max_request_len: 1 << 20,
            upstream: None,
            quarantine_capacity: 64,
            panic_trigger: None,
        }
    }
}

/// What [`ParseService::shutdown`] observed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Jobs that were queued at the shutdown signal and completed
    /// during the drain (admitted work is never dropped).
    pub drained: u64,
    /// Requests refused with a drain reply after the signal.
    pub shed: u64,
}

/// One admitted unit of work.
struct Job {
    work: Work,
    enqueued: Instant,
    reply_tx: channel::Sender<Arc<String>>,
}

enum Work {
    Parse(ParseRequest),
    Fetch(String),
}

/// State shared by the acceptor, connection threads, and workers.
struct ServiceCtx {
    cfg: ServeConfig,
    registry: Arc<ModelRegistry>,
    cache: ShardedCache,
    stats: ServeStats,
    queue: BoundedQueue<Job>,
    shutdown: AtomicBool,
    workers: usize,
    started: Instant,
    /// Live worker-thread count (each drops it on exit, panicking or
    /// not); `HEALTH` compares it to `workers`.
    workers_alive: AtomicU64,
    /// Ring of records whose parse panicked, oldest first.
    quarantine: Mutex<VecDeque<QuarantineEntry>>,
}

impl ServiceCtx {
    /// Serve one already-decoded request, returning the reply line.
    fn respond(&self, request: Request) -> Arc<String> {
        match request {
            Request::Stats => {
                ServeStats::inc(&self.stats.stats_requests);
                Arc::new(Reply::stats(self.snapshot()).encode())
            }
            // Answered inline on the connection thread, never queued: a
            // liveness probe must respond even when every parse worker
            // is wedged or the queue is full.
            Request::Health => Arc::new(Reply::health(self.health_snapshot()).encode()),
            Request::Parse(req) => {
                ServeStats::inc(&self.stats.parse_requests);
                self.submit(Work::Parse(req))
            }
            Request::Fetch(domain) => {
                ServeStats::inc(&self.stats.fetch_requests);
                if self.cfg.upstream.is_none() {
                    ServeStats::inc(&self.stats.errors);
                    return Arc::new(
                        Reply::error("no upstream configured for FETCH", false).encode(),
                    );
                }
                self.submit(Work::Fetch(domain))
            }
        }
    }

    /// Admission control: enqueue and wait for the worker's reply, or
    /// shed immediately.
    fn submit(&self, work: Work) -> Arc<String> {
        let (reply_tx, reply_rx) = channel::unbounded();
        let job = Job {
            work,
            enqueued: Instant::now(),
            reply_tx,
        };
        match self.queue.try_push(job) {
            Ok(()) => reply_rx
                .recv()
                .unwrap_or_else(|_| Arc::new(Reply::error("worker failed", false).encode())),
            Err(PushError::Full(_)) => {
                ServeStats::inc(&self.stats.sheds);
                Arc::new(Reply::error("overloaded", true).encode())
            }
            Err(PushError::Closed(_)) => {
                ServeStats::inc(&self.stats.sheds);
                Arc::new(Reply::error("draining", true).encode())
            }
        }
    }

    /// Cache-before-parse: the headline serving optimization.
    fn parse_reply(&self, domain: &str, text: &str) -> Arc<String> {
        let model = self.registry.current();
        let key = cache_key(model.generation, domain, text);
        let t = Instant::now();
        let cached = self.cache.get(key);
        self.stats.cache_lookup.record(t.elapsed());
        if let Some(line) = cached {
            ServeStats::inc(&self.stats.cache_hits);
            return line;
        }
        ServeStats::inc(&self.stats.cache_misses);

        // Quarantine check — keyed model-independently (generation 0),
        // so a poison record stays quarantined across model swaps.
        let body_hash = format!("{:016x}", cache_key(0, domain, text));
        if self.is_quarantined(domain, &body_hash) {
            ServeStats::inc(&self.stats.errors);
            return Arc::new(
                Reply::error(
                    "internal: record quarantined (a previous parse panicked)",
                    false,
                )
                .encode(),
            );
        }

        // Panic containment: a parse that panics must cost one request,
        // not a worker thread. The engine and caches are only *read*
        // here (the scratch pool heals itself — a scratch leased by a
        // panicking parse is simply never returned), so resuming past
        // the unwind is sound.
        let t = Instant::now();
        let trigger = self.cfg.panic_trigger.as_deref();
        let parsed = catch_unwind(AssertUnwindSafe(|| {
            if trigger.is_some_and(|t| t.eq_ignore_ascii_case(domain)) {
                panic!("rigged parse panic for {domain}");
            }
            model.engine.parse_one(&RawRecord::new(domain, text))
        }));
        self.stats.parse.record(t.elapsed());
        let record = match parsed {
            Ok(record) => record,
            Err(_) => {
                ServeStats::inc(&self.stats.panics);
                ServeStats::inc(&self.stats.errors);
                self.quarantine_push(domain, body_hash);
                return Arc::new(
                    Reply::error("internal: parse panicked; record quarantined", false).encode(),
                );
            }
        };
        ServeStats::inc(&self.stats.parses);

        let t = Instant::now();
        let line = Arc::new(Reply::record(&model.version, record).encode());
        self.stats.serialize.record(t.elapsed());
        self.cache.insert(key, line.clone());
        line
    }

    fn is_quarantined(&self, domain: &str, body_hash: &str) -> bool {
        let domain = domain.to_lowercase();
        self.quarantine
            .lock()
            .iter()
            .any(|e| e.body_hash == body_hash && e.domain == domain)
    }

    fn quarantine_push(&self, domain: &str, body_hash: String) {
        if self.cfg.quarantine_capacity == 0 {
            return;
        }
        let mut ring = self.quarantine.lock();
        while ring.len() >= self.cfg.quarantine_capacity {
            ring.pop_front();
        }
        ring.push_back(QuarantineEntry {
            domain: domain.to_lowercase(),
            body_hash,
        });
    }

    /// `FETCH`: two-step upstream crawl (thin → referral → thick, thin
    /// fallback), then the normal cached parse path.
    fn fetch_reply(&self, domain: &str) -> Arc<String> {
        let up = self.cfg.upstream.as_ref().expect("checked by respond");
        ServeStats::inc(&self.stats.fetches);
        let t = Instant::now();
        let body = fetch_body(up, domain);
        self.stats.fetch.record(t.elapsed());
        match body {
            Ok(text) => self.parse_reply(domain, &text),
            Err(message) => {
                ServeStats::inc(&self.stats.fetch_failures);
                ServeStats::inc(&self.stats.errors);
                Arc::new(Reply::error(message, false).encode())
            }
        }
    }

    fn snapshot(&self) -> StatsSnapshot {
        let model = self.registry.current();
        self.stats.snapshot(
            &model.version,
            model.generation,
            self.registry.swaps(),
            self.cache.len(),
            self.workers,
            self.registry.line_cache().stats(),
            self.registry.load_failures(),
            self.quarantine.lock().iter().cloned().collect(),
        )
    }

    fn health_snapshot(&self) -> HealthSnapshot {
        let model = self.registry.current();
        HealthSnapshot {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            workers: self.workers as u64,
            workers_alive: self.workers_alive.load(Ordering::SeqCst),
            panics: self.stats.panics.load(Ordering::Relaxed),
            quarantine_len: self.quarantine.lock().len() as u64,
            model_load_failures: self.registry.load_failures(),
            model_version: model.version.clone(),
            model_generation: model.generation,
            model_swaps: self.registry.swaps(),
            draining: self.shutdown.load(Ordering::SeqCst),
        }
    }
}

/// Fetch the best available record body for `domain` from upstream.
fn fetch_body(up: &UpstreamConfig, domain: &str) -> Result<String, String> {
    let thin = up
        .client
        .query(up.registry, domain)
        .map_err(|e| format!("registry query failed: {e}"))?;
    match proto::classify_reply(&thin) {
        ReplyKind::Record => {}
        ReplyKind::NoMatch => return Err(format!("no match for {domain}")),
        other => return Err(format!("registry reply unusable ({other:?})")),
    }
    if let Some(host) = proto::referral_server(&thin) {
        if let Some(&addr) = up.resolver.get(&host) {
            if let Ok(thick) = up.client.query(addr, domain) {
                if proto::classify_reply(&thick) == ReplyKind::Record {
                    return Ok(thick);
                }
            }
        }
    }
    Ok(thin)
}

/// A running parse service bound to a loopback port.
pub struct ParseService {
    addr: SocketAddr,
    ctx: Arc<ServiceCtx>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    worker_threads: Vec<std::thread::JoinHandle<()>>,
    report: Option<DrainReport>,
}

impl ParseService {
    /// Start the daemon on an ephemeral loopback port (or `port` if
    /// nonzero).
    pub fn start(
        registry: Arc<ModelRegistry>,
        cfg: ServeConfig,
        port: u16,
    ) -> std::io::Result<ParseService> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            cfg.workers
        };
        // Warm one scratch per worker so first requests skip cold-start
        // allocations.
        registry.current().engine.warm(workers);
        let ctx = Arc::new(ServiceCtx {
            cache: ShardedCache::new(cfg.cache_capacity, cfg.cache_shards),
            queue: BoundedQueue::new(cfg.queue_capacity),
            stats: ServeStats::default(),
            shutdown: AtomicBool::new(false),
            registry,
            workers,
            started: Instant::now(),
            // Counted up-front so HEALTH is exact from the first
            // request; the drop guard in worker_loop decrements.
            workers_alive: AtomicU64::new(workers as u64),
            quarantine: Mutex::new(VecDeque::new()),
            cfg,
        });

        let worker_threads = (0..workers)
            .map(|i| {
                let ctx = ctx.clone();
                std::thread::Builder::new()
                    .name(format!("whois-serve-worker-{i}"))
                    .spawn(move || worker_loop(&ctx))
                    .expect("spawn parse worker")
            })
            .collect();

        let accept_ctx = ctx.clone();
        let accept_thread = std::thread::Builder::new()
            .name(format!("whois-serve-{}", addr.port()))
            .spawn(move || {
                while !accept_ctx.shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let ctx = accept_ctx.clone();
                            std::thread::spawn(move || {
                                let _ = handle_connection(stream, &ctx);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn accept thread");

        Ok(ParseService {
            addr,
            ctx,
            accept_thread: Some(accept_thread),
            worker_threads,
            report: None,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current serving statistics (same payload as the `STATS` verb).
    pub fn stats(&self) -> StatsSnapshot {
        self.ctx.snapshot()
    }

    /// The model registry backing this service.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.ctx.registry
    }

    /// Entries in the result cache.
    pub fn cache_len(&self) -> usize {
        self.ctx.cache.len()
    }

    /// Graceful drain: stop admitting, finish everything admitted,
    /// report what drained versus what was shed on the way down.
    /// Idempotent — repeat calls return the first report.
    pub fn shutdown(&mut self) -> DrainReport {
        if let Some(report) = self.report {
            return report;
        }
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        let queued = self.ctx.queue.len() as u64;
        let sheds_before = self.ctx.stats.sheds.load(Ordering::Relaxed);
        self.ctx.queue.close();
        for w in self.worker_threads.drain(..) {
            let _ = w.join();
        }
        if let Some(a) = self.accept_thread.take() {
            let _ = a.join();
        }
        let report = DrainReport {
            drained: queued,
            shed: self.ctx.stats.sheds.load(Ordering::Relaxed) - sheds_before,
        };
        self.report = Some(report);
        report
    }
}

impl Drop for ParseService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Decrements `workers_alive` when the owning worker thread exits —
/// normally at drain, or abnormally if a panic ever escapes the
/// per-request containment. `HEALTH` surfaces the difference.
struct WorkerAliveGuard<'a> {
    ctx: &'a ServiceCtx,
}

impl Drop for WorkerAliveGuard<'_> {
    fn drop(&mut self) {
        self.ctx.workers_alive.fetch_sub(1, Ordering::SeqCst);
    }
}

fn worker_loop(ctx: &ServiceCtx) {
    let _guard = WorkerAliveGuard { ctx };
    while let Some(job) = ctx.queue.pop() {
        ctx.stats.queue_wait.record(job.enqueued.elapsed());
        let reply = match &job.work {
            Work::Parse(req) => ctx.parse_reply(&req.domain, &req.text),
            Work::Fetch(domain) => ctx.fetch_reply(domain),
        };
        let _ = job.reply_tx.send(reply);
    }
}

/// Serve one (persistent) connection: loop reading request lines until
/// EOF, timeout, or shutdown.
fn handle_connection(mut stream: TcpStream, ctx: &ServiceCtx) -> std::io::Result<()> {
    stream.set_read_timeout(Some(ctx.cfg.read_timeout))?;
    stream.set_nodelay(true)?;
    let mut buf = BytesMut::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        let line = loop {
            match proto::decode_line(&mut buf, ctx.cfg.max_request_len) {
                Ok(Some(line)) => break line,
                Ok(None) => {}
                Err(e) => {
                    ServeStats::inc(&ctx.stats.errors);
                    let reply = Reply::error(e.to_string(), false).encode();
                    let _ = write_line(&mut stream, &reply);
                    return Ok(());
                }
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Ok(()); // client hung up
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        if line.is_empty() {
            continue;
        }
        ServeStats::inc(&ctx.stats.requests);
        let decoded = Request::decode(&line);
        // HEALTH is answered even while draining (with `draining:true`
        // in the payload) — a probe that gets cut off mid-shutdown
        // can't tell "draining" from "dead".
        if ctx.shutdown.load(Ordering::SeqCst) && !matches!(decoded, Ok(Request::Health)) {
            ServeStats::inc(&ctx.stats.sheds);
            write_line(&mut stream, &Reply::error("draining", true).encode())?;
            return Ok(());
        }
        let reply = match decoded {
            Ok(request) => ctx.respond(request),
            Err(message) => {
                ServeStats::inc(&ctx.stats.errors);
                Arc::new(Reply::error(message, false).encode())
            }
        };
        write_line(&mut stream, &reply)?;
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}
