//! The parse daemon: acceptor → bounded queue → parse workers.
//!
//! Request path, in stage order (each stage timed into [`ServeStats`]):
//!
//! ```text
//! connection thread        parse worker
//! ─────────────────        ────────────────────────────────────
//! read line                queue_wait (time spent queued)
//! decode verb              [FETCH only] upstream fetch
//! admission: try_push ──►  cache lookup (hit → reply as cached)
//!   full?   shed reply     parse (ParseEngine::parse_one)
//!   closed? drain reply    serialize + cache insert
//! write reply line    ◄──  send reply
//! ```
//!
//! Admission control is the `try_push`: the queue is capacity-bounded
//! and never blocks, so under overload clients get an explicit
//! `{"ok":false,"error":"overloaded","shed":true}` in microseconds
//! instead of a stalled socket. Shutdown closes the queue: workers
//! drain what was admitted, connection threads answer everything newer
//! with a drain reply, and [`ParseService::shutdown`] reports both
//! counts.
//!
//! Two serving cores share that protocol logic (selected by
//! [`ServeConfig::mode`], byte-identical by construction and by
//! differential test):
//!
//! * **Event loop** (default): one acceptor thread multiplexes every
//!   connection through an epoll poller — nonblocking reads into pooled
//!   buffers, at most one in-flight parse job per connection (which is
//!   what keeps pipelined replies in request order), completions routed
//!   back over a channel plus a [`Waker`], vectored writes of shared
//!   `Arc<String>` reply lines. `STATS`/`HEALTH` stay inline on the
//!   loop: a liveness probe must answer even when the queue is full.
//! * **Blocking**: thread-per-connection; retained as the fallback for
//!   platforms without epoll and as the differential-test oracle.
//!
//! Both cores close a connection that fails to deliver a complete line
//! within `read_timeout` of the previous one (slowloris guard) with an
//! explicit shed-style reply, and both can cap concurrent connections
//! per source IP at accept time.

use crate::cache::{cache_key, ShardedCache};
use crate::queue::{BoundedQueue, PushError};
use crate::registry::ModelRegistry;
use crate::retrain::{RetrainConfig, RetrainHub, RetrainLoop, RetrainSnapshot, Retrainer};
use crate::stats::{DecodeTierStats, HealthSnapshot, QuarantineEntry, ServeStats, StatsSnapshot};
use crate::wire::{ParseRequest, Reply, Request};
use bytes::BytesMut;
use crossbeam::channel;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use whois_model::RawRecord;
use whois_net::event::{Poller, Waker};
use whois_net::proto::{self, ReplyKind};
use whois_net::{KeyedRateLimiter, RateLimitConfig, ServingMode, WhoisClient};
use whois_store::{Compactor, RecordStore};

/// Where `FETCH` requests go: a WHOIS registry plus the referral
/// resolver, exactly like [`whois_net::Crawler`]'s view of the world.
#[derive(Clone, Debug)]
pub struct UpstreamConfig {
    /// The registry (thin) server.
    pub registry: SocketAddr,
    /// Referral host name → address.
    pub resolver: HashMap<String, SocketAddr>,
    /// Client used for upstream queries.
    pub client: WhoisClient,
}

/// Disk-tier configuration: where the cold tier lives and how it is
/// maintained.
#[derive(Clone, Debug)]
pub struct StoreTierConfig {
    /// Store directory (created if missing).
    pub dir: std::path::PathBuf,
    /// Post-compaction disk cap in bytes (0 = unbounded).
    pub cap_bytes: u64,
    /// How often the background compactor checks the store.
    pub compact_interval: Duration,
    /// Per-append fsync. Off by default: spilled entries are
    /// re-derivable cache contents, so the crash-loss window is an
    /// acceptable trade for not fsyncing on the serving path; a
    /// graceful shutdown syncs everything.
    pub sync: bool,
}

impl StoreTierConfig {
    /// Defaults for `dir`: unbounded, 2 s compaction checks, no
    /// per-append fsync.
    pub fn new(dir: impl Into<std::path::PathBuf>) -> Self {
        StoreTierConfig {
            dir: dir.into(),
            cap_bytes: 0,
            compact_interval: Duration::from_secs(2),
            sync: false,
        }
    }
}

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Which serving core runs accepted connections (event loop by
    /// default; falls back to blocking where epoll is unavailable).
    pub mode: ServingMode,
    /// Optional cap on concurrent connections per source IP, enforced
    /// at accept time; refusals get a shed-style reply.
    pub max_conns_per_ip: Option<u32>,
    /// Parse worker threads (0 = available parallelism).
    pub workers: usize,
    /// Admission queue capacity; requests beyond it are shed.
    pub queue_capacity: usize,
    /// Result cache capacity, total entries.
    pub cache_capacity: usize,
    /// Result cache shard count.
    pub cache_shards: usize,
    /// Per-connection read timeout (idle persistent connections are
    /// closed after this).
    pub read_timeout: Duration,
    /// Longest accepted request line.
    pub max_request_len: usize,
    /// Upstream WHOIS for `FETCH` (absent → `FETCH` is an error).
    pub upstream: Option<UpstreamConfig>,
    /// Quarantine ring capacity: how many (domain, body-hash) pairs
    /// whose parse panicked are remembered and refused without
    /// re-parsing. 0 disables quarantine (panics are still contained).
    pub quarantine_capacity: usize,
    /// Test hook: a domain whose parse panics unconditionally. Lets the
    /// survivability tests rig a poison record without needing a real
    /// parser bug.
    pub panic_trigger: Option<String>,
    /// Disk-backed cold tier under the result cache (absent → RAM
    /// only). Evictions spill to it, misses fill from it, and a
    /// restart over the same directory starts warm.
    pub store: Option<StoreTierConfig>,
    /// Closed-loop continual learning (absent → off): every served
    /// parse reports its confidence to a drift monitor, sustained
    /// low-confidence regimes queue records into a crash-safe retrain
    /// queue, and a background loop labels, refits, gates, and
    /// hot-swaps — with automatic rollback if post-swap confidence
    /// collapses.
    pub retrain: Option<RetrainConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            mode: ServingMode::default(),
            max_conns_per_ip: None,
            workers: 0,
            queue_capacity: 64,
            cache_capacity: 4096,
            cache_shards: 8,
            read_timeout: Duration::from_secs(10),
            max_request_len: 1 << 20,
            upstream: None,
            quarantine_capacity: 64,
            panic_trigger: None,
            store: None,
            retrain: None,
        }
    }
}

/// What [`ParseService::shutdown`] observed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Jobs that were queued at the shutdown signal and completed
    /// during the drain (admitted work is never dropped).
    pub drained: u64,
    /// Requests refused with a drain reply after the signal.
    pub shed: u64,
}

/// One admitted unit of work.
struct Job {
    work: Work,
    enqueued: Instant,
    responder: Responder,
}

enum Work {
    Parse(ParseRequest),
    Fetch(String),
}

/// Where a worker delivers a finished reply: straight back to a blocked
/// connection thread, or onto the event loop's completion channel (with
/// a wake so the loop notices mid-`epoll_wait`).
enum Responder {
    Sync(channel::Sender<Arc<String>>),
    Event {
        token: u64,
        tx: channel::Sender<(u64, Arc<String>)>,
        waker: Arc<Waker>,
    },
}

impl Responder {
    fn send(self, reply: Arc<String>) {
        match self {
            Responder::Sync(tx) => {
                let _ = tx.send(reply);
            }
            Responder::Event { token, tx, waker } => {
                let _ = tx.send((token, reply));
                waker.wake();
            }
        }
    }
}

/// What event-mode admission decided for one request.
enum Admission {
    /// The job was queued; its reply arrives on the completion channel.
    Queued,
    /// Answered inline (verbs, errors, sheds): write this now.
    Immediate(Arc<String>),
}

/// State shared by the acceptor, connection threads, and workers.
struct ServiceCtx {
    cfg: ServeConfig,
    registry: Arc<ModelRegistry>,
    cache: ShardedCache,
    stats: ServeStats,
    queue: BoundedQueue<Job>,
    shutdown: AtomicBool,
    /// Second-stage shutdown flag for the event loop: set only after
    /// the workers are joined, so every admitted completion is already
    /// on the channel when the loop does its final flush and exits.
    loop_stop: AtomicBool,
    /// Per-IP concurrent-connection cap (rate fields unlimited; only
    /// the conn cap is used).
    limiter: Mutex<KeyedRateLimiter<IpAddr>>,
    workers: usize,
    started: Instant,
    /// Live worker-thread count (each drops it on exit, panicking or
    /// not); `HEALTH` compares it to `workers`.
    workers_alive: AtomicU64,
    /// Ring of records whose parse panicked, oldest first.
    quarantine: Mutex<VecDeque<QuarantineEntry>>,
    /// Disk tier under the result cache (absent → RAM only).
    store: Option<Arc<RecordStore>>,
    /// Drift monitor + retrain queue (absent → the loop is off).
    retrain: Option<Arc<RetrainHub>>,
}

impl ServiceCtx {
    /// Serve one already-decoded request, returning the reply line.
    fn respond(&self, request: Request) -> Arc<String> {
        match request {
            Request::Stats => {
                ServeStats::inc(&self.stats.stats_requests);
                Arc::new(Reply::stats(self.snapshot()).encode())
            }
            // Answered inline on the connection thread, never queued: a
            // liveness probe must respond even when every parse worker
            // is wedged or the queue is full.
            Request::Health => Arc::new(Reply::health(self.health_snapshot()).encode()),
            // Inline for the same reason as HEALTH: drift state must be
            // observable even when the workers are saturated.
            Request::Retrain => Arc::new(Reply::retrain(self.retrain_snapshot()).encode()),
            Request::Parse(req) => {
                ServeStats::inc(&self.stats.parse_requests);
                self.submit(Work::Parse(req))
            }
            Request::Fetch(domain) => {
                ServeStats::inc(&self.stats.fetch_requests);
                if self.cfg.upstream.is_none() {
                    ServeStats::inc(&self.stats.errors);
                    return Arc::new(
                        Reply::error("no upstream configured for FETCH", false).encode(),
                    );
                }
                self.submit(Work::Fetch(domain))
            }
        }
    }

    /// Admission control: enqueue and wait for the worker's reply, or
    /// shed immediately.
    fn submit(&self, work: Work) -> Arc<String> {
        let (reply_tx, reply_rx) = channel::unbounded();
        let job = Job {
            work,
            enqueued: Instant::now(),
            responder: Responder::Sync(reply_tx),
        };
        match self.queue.try_push(job) {
            Ok(()) => reply_rx
                .recv()
                .unwrap_or_else(|_| Arc::new(Reply::error("worker failed", false).encode())),
            Err(PushError::Full(_)) => {
                ServeStats::inc(&self.stats.sheds);
                Arc::new(Reply::error("overloaded", true).encode())
            }
            Err(PushError::Closed(_)) => {
                ServeStats::inc(&self.stats.sheds);
                Arc::new(Reply::error("draining", true).encode())
            }
        }
    }

    /// Event-mode twin of [`respond`](Self::respond): identical verb
    /// logic and reply bytes, but `PARSE`/`FETCH` admission never
    /// blocks — a queued job's reply arrives via the completion channel.
    fn respond_event(
        &self,
        request: Request,
        token: u64,
        done_tx: &channel::Sender<(u64, Arc<String>)>,
        waker: &Arc<Waker>,
    ) -> Admission {
        match request {
            Request::Stats => {
                ServeStats::inc(&self.stats.stats_requests);
                Admission::Immediate(Arc::new(Reply::stats(self.snapshot()).encode()))
            }
            Request::Health => {
                Admission::Immediate(Arc::new(Reply::health(self.health_snapshot()).encode()))
            }
            Request::Retrain => {
                Admission::Immediate(Arc::new(Reply::retrain(self.retrain_snapshot()).encode()))
            }
            Request::Parse(req) => {
                ServeStats::inc(&self.stats.parse_requests);
                self.submit_event(Work::Parse(req), token, done_tx, waker)
            }
            Request::Fetch(domain) => {
                ServeStats::inc(&self.stats.fetch_requests);
                if self.cfg.upstream.is_none() {
                    ServeStats::inc(&self.stats.errors);
                    return Admission::Immediate(Arc::new(
                        Reply::error("no upstream configured for FETCH", false).encode(),
                    ));
                }
                self.submit_event(Work::Fetch(domain), token, done_tx, waker)
            }
        }
    }

    /// Nonblocking admission for the event loop.
    fn submit_event(
        &self,
        work: Work,
        token: u64,
        done_tx: &channel::Sender<(u64, Arc<String>)>,
        waker: &Arc<Waker>,
    ) -> Admission {
        let job = Job {
            work,
            enqueued: Instant::now(),
            responder: Responder::Event {
                token,
                tx: done_tx.clone(),
                waker: waker.clone(),
            },
        };
        match self.queue.try_push(job) {
            Ok(()) => Admission::Queued,
            Err(PushError::Full(_)) => {
                ServeStats::inc(&self.stats.sheds);
                Admission::Immediate(Arc::new(Reply::error("overloaded", true).encode()))
            }
            Err(PushError::Closed(_)) => {
                ServeStats::inc(&self.stats.sheds);
                Admission::Immediate(Arc::new(Reply::error("draining", true).encode()))
            }
        }
    }

    /// Cache-before-parse: the headline serving optimization. With a
    /// disk tier attached the order is RAM cache → store → parse; a
    /// disk hit is promoted into RAM, and whatever that promotion
    /// evicts spills back down.
    fn parse_reply(&self, domain: &str, text: &str) -> Arc<String> {
        let model = self.registry.current();
        let key = cache_key(model.generation, domain, text);
        let t = Instant::now();
        let cached = self.cache.get(key);
        self.stats.cache_lookup.record(t.elapsed());
        if let Some(line) = cached {
            ServeStats::inc(&self.stats.cache_hits);
            return line;
        }
        ServeStats::inc(&self.stats.cache_misses);

        // The generation-free body key: the quarantine hash, and the
        // disk tier's key (the store fences generations itself).
        let body_key = cache_key(0, domain, text);

        // Quarantine check — keyed model-independently (generation 0),
        // so a poison record stays quarantined across model swaps.
        let body_hash = format!("{body_key:016x}");
        if self.is_quarantined(domain, &body_hash) {
            ServeStats::inc(&self.stats.errors);
            return Arc::new(
                Reply::error(
                    "internal: record quarantined (a previous parse panicked)",
                    false,
                )
                .encode(),
            );
        }

        // Disk tier: a stored reply (written under the current store
        // generation, i.e. this model) is byte-identical to a fresh
        // parse by construction — the spill wrote the serialized line.
        if let Some(store) = &self.store {
            if let Some(line) = store.get_parsed(body_key) {
                ServeStats::inc(&self.stats.disk_hits);
                let line = Arc::new(line);
                self.promote(key, body_key, model.generation, &line);
                return line;
            }
            ServeStats::inc(&self.stats.disk_misses);
        }

        // Panic containment: a parse that panics must cost one request,
        // not a worker thread. The engine and caches are only *read*
        // here (the scratch pool heals itself — a scratch leased by a
        // panicking parse is simply never returned), so resuming past
        // the unwind is sound.
        let t = Instant::now();
        let trigger = self.cfg.panic_trigger.as_deref();
        let parsed = catch_unwind(AssertUnwindSafe(|| {
            if trigger.is_some_and(|t| t.eq_ignore_ascii_case(domain)) {
                panic!("rigged parse panic for {domain}");
            }
            match &self.retrain {
                // With the loop on, the parse also reports how sure the
                // model was — the marginal-confidence signal the drift
                // monitor runs on.
                Some(_) => {
                    let (record, confidence) = model
                        .engine
                        .parse_one_confident(&RawRecord::new(domain, text));
                    (record, Some(confidence))
                }
                None => (model.engine.parse_one(&RawRecord::new(domain, text)), None),
            }
        }));
        self.stats.parse.record(t.elapsed());
        let (record, confidence) = match parsed {
            Ok(pair) => pair,
            Err(_) => {
                ServeStats::inc(&self.stats.panics);
                ServeStats::inc(&self.stats.errors);
                self.quarantine_push(domain, body_hash);
                return Arc::new(
                    Reply::error("internal: parse panicked; record quarantined", false).encode(),
                );
            }
        };
        ServeStats::inc(&self.stats.parses);
        if let (Some(hub), Some(confidence)) = (&self.retrain, confidence) {
            hub.observe_parse(domain, text, confidence);
        }

        let t = Instant::now();
        let line = Arc::new(Reply::record(&model.version, record).encode());
        self.stats.serialize.record(t.elapsed());
        self.promote(key, body_key, model.generation, &line);
        line
    }

    /// Insert a reply into the RAM cache; with a disk tier attached
    /// the entry is tagged with its body key and model generation so it
    /// can spill on eviction, and whatever this insert evicts spills
    /// now.
    fn promote(&self, key: u64, body_key: u64, generation: u64, line: &Arc<String>) {
        match &self.store {
            None => self.cache.insert(key, line.clone()),
            Some(_) => {
                if let Some((spill, spill_gen, value)) =
                    self.cache
                        .insert_with_spill(key, body_key, generation, line.clone())
                {
                    self.spill(spill, spill_gen, &value);
                }
            }
        }
    }

    /// Write one evicted (or drained) reply to the disk tier — unless
    /// it was parsed under a since-replaced model, in which case it is
    /// dropped: the store's generation fence must never be laundered by
    /// a stale RAM entry evicted after a hot swap.
    /// Best-effort: a full disk degrades the cold tier, not serving.
    fn spill(&self, body_key: u64, generation: u64, value: &Arc<String>) {
        if generation != self.registry.current().generation {
            return;
        }
        if let Some(store) = &self.store {
            if matches!(store.put_parsed(body_key, value), Ok(true)) {
                ServeStats::inc(&self.stats.store_spills);
            }
        }
    }

    fn is_quarantined(&self, domain: &str, body_hash: &str) -> bool {
        let domain = domain.to_lowercase();
        self.quarantine
            .lock()
            .iter()
            .any(|e| e.body_hash == body_hash && e.domain == domain)
    }

    fn quarantine_push(&self, domain: &str, body_hash: String) {
        if self.cfg.quarantine_capacity == 0 {
            return;
        }
        let mut ring = self.quarantine.lock();
        while ring.len() >= self.cfg.quarantine_capacity {
            ring.pop_front();
        }
        ring.push_back(QuarantineEntry {
            domain: domain.to_lowercase(),
            body_hash,
        });
    }

    /// `FETCH`: two-step upstream crawl (thin → referral → thick, thin
    /// fallback), then the normal cached parse path.
    fn fetch_reply(&self, domain: &str) -> Arc<String> {
        let up = self.cfg.upstream.as_ref().expect("checked by respond");
        ServeStats::inc(&self.stats.fetches);
        let t = Instant::now();
        let body = fetch_body(up, domain);
        self.stats.fetch.record(t.elapsed());
        match body {
            Ok(text) => {
                // Sink the fetched body into the cold tier (best
                // effort): the crawl corpus accumulates on disk even
                // when it arrives via FETCH.
                if let Some(store) = &self.store {
                    let _ = store.put_raw(domain, &text);
                }
                self.parse_reply(domain, &text)
            }
            Err(message) => {
                ServeStats::inc(&self.stats.fetch_failures);
                ServeStats::inc(&self.stats.errors);
                Arc::new(Reply::error(message, false).encode())
            }
        }
    }

    fn snapshot(&self) -> StatsSnapshot {
        let model = self.registry.current();
        let counters = self.registry.decode_counters();
        self.stats.snapshot(
            &model.version,
            model.generation,
            self.registry.swaps(),
            self.cache.len(),
            self.workers,
            self.registry.line_cache().stats(),
            self.registry.load_failures(),
            self.quarantine.lock().iter().cloned().collect(),
            DecodeTierStats {
                tier: self.registry.decode_tier().name().to_string(),
                fast_decodes: counters.fast_decodes(),
                exact_fallbacks: counters.exact_fallbacks(),
                fallback_rate: counters.fallback_rate(),
                kernel: self.registry.kernel_level().name().to_string(),
            },
            self.stats
                .store_tier(self.store.as_ref().map(|s| s.stats())),
            self.retrain_snapshot(),
        )
    }

    fn retrain_snapshot(&self) -> RetrainSnapshot {
        self.retrain
            .as_ref()
            .map(|hub| hub.snapshot())
            .unwrap_or_default()
    }

    fn health_snapshot(&self) -> HealthSnapshot {
        let model = self.registry.current();
        HealthSnapshot {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            workers: self.workers as u64,
            workers_alive: self.workers_alive.load(Ordering::SeqCst),
            panics: self.stats.panics.load(Ordering::Relaxed),
            quarantine_len: self.quarantine.lock().len() as u64,
            model_load_failures: self.registry.load_failures(),
            model_version: model.version.clone(),
            model_generation: model.generation,
            model_swaps: self.registry.swaps(),
            draining: self.shutdown.load(Ordering::SeqCst),
            connections: self.stats.connection_gauges(),
            decode_tier: self.registry.decode_tier().name().to_string(),
            store: self
                .stats
                .store_tier(self.store.as_ref().map(|s| s.stats())),
            kernel: self.registry.kernel_level().name().to_string(),
            retrain: self.retrain_snapshot(),
        }
    }
}

/// Fetch the best available record body for `domain` from upstream.
fn fetch_body(up: &UpstreamConfig, domain: &str) -> Result<String, String> {
    let thin = up
        .client
        .query(up.registry, domain)
        .map_err(|e| format!("registry query failed: {e}"))?;
    match proto::classify_reply(&thin) {
        ReplyKind::Record => {}
        ReplyKind::NoMatch => return Err(format!("no match for {domain}")),
        other => return Err(format!("registry reply unusable ({other:?})")),
    }
    if let Some(host) = proto::referral_server(&thin) {
        if let Some(&addr) = up.resolver.get(&host) {
            if let Ok(thick) = up.client.query(addr, domain) {
                if proto::classify_reply(&thick) == ReplyKind::Record {
                    return Ok(thick);
                }
            }
        }
    }
    Ok(thin)
}

/// The shed-style reply written when a connection exceeds the idle /
/// read deadline (slowloris guard). Shared by both cores so the bytes
/// match.
fn idle_timeout_reply() -> String {
    Reply::error("idle timeout", true).encode()
}

/// The shed-style reply for connections refused by the per-IP cap.
fn conn_cap_reply() -> String {
    Reply::error("too many connections", true).encode()
}

/// A running parse service bound to a loopback port.
pub struct ParseService {
    addr: SocketAddr,
    ctx: Arc<ServiceCtx>,
    /// Wakes the event loop out of `epoll_wait` (event mode only).
    waker: Option<Arc<Waker>>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    worker_threads: Vec<std::thread::JoinHandle<()>>,
    compactor: Option<Compactor>,
    /// The background retrain loop (present when the loop is on).
    retrain_loop: Option<RetrainLoop>,
    /// The loop's decision core, exposed for harnesses that drive ticks
    /// directly.
    retrainer: Option<Arc<Retrainer>>,
    report: Option<DrainReport>,
}

impl ParseService {
    /// Start the daemon on an ephemeral loopback port (or `port` if
    /// nonzero).
    pub fn start(
        registry: Arc<ModelRegistry>,
        cfg: ServeConfig,
        port: u16,
    ) -> std::io::Result<ParseService> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            cfg.workers
        };
        // Warm one scratch per worker so first requests skip cold-start
        // allocations.
        registry.current().engine.warm(workers);
        let mode = cfg.mode;

        // Open the disk tier before serving starts: recovery (torn-tail
        // truncation, index rebuild) happens here, and a model-version
        // mismatch with the stored manifest fences old parses. Future
        // hot swaps fence via the install hook.
        let store = match &cfg.store {
            None => None,
            Some(tier) => {
                let store = Arc::new(RecordStore::open_for_model(
                    &tier.dir,
                    &registry.current().version,
                    tier.cap_bytes,
                    tier.sync,
                )?);
                let hook_store = Arc::clone(&store);
                registry.on_install(Box::new(move |version, _generation| {
                    let _ = hook_store.bump_generation(version);
                }));
                Some(store)
            }
        };
        let compactor = store.as_ref().map(|s| {
            Compactor::start(
                Arc::clone(s),
                cfg.store.as_ref().expect("store config").compact_interval,
            )
        });
        // Open the retrain hub before serving starts: queue recovery
        // (torn-tail truncation, ack-watermark clamp) happens here, so
        // records queued by a killed predecessor survive into this
        // process's loop.
        let retrain_hub = match &cfg.retrain {
            None => None,
            Some(rc) => Some(Arc::new(RetrainHub::open(rc)?)),
        };
        let ctx = Arc::new(ServiceCtx {
            cache: ShardedCache::new(cfg.cache_capacity, cfg.cache_shards),
            queue: BoundedQueue::new(cfg.queue_capacity),
            stats: ServeStats::default(),
            shutdown: AtomicBool::new(false),
            loop_stop: AtomicBool::new(false),
            limiter: Mutex::new(
                KeyedRateLimiter::new(RateLimitConfig::unlimited())
                    .with_conn_cap(cfg.max_conns_per_ip),
            ),
            registry,
            workers,
            started: Instant::now(),
            // Counted up-front so HEALTH is exact from the first
            // request; the drop guard in worker_loop decrements.
            workers_alive: AtomicU64::new(workers as u64),
            quarantine: Mutex::new(VecDeque::new()),
            store,
            retrain: retrain_hub.clone(),
            cfg,
        });

        let worker_threads = (0..workers)
            .map(|i| {
                let ctx = ctx.clone();
                std::thread::Builder::new()
                    .name(format!("whois-serve-worker-{i}"))
                    .spawn(move || worker_loop(&ctx))
                    .expect("spawn parse worker")
            })
            .collect();

        // The event loop needs epoll (and a working waker); quietly
        // fall back to the blocking core where either is unavailable.
        let event = match mode {
            ServingMode::EventLoop => Poller::new().ok().and_then(|poller| {
                let waker = Waker::new(&poller, WAKER_TOKEN).ok()?;
                Some((poller, Arc::new(waker)))
            }),
            ServingMode::Blocking => None,
        };
        let waker = event.as_ref().map(|(_, w)| w.clone());

        let accept_ctx = ctx.clone();
        let name = format!("whois-serve-{}", addr.port());
        let accept_thread = if let Some((poller, loop_waker)) = event {
            std::thread::Builder::new()
                .name(name)
                .spawn(move || run_event_loop(poller, loop_waker, listener, accept_ctx))
        } else {
            std::thread::Builder::new()
                .name(name)
                .spawn(move || run_blocking_accept(listener, accept_ctx))
        }
        .expect("spawn accept thread");

        let retrainer = match (&ctx.cfg.retrain, retrain_hub) {
            (Some(rc), Some(hub)) => Some(Arc::new(Retrainer::new(
                ctx.registry.clone(),
                hub,
                rc.clone(),
            ))),
            _ => None,
        };
        let retrain_loop = retrainer.as_ref().map(|r| {
            RetrainLoop::start(
                r.clone(),
                ctx.cfg.retrain.as_ref().expect("retrain config").interval,
            )
        });

        Ok(ParseService {
            addr,
            ctx,
            waker,
            accept_thread: Some(accept_thread),
            worker_threads,
            compactor,
            retrain_loop,
            retrainer,
            report: None,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current serving statistics (same payload as the `STATS` verb).
    pub fn stats(&self) -> StatsSnapshot {
        self.ctx.snapshot()
    }

    /// The model registry backing this service.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.ctx.registry
    }

    /// Entries in the result cache.
    pub fn cache_len(&self) -> usize {
        self.ctx.cache.len()
    }

    /// The disk tier, when one is attached.
    pub fn store(&self) -> Option<&Arc<RecordStore>> {
        self.ctx.store.as_ref()
    }

    /// The retrain hub (monitor + queue), when the loop is configured.
    pub fn retrain_hub(&self) -> Option<&Arc<RetrainHub>> {
        self.ctx.retrain.as_ref()
    }

    /// The retrain loop's decision core, when the loop is configured —
    /// harnesses drive [`Retrainer::tick`] directly to prove the gate
    /// and rollback without racing the background thread.
    pub fn retrainer(&self) -> Option<&Arc<Retrainer>> {
        self.retrainer.as_ref()
    }

    /// Graceful drain: stop admitting, finish everything admitted,
    /// report what drained versus what was shed on the way down.
    /// Idempotent — repeat calls return the first report.
    pub fn shutdown(&mut self) -> DrainReport {
        if let Some(report) = self.report {
            return report;
        }
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        // Stop the retrain loop before draining: a hot swap mid-drain
        // would be harmless (installs are atomic) but pointless.
        if let Some(loop_) = self.retrain_loop.take() {
            loop_.stop();
        }
        let queued = self.ctx.queue.len() as u64;
        let sheds_before = self.ctx.stats.sheds.load(Ordering::Relaxed);
        self.ctx.queue.close();
        for w in self.worker_threads.drain(..) {
            let _ = w.join();
        }
        // Workers are gone, so every admitted job's completion is now on
        // the loop's channel. Only then stop the loop: it drains those
        // completions, flushes what it can, and exits.
        self.ctx.loop_stop.store(true, Ordering::SeqCst);
        if let Some(w) = &self.waker {
            w.wake();
        }
        if let Some(a) = self.accept_thread.take() {
            let _ = a.join();
        }
        // With a disk tier attached, spill the entire hot tier before
        // the process dies — this is what makes the *next* process
        // start at warm-cache hit rates. Workers and the loop are
        // gone, so the cache is quiescent.
        if let Some(compactor) = self.compactor.take() {
            compactor.stop();
        }
        if self.ctx.store.is_some() {
            for (body_key, generation, value) in self.ctx.cache.drain_spillable() {
                self.ctx.spill(body_key, generation, &value);
            }
            if let Some(store) = &self.ctx.store {
                let _ = store.sync();
            }
        }
        let report = DrainReport {
            drained: queued,
            shed: self.ctx.stats.sheds.load(Ordering::Relaxed) - sheds_before,
        };
        self.report = Some(report);
        report
    }
}

impl Drop for ParseService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Decrements `workers_alive` when the owning worker thread exits —
/// normally at drain, or abnormally if a panic ever escapes the
/// per-request containment. `HEALTH` surfaces the difference.
struct WorkerAliveGuard<'a> {
    ctx: &'a ServiceCtx,
}

impl Drop for WorkerAliveGuard<'_> {
    fn drop(&mut self) {
        self.ctx.workers_alive.fetch_sub(1, Ordering::SeqCst);
    }
}

fn worker_loop(ctx: &ServiceCtx) {
    let _guard = WorkerAliveGuard { ctx };
    while let Some(job) = ctx.queue.pop() {
        ctx.stats.queue_wait.record(job.enqueued.elapsed());
        let reply = match &job.work {
            Work::Parse(req) => ctx.parse_reply(&req.domain, &req.text),
            Work::Fetch(domain) => ctx.fetch_reply(domain),
        };
        job.responder.send(reply);
    }
}

/// Blocking accept loop (legacy core / epoll-less fallback): one thread
/// per connection, with the same per-IP connection cap the event loop
/// enforces.
fn run_blocking_accept(listener: TcpListener, ctx: Arc<ServiceCtx>) {
    while !ctx.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let ctx = ctx.clone();
                std::thread::spawn(move || {
                    let ip = peer.ip();
                    if !ctx.limiter.lock().try_acquire_conn(&ip, Instant::now()) {
                        ServeStats::inc(&ctx.stats.sheds);
                        let mut stream = stream;
                        let _ = write_line(&mut stream, &conn_cap_reply());
                        return;
                    }
                    ServeStats::inc(&ctx.stats.conns_open);
                    ServeStats::inc(&ctx.stats.conns_reading);
                    let _ = handle_connection(stream, &ctx);
                    ServeStats::dec(&ctx.stats.conns_reading);
                    ServeStats::dec(&ctx.stats.conns_open);
                    ctx.limiter.lock().release_conn(&ip);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

/// Serve one (persistent) connection: loop reading request lines until
/// EOF, timeout, or shutdown. Entered (and left) with the connection
/// counted in the `conns_reading` gauge.
fn handle_connection(mut stream: TcpStream, ctx: &ServiceCtx) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let mut buf = BytesMut::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    // Slowloris guard: the clock runs from the previous complete line,
    // so a peer dribbling one byte per read can't hold the thread past
    // `read_timeout` — each read waits only the *remaining* budget.
    let mut line_started = Instant::now();
    loop {
        let line = loop {
            match proto::decode_line(&mut buf, ctx.cfg.max_request_len) {
                Ok(Some(line)) => break line,
                Ok(None) => {}
                Err(e) => {
                    ServeStats::inc(&ctx.stats.errors);
                    let reply = Reply::error(e.to_string(), false).encode();
                    let _ = write_line(&mut stream, &reply);
                    return Ok(());
                }
            }
            let remaining = match ctx.cfg.read_timeout.checked_sub(line_started.elapsed()) {
                Some(d) if !d.is_zero() => d,
                _ => return idle_close(&mut stream, ctx),
            };
            stream.set_read_timeout(Some(remaining))?;
            match stream.read(&mut chunk) {
                Ok(0) => return Ok(()), // client hung up
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return idle_close(&mut stream, ctx)
                }
                Err(e) => return Err(e),
            }
        };
        line_started = Instant::now();
        if line.is_empty() {
            continue;
        }
        ServeStats::inc(&ctx.stats.requests);
        let decoded = Request::decode(&line);
        // HEALTH is answered even while draining (with `draining:true`
        // in the payload) — a probe that gets cut off mid-shutdown
        // can't tell "draining" from "dead".
        if ctx.shutdown.load(Ordering::SeqCst) && !matches!(decoded, Ok(Request::Health)) {
            ServeStats::inc(&ctx.stats.sheds);
            write_line(&mut stream, &Reply::error("draining", true).encode())?;
            return Ok(());
        }
        let reply = match decoded {
            Ok(request) => {
                // Mirror the event loop's gauges: only queued verbs move
                // the connection out of "reading" (inline verbs answer
                // without leaving it).
                let queued_verb = matches!(request, Request::Parse(_) | Request::Fetch(_));
                if queued_verb {
                    ServeStats::dec(&ctx.stats.conns_reading);
                    ServeStats::inc(&ctx.stats.conns_queued);
                }
                let reply = ctx.respond(request);
                if queued_verb {
                    ServeStats::dec(&ctx.stats.conns_queued);
                    ServeStats::inc(&ctx.stats.conns_reading);
                }
                reply
            }
            Err(message) => {
                ServeStats::inc(&ctx.stats.errors);
                Arc::new(Reply::error(message, false).encode())
            }
        };
        write_line(&mut stream, &reply)?;
    }
}

/// Close a connection that blew its idle/read deadline: count it and
/// tell the peer why (byte-identical to the event loop's idle close).
fn idle_close(stream: &mut TcpStream, ctx: &ServiceCtx) -> std::io::Result<()> {
    ServeStats::inc(&ctx.stats.idle_closed);
    let _ = write_line(stream, &idle_timeout_reply());
    Ok(())
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}

// ---------------------------------------------------------------------
// Event-loop core (one thread, epoll readiness).
// ---------------------------------------------------------------------

/// Poller token for the listening socket.
const LISTENER_TOKEN: u64 = 0;
/// Poller token for the cross-thread waker.
const WAKER_TOKEN: u64 = 1;
/// First token handed to an accepted connection; tokens are monotonic
/// and never reused, so a completion for a dead connection misses the
/// map instead of hitting a stranger.
const FIRST_CONN_TOKEN: u64 = 2;

#[cfg(unix)]
use whois_net::event::Event;
#[cfg(unix)]
use whois_net::{BufferPool, Chunk, ConnPhase, EventConn, Interest};

/// Per-connection state carried by the event loop on top of the
/// [`EventConn`] shell.
#[cfg(unix)]
struct SvcConn {
    shell: EventConn,
    ip: IpAddr,
    /// The interest currently registered with the poller.
    registered: Interest,
    /// The peer half-closed; close once buffered lines are served.
    eof: bool,
}

/// Which live gauge a connection in `phase` occupies.
#[cfg(unix)]
fn phase_gauge(stats: &ServeStats, phase: ConnPhase) -> &AtomicU64 {
    match phase {
        ConnPhase::Reading => &stats.conns_reading,
        ConnPhase::Queued => &stats.conns_queued,
        ConnPhase::Writing | ConnPhase::Draining => &stats.conns_writing,
    }
}

/// Move a connection between phases, keeping the gauges in lockstep.
#[cfg(unix)]
fn set_phase(stats: &ServeStats, shell: &mut EventConn, phase: ConnPhase) {
    if shell.phase == phase {
        return;
    }
    ServeStats::dec(phase_gauge(stats, shell.phase));
    ServeStats::inc(phase_gauge(stats, phase));
    shell.phase = phase;
}

/// Queue one reply line plus its terminator. `Arc` replies (the cache's
/// currency) are queued by refcount bump, not copy.
#[cfg(unix)]
fn queue_reply_line(shell: &mut EventConn, line: Arc<String>) {
    shell.queue(Chunk::Shared(line));
    shell.queue(Chunk::Static(b"\n"));
}

/// Decode and serve every complete buffered line (at most one queued
/// job in flight per connection — that is what keeps pipelined replies
/// in request order), then flush. Returns `true` when the connection
/// should close now.
#[cfg(unix)]
fn pump(
    c: &mut SvcConn,
    ctx: &ServiceCtx,
    done_tx: &channel::Sender<(u64, Arc<String>)>,
    waker: &Arc<Waker>,
) -> bool {
    while c.shell.phase == ConnPhase::Reading {
        let line = match proto::decode_line(&mut c.shell.buf, ctx.cfg.max_request_len) {
            Ok(Some(line)) => line,
            Ok(None) => break,
            Err(e) => {
                ServeStats::inc(&ctx.stats.errors);
                queue_reply_line(
                    &mut c.shell,
                    Arc::new(Reply::error(e.to_string(), false).encode()),
                );
                c.shell.close_after_flush = true;
                set_phase(&ctx.stats, &mut c.shell, ConnPhase::Draining);
                break;
            }
        };
        if line.is_empty() {
            continue;
        }
        // A complete line arrived: restart the idle clock.
        c.shell.deadline = Some(Instant::now() + ctx.cfg.read_timeout);
        ServeStats::inc(&ctx.stats.requests);
        let decoded = Request::decode(&line);
        if ctx.shutdown.load(Ordering::SeqCst) && !matches!(decoded, Ok(Request::Health)) {
            ServeStats::inc(&ctx.stats.sheds);
            queue_reply_line(
                &mut c.shell,
                Arc::new(Reply::error("draining", true).encode()),
            );
            c.shell.close_after_flush = true;
            set_phase(&ctx.stats, &mut c.shell, ConnPhase::Draining);
            break;
        }
        match decoded {
            Ok(request) => match ctx.respond_event(request, c.shell.token, done_tx, waker) {
                Admission::Queued => {
                    set_phase(&ctx.stats, &mut c.shell, ConnPhase::Queued);
                    // The worker owns the clock while the job runs; the
                    // idle deadline re-arms at completion delivery.
                    c.shell.deadline = None;
                }
                Admission::Immediate(line) => queue_reply_line(&mut c.shell, line),
            },
            Err(message) => {
                ServeStats::inc(&ctx.stats.errors);
                queue_reply_line(
                    &mut c.shell,
                    Arc::new(Reply::error(message, false).encode()),
                );
            }
        }
    }
    let eof_close = c.eof && c.shell.phase == ConnPhase::Reading;
    match c.shell.flush() {
        Ok(true) => c.shell.close_after_flush || eof_close,
        Ok(false) => false,
        Err(_) => true,
    }
}

#[cfg(unix)]
fn run_event_loop(poller: Poller, waker: Arc<Waker>, listener: TcpListener, ctx: Arc<ServiceCtx>) {
    use std::os::unix::io::AsRawFd;

    /// Idle poll cap so the shutdown flags are noticed promptly.
    const POLL_CAP: Duration = Duration::from_millis(5);
    /// How long the final flush may chase unflushed sockets.
    const FINAL_FLUSH: Duration = Duration::from_secs(2);

    if poller
        .register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
        .is_err()
    {
        // Can't poll the listener: serve blocking rather than not at all.
        return run_blocking_accept(listener, ctx);
    }
    let (done_tx, done_rx) = channel::unbounded::<(u64, Arc<String>)>();
    let pool = BufferPool::new(1024, 256);
    let mut conns: std::collections::HashMap<u64, SvcConn> = std::collections::HashMap::new();
    let mut next_token: u64 = FIRST_CONN_TOKEN;
    let mut events: Vec<Event> = Vec::new();
    let mut scratch = vec![0u8; 4096];
    let mut listening = true;

    loop {
        if ctx.loop_stop.load(Ordering::SeqCst) {
            break;
        }
        let now = Instant::now();
        if ctx.shutdown.load(Ordering::SeqCst) && listening {
            let _ = poller.deregister(listener.as_raw_fd());
            listening = false;
        }

        let mut timeout = POLL_CAP;
        for c in conns.values() {
            if let Some(d) = c.shell.deadline {
                timeout = timeout.min(d.saturating_duration_since(now));
            }
        }
        events.clear();
        if poller.wait(&mut events, Some(timeout)).is_err() {
            break;
        }

        for ev in events.iter().copied() {
            if ev.token == LISTENER_TOKEN {
                if listening {
                    accept_burst(&poller, &listener, &pool, &ctx, &mut conns, &mut next_token);
                }
                continue;
            }
            if ev.token == WAKER_TOKEN {
                waker.drain();
                continue;
            }
            let (close, fd, reregister) = {
                let Some(c) = conns.get_mut(&ev.token) else {
                    continue; // closed earlier in this batch
                };
                let mut close = false;
                if (ev.readable || ev.hangup) && c.shell.phase == ConnPhase::Reading {
                    match c.shell.fill(&mut scratch) {
                        Ok(status) => c.eof |= status.eof,
                        Err(_) => close = true,
                    }
                } else if ev.hangup
                    && c.shell.phase != ConnPhase::Queued
                    && c.shell.pending_out() == 0
                {
                    // Peer went away while we owe it nothing.
                    close = true;
                }
                if !close {
                    close = pump(c, &ctx, &done_tx, &waker);
                }
                conn_verdict(c, close)
            };
            if close {
                close_conn(&poller, &pool, &ctx, conns.remove(&ev.token));
            } else if let Some(want) = reregister {
                let _ = poller.reregister(fd, ev.token, want);
            }
        }

        // Completions from the parse workers: deliver the reply, re-arm
        // the idle clock, and drain any pipelined backlog that was
        // waiting behind the in-flight job.
        while let Some((token, reply)) = done_rx.try_recv() {
            let (close, fd, reregister) = {
                let Some(c) = conns.get_mut(&token) else {
                    continue; // connection died while its job ran
                };
                if c.shell.phase != ConnPhase::Queued {
                    continue;
                }
                set_phase(&ctx.stats, &mut c.shell, ConnPhase::Reading);
                c.shell.deadline = Some(Instant::now() + ctx.cfg.read_timeout);
                queue_reply_line(&mut c.shell, reply);
                let close = pump(c, &ctx, &done_tx, &waker);
                conn_verdict(c, close)
            };
            if close {
                close_conn(&poller, &pool, &ctx, conns.remove(&token));
            } else if let Some(want) = reregister {
                let _ = poller.reregister(fd, token, want);
            }
        }

        // Deadline sweep: slowloris connections get an explicit reply
        // and a close, byte-identical to the blocking core's.
        let now = Instant::now();
        let due: Vec<u64> = conns
            .iter()
            .filter(|(_, c)| c.shell.deadline.is_some_and(|d| d <= now))
            .map(|(t, _)| *t)
            .collect();
        for token in due {
            let (close, fd, reregister) = {
                let c = conns.get_mut(&token).expect("due token is live");
                c.shell.deadline = None;
                ServeStats::inc(&ctx.stats.idle_closed);
                queue_reply_line(&mut c.shell, Arc::new(idle_timeout_reply()));
                c.shell.close_after_flush = true;
                set_phase(&ctx.stats, &mut c.shell, ConnPhase::Draining);
                // done + close_after_flush → close; write error → close
                let close = c.shell.flush().unwrap_or(true);
                conn_verdict(c, close)
            };
            if close {
                close_conn(&poller, &pool, &ctx, conns.remove(&token));
            } else if let Some(want) = reregister {
                let _ = poller.reregister(fd, token, want);
            }
        }
    }

    // Final drain: `loop_stop` is only set after the workers are
    // joined, so every admitted job's reply is already on the channel.
    // Deliver them all, then give sockets a bounded window to flush.
    while let Some((token, reply)) = done_rx.try_recv() {
        if let Some(c) = conns.get_mut(&token) {
            if c.shell.phase == ConnPhase::Queued {
                set_phase(&ctx.stats, &mut c.shell, ConnPhase::Reading);
                queue_reply_line(&mut c.shell, reply);
            }
        }
    }
    let give_up = Instant::now() + FINAL_FLUSH;
    loop {
        let done_or_dead: Vec<u64> = conns
            .iter_mut()
            .filter_map(|(t, c)| match c.shell.flush() {
                Ok(true) => Some(*t),
                Ok(false) => None,
                Err(_) => Some(*t),
            })
            .collect();
        for token in done_or_dead {
            close_conn(&poller, &pool, &ctx, conns.remove(&token));
        }
        if conns.is_empty() || Instant::now() >= give_up {
            break;
        }
        events.clear();
        let _ = poller.wait(&mut events, Some(Duration::from_millis(5)));
    }
    for (_, c) in conns.drain() {
        close_conn(&poller, &pool, &ctx, Some(c));
    }
}

/// Post-service bookkeeping for one connection inside its borrow:
/// returns `(close, fd, interest-to-reregister)`.
#[cfg(unix)]
fn conn_verdict(c: &mut SvcConn, close: bool) -> (bool, std::os::fd::RawFd, Option<Interest>) {
    use std::os::unix::io::AsRawFd;
    let fd = c.shell.stream.as_raw_fd();
    let want = c.shell.interest();
    let changed = !close && want != c.registered;
    if changed {
        c.registered = want;
    }
    (close, fd, changed.then_some(want))
}

/// Accept until `WouldBlock`, applying the per-IP connection cap and
/// registering survivors with the poller.
#[cfg(unix)]
fn accept_burst(
    poller: &Poller,
    listener: &TcpListener,
    pool: &BufferPool,
    ctx: &ServiceCtx,
    conns: &mut std::collections::HashMap<u64, SvcConn>,
    next_token: &mut u64,
) {
    use std::os::unix::io::AsRawFd;
    // Accept until WouldBlock (or the listener dies).
    while let Ok((stream, peer)) = listener.accept() {
        if !ctx
            .limiter
            .lock()
            .try_acquire_conn(&peer.ip(), Instant::now())
        {
            // Accepted sockets don't inherit the listener's
            // nonblocking flag, so the refusal write is safe.
            ServeStats::inc(&ctx.stats.sheds);
            let mut stream = stream;
            let _ = write_line(&mut stream, &conn_cap_reply());
            continue;
        }
        let token = *next_token;
        *next_token += 1;
        match EventConn::new(stream, peer, token, pool.get()) {
            Ok(mut shell) => {
                shell.deadline = Some(Instant::now() + ctx.cfg.read_timeout);
                let registered = shell.interest();
                if poller
                    .register(shell.stream.as_raw_fd(), token, registered)
                    .is_ok()
                {
                    ServeStats::inc(&ctx.stats.conns_open);
                    ServeStats::inc(&ctx.stats.conns_reading);
                    conns.insert(
                        token,
                        SvcConn {
                            shell,
                            ip: peer.ip(),
                            registered,
                            eof: false,
                        },
                    );
                } else {
                    pool.put(shell.take_buf());
                    ctx.limiter.lock().release_conn(&peer.ip());
                }
            }
            Err(_) => ctx.limiter.lock().release_conn(&peer.ip()),
        }
    }
}

/// Tear down one event-loop connection: deregister, recycle its buffer,
/// release its per-IP slot, settle its gauges.
#[cfg(unix)]
fn close_conn(poller: &Poller, pool: &BufferPool, ctx: &ServiceCtx, conn: Option<SvcConn>) {
    use std::os::unix::io::AsRawFd;
    let Some(mut c) = conn else { return };
    let _ = poller.deregister(c.shell.stream.as_raw_fd());
    pool.put(c.shell.take_buf());
    ctx.limiter.lock().release_conn(&c.ip);
    ServeStats::dec(phase_gauge(&ctx.stats, c.shell.phase));
    ServeStats::dec(&ctx.stats.conns_open);
}

/// Non-unix placeholder: [`Poller::new`] always fails there, so
/// [`ParseService::start`] never reaches this.
#[cfg(not(unix))]
fn run_event_loop(
    _poller: Poller,
    _waker: Arc<Waker>,
    _listener: TcpListener,
    _ctx: Arc<ServiceCtx>,
) {
    unreachable!("event-loop mode requires epoll; start() falls back to blocking");
}
