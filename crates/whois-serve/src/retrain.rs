//! Closed-loop continual learning: the paper's §5.3 maintenance story
//! ("add a handful of labels for the new format and retrain") run as a
//! production loop instead of a one-off experiment.
//!
//! The loop, end to end:
//!
//! ```text
//! serving path                       background RetrainLoop
//! ────────────────────────────       ─────────────────────────────────
//! parse_one_confident ─► conf        tick every interval:
//! DriftMonitor.observe(conf)           rollback check (probation)
//!   low?  ─► RetrainQueue.push        drifting && batch ready?
//!   window sustained-low? drift         label batch (rules ∧ templates,
//!                                         disagreements dropped)
//!                                       candidate = incumbent.retrain
//!                                       gate: golden-set eval vs
//!                                         incumbent — worse? reject +
//!                                         quarantine
//!                                       deploy via ModelRegistry hot
//!                                         swap; watch post-swap
//!                                         confidence, roll back on
//!                                         collapse
//! ```
//!
//! Key invariants:
//!
//! * **Serving never stops.** Retraining runs on its own thread; deploys
//!   go through [`ModelRegistry::install`]'s arc-swap (generation bump
//!   fences caches and the disk tier), so no request is dropped or
//!   served a half-installed model.
//! * **The gate is one-directional.** A candidate that scores worse than
//!   the incumbent on the retained golden set is never installed — it is
//!   quarantined on disk for post-mortem and the incumbent keeps
//!   serving. Self-healing must not be able to self-harm.
//! * **Rollback is automatic.** Every deploy remembers the incumbent it
//!   replaced; if windowed confidence collapses during the probation
//!   period after a swap, the previous model is reinstalled.
//! * **The queue is crash-safe.** Queued records are persisted with the
//!   [`whois_store::frame`] CRC discipline; a kill and reopen keeps
//!   exactly the acknowledged prefix acknowledged (acked entries never
//!   reappear, completely-written unacked entries never vanish, a torn
//!   tail is truncated).

use crate::registry::ModelRegistry;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use whois_model::{non_empty_lines, BlockLabel, RawRecord};
use whois_parser::{ParserConfig, TrainExample, WhoisParser};
use whois_rules::RuleBasedParser;
use whois_store::frame::{append_frame, decode_frame};
use whois_templates::TemplateParser;

/// One record shunted into the retrain queue: exactly what a future
/// labeling pass needs, nothing model-dependent.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueuedRecord {
    /// Domain the record describes.
    pub domain: String,
    /// Verbatim record body.
    pub text: String,
}

// ---------------------------------------------------------------------
// Crash-safe retrain queue.
// ---------------------------------------------------------------------

/// Queue log file name inside the retrain directory.
const QUEUE_LOG: &str = "retrain-queue.log";
/// Ack watermark file name.
const QUEUE_ACK: &str = "retrain-queue.ack";
/// Acked frames tolerated at the head of the log before the next ack
/// compacts it (rewrites pending entries under a fresh epoch).
const COMPACT_ACKED: u64 = 256;

/// Bounded, disk-backed queue of records waiting for the retrain loop.
///
/// Layout: an append-only log of CRC-framed JSON entries (first frame is
/// an 8-byte log *epoch*), plus an ack file holding a framed
/// `(epoch, acked)` pair, replaced atomically via temp-file rename. The
/// ack watermark counts entry frames from the head of the log it names;
/// an ack file from an older epoch means "nothing in this log is acked"
/// — which is exactly right, because compaction rewrites the log to
/// contain only unacked entries before publishing the new epoch.
///
/// Recovery truncates the log at the first incomplete/corrupt frame
/// (torn tail) and clamps the watermark to what survived. Appends are
/// plain `write(2)`s — durable across a process kill, which is the
/// failure model here; the entries are re-derivable serving traffic, so
/// fsync-per-push would buy little and cost the serving path.
pub struct RetrainQueue {
    inner: Mutex<QueueInner>,
    capacity: usize,
    dropped: AtomicU64,
    acked_total: AtomicU64,
}

struct QueueInner {
    dir: PathBuf,
    file: File,
    epoch: u64,
    /// Entry frames from the head of the current log that are acked
    /// (their records are no longer in `pending`).
    acked: u64,
    pending: VecDeque<QueuedRecord>,
}

impl RetrainQueue {
    /// Open (or create) the queue in `dir`, recovering whatever a
    /// previous process left behind.
    pub fn open(dir: impl Into<PathBuf>, capacity: usize) -> std::io::Result<RetrainQueue> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let log_path = dir.join(QUEUE_LOG);
        let bytes = std::fs::read(&log_path).unwrap_or_default();

        // Frame 0 is the epoch; entry frames follow. Anything that does
        // not decode (frame or JSON) is a torn tail: truncate there.
        let mut off = 0usize;
        let mut epoch = 0u64;
        let mut entries: Vec<QueuedRecord> = Vec::new();
        if let Some((payload, used)) = decode_frame(&bytes) {
            if payload.len() == 8 {
                epoch = u64::from_le_bytes(payload.try_into().unwrap());
                off = used;
                while let Some((payload, used)) = decode_frame(&bytes[off..]) {
                    match serde_json::from_slice::<QueuedRecord>(payload) {
                        Ok(rec) => {
                            entries.push(rec);
                            off += used;
                        }
                        Err(_) => break,
                    }
                }
            }
        }
        if epoch == 0 {
            // Missing, empty, or headerless log: start a fresh epoch 1.
            epoch = 1;
            let mut buf = Vec::new();
            append_frame(&mut buf, &epoch.to_le_bytes());
            write_atomic(&dir, QUEUE_LOG, &buf)?;
        } else if off < bytes.len() {
            // Torn tail: drop the partial frame, keep everything whole.
            let f = OpenOptions::new().write(true).open(&log_path)?;
            f.set_len(off as u64)?;
        }

        let acked = match read_ack(&dir) {
            Some((e, a)) if e == epoch => a.min(entries.len() as u64),
            _ => 0, // older epoch (or no ack yet): nothing here is acked
        };
        let pending: VecDeque<QueuedRecord> = entries.drain(acked as usize..).collect();

        let file = OpenOptions::new().append(true).open(dir.join(QUEUE_LOG))?;
        Ok(RetrainQueue {
            inner: Mutex::new(QueueInner {
                dir,
                file,
                epoch,
                acked,
                pending,
            }),
            capacity,
            dropped: AtomicU64::new(0),
            acked_total: AtomicU64::new(0),
        })
    }

    /// Append one record; `false` (and a counted drop) when the queue is
    /// at capacity — drift floods must not grow the disk without bound.
    pub fn push(&self, domain: &str, text: &str) -> bool {
        let mut inner = self.inner.lock();
        if inner.pending.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let rec = QueuedRecord {
            domain: domain.to_string(),
            text: text.to_string(),
        };
        let payload = serde_json::to_string(&rec).expect("record serializes");
        let mut buf = Vec::with_capacity(payload.len() + 8);
        append_frame(&mut buf, payload.as_bytes());
        // A full/broken disk degrades crash-safety, not serving: the
        // entry still queues in memory even if the append fails.
        let _ = inner.file.write_all(&buf);
        inner.pending.push_back(rec);
        true
    }

    /// Clone up to `max` pending records *without* consuming them; call
    /// [`ack`](Self::ack) once the batch has been processed. A crash in
    /// between re-delivers the batch after reopen (at-least-once).
    pub fn take(&self, max: usize) -> Vec<QueuedRecord> {
        let inner = self.inner.lock();
        inner.pending.iter().take(max).cloned().collect()
    }

    /// Acknowledge the first `n` pending records: they leave the queue
    /// and — once the watermark write lands — never come back, even
    /// across a kill.
    pub fn ack(&self, n: usize) {
        let mut inner = self.inner.lock();
        let n = n.min(inner.pending.len());
        if n == 0 {
            return;
        }
        inner.pending.drain(..n);
        inner.acked += n as u64;
        self.acked_total.fetch_add(n as u64, Ordering::Relaxed);
        if inner.acked >= COMPACT_ACKED || (inner.pending.is_empty() && inner.acked > 0) {
            // Compaction: write a pending-only log under epoch+1, rename
            // it over the old one, then publish (epoch+1, 0). A crash
            // after the log rename but before the ack write leaves an
            // old-epoch ack file, which recovery treats as "0 acked" —
            // correct, because the new log holds only unacked entries.
            let _ = inner.compact();
        } else {
            let _ = write_ack(&inner.dir, inner.epoch, inner.acked);
        }
    }

    /// Pending (unacked) records.
    pub fn len(&self) -> usize {
        self.inner.lock().pending.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records refused because the queue was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records acknowledged over this process's lifetime.
    pub fn acked_total(&self) -> u64 {
        self.acked_total.load(Ordering::Relaxed)
    }
}

impl QueueInner {
    fn compact(&mut self) -> std::io::Result<()> {
        let epoch = self.epoch + 1;
        let mut buf = Vec::new();
        append_frame(&mut buf, &epoch.to_le_bytes());
        for rec in &self.pending {
            let payload = serde_json::to_string(rec).expect("record serializes");
            append_frame(&mut buf, payload.as_bytes());
        }
        write_atomic(&self.dir, QUEUE_LOG, &buf)?;
        write_ack(&self.dir, epoch, 0)?;
        // The rename orphaned the old inode; reopen the append handle.
        self.file = OpenOptions::new()
            .append(true)
            .open(self.dir.join(QUEUE_LOG))?;
        self.epoch = epoch;
        self.acked = 0;
        Ok(())
    }
}

fn read_ack(dir: &Path) -> Option<(u64, u64)> {
    let bytes = std::fs::read(dir.join(QUEUE_ACK)).ok()?;
    let (payload, _) = decode_frame(&bytes)?;
    if payload.len() != 16 {
        return None;
    }
    Some((
        u64::from_le_bytes(payload[..8].try_into().unwrap()),
        u64::from_le_bytes(payload[8..].try_into().unwrap()),
    ))
}

fn write_ack(dir: &Path, epoch: u64, acked: u64) -> std::io::Result<()> {
    let mut payload = [0u8; 16];
    payload[..8].copy_from_slice(&epoch.to_le_bytes());
    payload[8..].copy_from_slice(&acked.to_le_bytes());
    let mut buf = Vec::new();
    append_frame(&mut buf, &payload);
    write_atomic(dir, QUEUE_ACK, &buf)
}

/// Write-temp-then-rename so readers (and recovery) never see a partial
/// file.
fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, dir.join(name))
}

// ---------------------------------------------------------------------
// Drift monitor.
// ---------------------------------------------------------------------

/// Sliding-window confidence tracker. Each served parse reports its
/// per-record confidence (forward–backward marginal mean on the exact
/// tier, normalized Viterbi margin on the fast tier — both near 1 on
/// schemas the model knows, sagging under drift); the monitor keeps the
/// last `window` values and declares *drift* when the window is full
/// and at least `drift_fraction` of it sits below `low_confidence`.
pub struct DriftMonitor {
    window: usize,
    low_confidence: f64,
    drift_fraction: f64,
    inner: Mutex<MonitorWindow>,
    records_seen: AtomicU64,
    low_total: AtomicU64,
}

#[derive(Default)]
struct MonitorWindow {
    recent: VecDeque<f64>,
    low: usize,
    sum: f64,
}

impl DriftMonitor {
    /// A monitor over the last `window` records.
    pub fn new(window: usize, low_confidence: f64, drift_fraction: f64) -> Self {
        DriftMonitor {
            window: window.max(1),
            low_confidence,
            drift_fraction,
            inner: Mutex::new(MonitorWindow::default()),
            records_seen: AtomicU64::new(0),
            low_total: AtomicU64::new(0),
        }
    }

    /// Fold one record's confidence in; returns whether this record is
    /// individually low-confidence (the caller's cue to queue it).
    pub fn observe(&self, confidence: f64) -> bool {
        let low = confidence < self.low_confidence;
        self.records_seen.fetch_add(1, Ordering::Relaxed);
        if low {
            self.low_total.fetch_add(1, Ordering::Relaxed);
        }
        let mut w = self.inner.lock();
        if w.recent.len() == self.window {
            if let Some(old) = w.recent.pop_front() {
                w.sum -= old;
                if old < self.low_confidence {
                    w.low -= 1;
                }
            }
        }
        w.recent.push_back(confidence);
        w.sum += confidence;
        if low {
            w.low += 1;
        }
        low
    }

    /// Sustained low-confidence regime: full window, and the low-record
    /// fraction at or above the configured trigger.
    pub fn drifting(&self) -> bool {
        let w = self.inner.lock();
        w.recent.len() == self.window && w.low as f64 >= self.drift_fraction * self.window as f64
    }

    /// Mean confidence over the current window (1.0 when empty, so an
    /// idle service never looks like it is collapsing).
    pub fn window_mean(&self) -> f64 {
        let w = self.inner.lock();
        if w.recent.is_empty() {
            1.0
        } else {
            w.sum / w.recent.len() as f64
        }
    }

    /// Whether the window has filled since the last reset.
    pub fn window_full(&self) -> bool {
        self.inner.lock().recent.len() == self.window
    }

    /// Observations in the current window.
    pub fn window_len(&self) -> usize {
        self.inner.lock().recent.len()
    }

    /// Records observed over the monitor's lifetime.
    pub fn records_seen(&self) -> u64 {
        self.records_seen.load(Ordering::Relaxed)
    }

    /// Low-confidence records over the monitor's lifetime.
    pub fn low_total(&self) -> u64 {
        self.low_total.load(Ordering::Relaxed)
    }

    /// Clear the window — after a swap or rollback, pre-change
    /// confidences must not pollute the verdict on the new model.
    pub fn reset(&self) {
        *self.inner.lock() = MonitorWindow::default();
    }
}

// ---------------------------------------------------------------------
// Configuration.
// ---------------------------------------------------------------------

/// Everything the loop needs. Carried in
/// [`ServeConfig::retrain`](crate::service::ServeConfig) (absent → the
/// loop is off and serving behaves exactly as before).
#[derive(Clone, Debug)]
pub struct RetrainConfig {
    /// Directory for the crash-safe queue and quarantined candidates.
    pub dir: PathBuf,
    /// Sliding-window size for the drift monitor.
    pub window: usize,
    /// Per-record confidence below which a record is queued for
    /// relabeling (and counts toward the drift fraction).
    pub low_confidence: f64,
    /// Fraction of the window that must be low-confidence to declare a
    /// sustained drift regime.
    pub drift_fraction: f64,
    /// Post-swap rollback trigger: windowed mean confidence below this
    /// during probation reinstalls the previous model.
    pub rollback_mean: f64,
    /// Probation length after a deploy, in observed records; the
    /// previous model is kept restorable until it elapses.
    pub probation: u64,
    /// Queue capacity (pending records beyond it are dropped, counted).
    pub queue_capacity: usize,
    /// Don't attempt a retrain with fewer agreed-upon queued records.
    pub min_batch: usize,
    /// Cap on records consumed per retrain attempt.
    pub max_batch: usize,
    /// Loop poll interval.
    pub interval: Duration,
    /// The deployment gate. `false` is for tests that need to push a bad
    /// candidate through to exercise rollback; leave it on in
    /// production — it is the loop's self-harm interlock.
    pub gate: bool,
    /// The retained golden set: labeled first-level examples the gate
    /// evaluates candidates against, also mixed into every refit as
    /// ballast so a candidate cannot forget the known schemas.
    pub golden_first: Vec<TrainExample<BlockLabel>>,
    /// Per-registrar templates (§2.3 baseline) used to cross-check the
    /// rule labeler; records the two disagree on are dropped.
    pub templates: TemplateParser,
    /// Training configuration for refits — defaults to the bounded
    /// warm-start [`whois_crf::TrainConfig::incremental`] schedule.
    pub train: ParserConfig,
}

impl RetrainConfig {
    /// Defaults for `dir`: window 48, low-confidence 0.8, drift at half
    /// the window, rollback below 0.4 mean, 96-record probation, queue
    /// of 512, batches of 8..256, 250 ms polls, gate on, empty golden
    /// set (callers supply one), incremental training.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        RetrainConfig {
            dir: dir.into(),
            window: 48,
            low_confidence: 0.8,
            drift_fraction: 0.5,
            rollback_mean: 0.4,
            probation: 96,
            queue_capacity: 512,
            min_batch: 8,
            max_batch: 256,
            interval: Duration::from_millis(250),
            gate: true,
            golden_first: Vec::new(),
            templates: TemplateParser::new(),
            train: ParserConfig {
                train: whois_parser::TrainConfig::incremental(),
                ..ParserConfig::default()
            },
        }
    }
}

// ---------------------------------------------------------------------
// Shared hub: what the serving path and the loop both touch.
// ---------------------------------------------------------------------

/// Monitor + queue + counters, shared between parse workers (which
/// observe and enqueue), the stats path (which snapshots), and the
/// retrain loop (which drains and retrains).
pub struct RetrainHub {
    monitor: DriftMonitor,
    queue: RetrainQueue,
    attempts: AtomicU64,
    deployed: AtomicU64,
    rejected: AtomicU64,
    rollbacks: AtomicU64,
    labeled: AtomicU64,
    label_dropped: AtomicU64,
    probation_active: AtomicBool,
    /// f64 bit patterns of the last gate evaluation.
    incumbent_acc: AtomicU64,
    candidate_acc: AtomicU64,
    last_outcome: Mutex<String>,
}

impl RetrainHub {
    /// Open the hub (queue recovery happens here).
    pub fn open(cfg: &RetrainConfig) -> std::io::Result<RetrainHub> {
        Ok(RetrainHub {
            monitor: DriftMonitor::new(cfg.window, cfg.low_confidence, cfg.drift_fraction),
            queue: RetrainQueue::open(&cfg.dir, cfg.queue_capacity)?,
            attempts: AtomicU64::new(0),
            deployed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
            labeled: AtomicU64::new(0),
            label_dropped: AtomicU64::new(0),
            probation_active: AtomicBool::new(false),
            incumbent_acc: AtomicU64::new(0),
            candidate_acc: AtomicU64::new(0),
            last_outcome: Mutex::new(String::new()),
        })
    }

    /// The serving path's single entry point: fold in one parse's
    /// confidence; low-confidence records are queued for the loop.
    pub fn observe_parse(&self, domain: &str, text: &str, confidence: f64) {
        if self.monitor.observe(confidence) {
            self.queue.push(domain, text);
        }
    }

    /// The drift monitor.
    pub fn monitor(&self) -> &DriftMonitor {
        &self.monitor
    }

    /// The retrain queue.
    pub fn queue(&self) -> &RetrainQueue {
        &self.queue
    }

    /// Point-in-time view for `STATS`/`HEALTH`/`RETRAIN`.
    pub fn snapshot(&self) -> RetrainSnapshot {
        RetrainSnapshot {
            enabled: true,
            records_seen: self.monitor.records_seen(),
            low_confidence: self.monitor.low_total(),
            window_len: self.monitor.window_len() as u64,
            window_mean: self.monitor.window_mean(),
            drifting: self.monitor.drifting(),
            queue_len: self.queue.len() as u64,
            queue_dropped: self.queue.dropped(),
            queue_acked: self.queue.acked_total(),
            attempts: self.attempts.load(Ordering::Relaxed),
            deployed: self.deployed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            rollbacks: self.rollbacks.load(Ordering::Relaxed),
            labeled: self.labeled.load(Ordering::Relaxed),
            label_dropped: self.label_dropped.load(Ordering::Relaxed),
            probation: self.probation_active.load(Ordering::Relaxed),
            incumbent_accuracy: f64::from_bits(self.incumbent_acc.load(Ordering::Relaxed)),
            candidate_accuracy: f64::from_bits(self.candidate_acc.load(Ordering::Relaxed)),
            last_outcome: self.last_outcome.lock().clone(),
        }
    }

    fn set_outcome(&self, outcome: impl Into<String>) {
        *self.last_outcome.lock() = outcome.into();
    }
}

/// The retrain/drift section of `STATS`/`HEALTH` and the `RETRAIN`
/// verb's payload. All-default (`enabled: false`) when the loop is off
/// or the reply came from an older daemon.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RetrainSnapshot {
    /// Whether the loop is configured.
    pub enabled: bool,
    /// Records whose confidence the monitor has seen.
    pub records_seen: u64,
    /// Lifetime low-confidence records.
    pub low_confidence: u64,
    /// Observations currently in the window.
    pub window_len: u64,
    /// Mean confidence over the window (1.0 when empty).
    pub window_mean: f64,
    /// Sustained low-confidence regime detected right now.
    pub drifting: bool,
    /// Pending records in the retrain queue.
    pub queue_len: u64,
    /// Records dropped because the queue was full.
    pub queue_dropped: u64,
    /// Records acknowledged (consumed by retrain attempts).
    pub queue_acked: u64,
    /// Retrain attempts started.
    pub attempts: u64,
    /// Candidates deployed through the hot-swap path.
    pub deployed: u64,
    /// Candidates rejected by the golden-set gate (quarantined).
    pub rejected: u64,
    /// Automatic post-swap rollbacks.
    pub rollbacks: u64,
    /// Queued records the labelers agreed on (became training examples).
    pub labeled: u64,
    /// Queued records dropped by labeler disagreement or misalignment.
    pub label_dropped: u64,
    /// Whether a deploy is currently under post-swap probation.
    pub probation: bool,
    /// Incumbent golden-set line accuracy at the last gate evaluation.
    pub incumbent_accuracy: f64,
    /// Candidate golden-set line accuracy at the last gate evaluation.
    pub candidate_accuracy: f64,
    /// Human-readable outcome of the last loop action.
    pub last_outcome: String,
}

// ---------------------------------------------------------------------
// The retrainer.
// ---------------------------------------------------------------------

/// What one loop action decided.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RetrainOutcome {
    /// Nothing to do (no drift, batch too small, or no agreed labels).
    Skipped,
    /// Candidate deployed at this generation.
    Deployed(u64),
    /// Candidate scored worse than the incumbent and was quarantined.
    Rejected,
    /// Post-swap confidence collapse: previous model reinstalled.
    RolledBack,
}

struct PreviousModel {
    parser: WhoisParser,
    version: String,
}

/// The decision core of the loop: labeling, refit, gate, deploy,
/// rollback. [`tick`](Self::tick) is re-entrant-safe but intended to be
/// driven by one [`RetrainLoop`] thread (or directly by tests, which is
/// what makes the gate and rollback provable without sleeps).
pub struct Retrainer {
    registry: Arc<ModelRegistry>,
    hub: Arc<RetrainHub>,
    cfg: RetrainConfig,
    rules: RuleBasedParser,
    previous: Mutex<Option<PreviousModel>>,
    records_at_deploy: AtomicU64,
    deploy_seq: AtomicU64,
}

impl Retrainer {
    /// Build the loop core over a registry and its hub.
    pub fn new(registry: Arc<ModelRegistry>, hub: Arc<RetrainHub>, cfg: RetrainConfig) -> Self {
        Retrainer {
            registry,
            hub,
            cfg,
            rules: RuleBasedParser::full(),
            previous: Mutex::new(None),
            records_at_deploy: AtomicU64::new(0),
            deploy_seq: AtomicU64::new(0),
        }
    }

    /// One loop iteration: rollback check first (a collapsing deploy
    /// must be undone before anything else), then a retrain attempt if a
    /// sustained drift regime holds and enough records are queued.
    pub fn tick(&self) -> RetrainOutcome {
        if self.check_rollback() {
            return RetrainOutcome::RolledBack;
        }
        if !self.hub.monitor.drifting() || self.hub.queue.len() < self.cfg.min_batch {
            return RetrainOutcome::Skipped;
        }
        self.attempt()
    }

    /// One full detect→label→refit→gate cycle over the queued batch.
    /// The batch is acknowledged whatever the outcome — reprocessing the
    /// same records cannot change a gate verdict, so leaving them queued
    /// would only wedge the loop. (A crash mid-attempt re-delivers the
    /// batch: acks land after the verdict.)
    pub fn attempt(&self) -> RetrainOutcome {
        self.hub.attempts.fetch_add(1, Ordering::Relaxed);
        let batch = self.hub.queue.take(self.cfg.max_batch);
        if batch.is_empty() {
            return RetrainOutcome::Skipped;
        }
        let (examples, dropped) = self.label(&batch);
        self.hub
            .labeled
            .fetch_add(examples.len() as u64, Ordering::Relaxed);
        self.hub.label_dropped.fetch_add(dropped, Ordering::Relaxed);
        if examples.is_empty() {
            self.hub.queue.ack(batch.len());
            self.hub
                .set_outcome("skipped: labelers agreed on no queued record");
            return RetrainOutcome::Skipped;
        }

        // Refit from the incumbent: golden ballast + the agreed drifted
        // examples. `retrain_first_level` warm-starts from the current
        // weights when the dictionary is unchanged and rebuilds+refits
        // when the drifted schema introduced new vocabulary (§5.3).
        let incumbent = self.registry.current().engine.parser().clone();
        let mut candidate = incumbent;
        let mut training = self.cfg.golden_first.clone();
        training.extend(examples);
        candidate.retrain_first_level(&training, &self.cfg.train);

        let outcome = self.consider(candidate);
        self.hub.queue.ack(batch.len());
        outcome
    }

    /// Gate and (maybe) deploy a candidate. Exposed so tests can prove
    /// the gate with a hand-poisoned candidate instead of hoping the
    /// labelers misfire.
    pub fn consider(&self, candidate: WhoisParser) -> RetrainOutcome {
        let active = self.registry.current();
        let incumbent_acc = 1.0
            - active
                .engine
                .parser()
                .evaluate_first_level(&self.cfg.golden_first)
                .line_error_rate();
        let candidate_acc = 1.0
            - candidate
                .evaluate_first_level(&self.cfg.golden_first)
                .line_error_rate();
        self.hub
            .incumbent_acc
            .store(incumbent_acc.to_bits(), Ordering::Relaxed);
        self.hub
            .candidate_acc
            .store(candidate_acc.to_bits(), Ordering::Relaxed);

        if self.cfg.gate && candidate_acc + 1e-9 < incumbent_acc {
            self.hub.rejected.fetch_add(1, Ordering::Relaxed);
            self.quarantine(&candidate);
            self.hub.set_outcome(format!(
                "rejected: candidate golden accuracy {candidate_acc:.4} \
                 < incumbent {incumbent_acc:.4}"
            ));
            return RetrainOutcome::Rejected;
        }

        let n = self.deploy_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let version = format!("{}+retrain-{n:04}", active.version);
        *self.previous.lock() = Some(PreviousModel {
            parser: active.engine.parser().clone(),
            version: active.version.clone(),
        });
        let generation = self.registry.install(candidate, version.clone());
        self.hub.monitor.reset();
        self.records_at_deploy
            .store(self.hub.monitor.records_seen(), Ordering::Relaxed);
        self.hub.probation_active.store(true, Ordering::Relaxed);
        self.hub.deployed.fetch_add(1, Ordering::Relaxed);
        self.hub.set_outcome(format!(
            "deployed {version} (generation {generation}, candidate \
             {candidate_acc:.4} vs incumbent {incumbent_acc:.4} on golden set)"
        ));
        RetrainOutcome::Deployed(generation)
    }

    /// Post-swap watchdog: while a deploy is on probation, a full window
    /// whose mean confidence sits below the rollback threshold
    /// reinstalls the model the deploy replaced.
    fn check_rollback(&self) -> bool {
        let mut prev = self.previous.lock();
        if prev.is_none() {
            self.hub.probation_active.store(false, Ordering::Relaxed);
            return false;
        }
        if self.hub.monitor.window_full() && self.hub.monitor.window_mean() < self.cfg.rollback_mean
        {
            let restored = prev.take().expect("checked above");
            let mean = self.hub.monitor.window_mean();
            let rb = self.hub.rollbacks.fetch_add(1, Ordering::Relaxed) + 1;
            let version = format!("{}+rb{rb}", restored.version);
            self.registry.install(restored.parser, version.clone());
            self.hub.monitor.reset();
            self.hub.probation_active.store(false, Ordering::Relaxed);
            self.hub.set_outcome(format!(
                "rolled back to {version}: post-swap window mean {mean:.4} \
                 below {:.4}",
                self.cfg.rollback_mean
            ));
            return true;
        }
        let seen = self.hub.monitor.records_seen();
        let at_deploy = self.records_at_deploy.load(Ordering::Relaxed);
        if seen.saturating_sub(at_deploy) >= self.cfg.probation {
            *prev = None; // probation survived; the deploy sticks
            self.hub.probation_active.store(false, Ordering::Relaxed);
        }
        false
    }

    /// Auto-label one queued batch with the two baselines. A record
    /// becomes a training example only when the rule labeler's output
    /// aligns with the record's lines AND any applicable per-registrar
    /// template agrees line-for-line; everything else is dropped —
    /// wrong labels are worse than no labels.
    fn label(&self, batch: &[QueuedRecord]) -> (Vec<TrainExample<BlockLabel>>, u64) {
        let mut out = Vec::new();
        let mut dropped = 0u64;
        for rec in batch {
            let lines = non_empty_lines(&rec.text);
            if lines.is_empty() {
                dropped += 1;
                continue;
            }
            let labels = self.rules.label_blocks(&rec.text);
            if labels.len() != lines.len() {
                dropped += 1;
                continue;
            }
            let registrar = self
                .rules
                .parse(&RawRecord::new(&rec.domain, &rec.text))
                .registrar;
            if let Some(reg) = registrar {
                if let Some(template_labels) = self.cfg.templates.label_blocks(&reg, &lines) {
                    if template_labels != labels {
                        dropped += 1;
                        continue;
                    }
                }
            }
            out.push(TrainExample {
                text: rec.text.clone(),
                labels,
            });
        }
        (out, dropped)
    }

    /// Persist a rejected candidate for post-mortem (best-effort — a
    /// full disk must not take the loop down).
    fn quarantine(&self, candidate: &WhoisParser) {
        let n = self.hub.rejected.load(Ordering::Relaxed);
        let dir = self.cfg.dir.join("quarantine");
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        if let Ok(json) = candidate.to_json() {
            let _ = std::fs::write(dir.join(format!("candidate-{n:04}.json")), json);
        }
    }

    /// The shared hub (for harnesses that drive ticks directly).
    pub fn hub(&self) -> &Arc<RetrainHub> {
        &self.hub
    }
}

// ---------------------------------------------------------------------
// The background loop thread.
// ---------------------------------------------------------------------

/// Owns the thread that ticks a [`Retrainer`] at its configured
/// interval. Dropping (or [`stop`](Self::stop)) joins it; a tick in
/// flight finishes first, so no half-installed model can be left
/// behind.
pub struct RetrainLoop {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl RetrainLoop {
    /// Spawn the loop.
    pub fn start(retrainer: Arc<Retrainer>, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let thread = std::thread::Builder::new()
            .name("whois-serve-retrain".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::SeqCst) {
                    retrainer.tick();
                    // Sleep in small steps so stop() is prompt.
                    let mut remaining = interval;
                    while !remaining.is_zero() && !stop_flag.load(Ordering::SeqCst) {
                        let step = remaining.min(Duration::from_millis(10));
                        std::thread::sleep(step);
                        remaining = remaining.saturating_sub(step);
                    }
                }
            })
            .expect("spawn retrain loop");
        RetrainLoop {
            stop,
            thread: Some(thread),
        }
    }

    /// Stop the loop and join its thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for RetrainLoop {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "whois-retrain-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn queue_roundtrips_and_acks() {
        let dir = tmp_dir("roundtrip");
        let q = RetrainQueue::open(&dir, 16).unwrap();
        assert!(q.is_empty());
        assert!(q.push("a.com", "Domain Name: A.COM\n"));
        assert!(q.push("b.com", "Domain Name: B.COM\n"));
        assert_eq!(q.len(), 2);
        let batch = q.take(10);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].domain, "a.com");
        // take() does not consume.
        assert_eq!(q.len(), 2);
        q.ack(1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.take(10)[0].domain, "b.com");
        assert_eq!(q.acked_total(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queue_reopen_keeps_exactly_the_acked_prefix() {
        let dir = tmp_dir("reopen");
        {
            let q = RetrainQueue::open(&dir, 16).unwrap();
            for i in 0..5 {
                q.push(&format!("d{i}.com"), &format!("Domain Name: D{i}.COM\n"));
            }
            q.ack(2);
        } // "kill"
        let q = RetrainQueue::open(&dir, 16).unwrap();
        let pending: Vec<String> = q.take(10).into_iter().map(|r| r.domain).collect();
        assert_eq!(pending, vec!["d2.com", "d3.com", "d4.com"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queue_truncates_torn_tail_on_reopen() {
        let dir = tmp_dir("torn");
        {
            let q = RetrainQueue::open(&dir, 16).unwrap();
            q.push("whole.com", "Domain Name: WHOLE.COM\n");
        }
        // Simulate a crash mid-append: garbage half-frame at the tail.
        let log = dir.join(QUEUE_LOG);
        let mut bytes = std::fs::read(&log).unwrap();
        bytes.extend_from_slice(&[0x55, 0x00, 0x00, 0x00, 0xAA]);
        std::fs::write(&log, &bytes).unwrap();

        let q = RetrainQueue::open(&dir, 16).unwrap();
        let pending = q.take(10);
        assert_eq!(pending.len(), 1, "whole frames survive, torn tail dropped");
        assert_eq!(pending[0].domain, "whole.com");
        // And the truncation healed the log: push + reopen still works.
        q.push("after.com", "Domain Name: AFTER.COM\n");
        drop(q);
        let q = RetrainQueue::open(&dir, 16).unwrap();
        assert_eq!(q.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queue_capacity_drops_and_counts() {
        let dir = tmp_dir("cap");
        let q = RetrainQueue::open(&dir, 2).unwrap();
        assert!(q.push("a.com", "x"));
        assert!(q.push("b.com", "x"));
        assert!(!q.push("c.com", "x"));
        assert_eq!(q.len(), 2);
        assert_eq!(q.dropped(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queue_full_drain_compacts_the_log() {
        let dir = tmp_dir("compact");
        let q = RetrainQueue::open(&dir, 16).unwrap();
        for i in 0..4 {
            q.push(&format!("d{i}.com"), "Domain Name: X\n");
        }
        q.ack(4);
        assert!(q.is_empty());
        let log_len = std::fs::metadata(dir.join(QUEUE_LOG)).unwrap().len();
        // Epoch frame only: 8-byte header + 8-byte payload.
        assert_eq!(log_len, 16, "drained log compacts to the epoch frame");
        // Entries pushed after compaction survive a reopen.
        q.push("fresh.com", "Domain Name: FRESH.COM\n");
        drop(q);
        let q = RetrainQueue::open(&dir, 16).unwrap();
        assert_eq!(q.take(10)[0].domain, "fresh.com");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn monitor_detects_sustained_low_confidence_and_resets() {
        let m = DriftMonitor::new(4, 0.8, 0.5);
        assert!(!m.drifting(), "empty window is not drift");
        m.observe(0.95);
        m.observe(0.97);
        m.observe(0.96);
        m.observe(0.94);
        assert!(!m.drifting(), "healthy window is not drift");
        assert!(m.observe(0.3), "low record is flagged");
        assert!(!m.drifting(), "one low record of four is not sustained");
        m.observe(0.2);
        assert!(m.drifting(), "half the window low is sustained");
        assert!(m.window_mean() < 0.8);
        m.reset();
        assert!(!m.drifting());
        assert_eq!(m.window_len(), 0);
        assert!(m.records_seen() >= 6, "lifetime counters survive reset");
    }

    #[test]
    fn snapshot_roundtrips_and_defaults_disabled() {
        let snap = RetrainSnapshot::default();
        assert!(!snap.enabled);
        let json = serde_json::to_string(&snap).unwrap();
        let back: RetrainSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
