//! Blocking client for the `whois-serve` protocol.
//!
//! One [`ServeClient`] wraps one persistent connection; requests are
//! strictly sequential (send a line, read a line). The raw
//! [`request_line`](ServeClient::request_line) entry point exists so
//! tests can assert byte-identity of cached versus uncached replies
//! without any decode/re-encode laundering in between.

use crate::retrain::RetrainSnapshot;
use crate::stats::{HealthSnapshot, StatsSnapshot};
use crate::wire::{ParseRequest, Reply, Request};
use bytes::BytesMut;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;
use whois_net::proto;

/// Longest reply line the client will buffer.
const MAX_REPLY_LEN: usize = 16 << 20;

/// Default connect/read/write timeout for [`ServeClient::connect`].
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(5);

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, timeout).
    Io(std::io::Error),
    /// The server answered, but not with what we expected.
    Protocol(String),
    /// The server answered `ok:false`; the flag is the reply's `shed`.
    Server { message: String, shed: bool },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { message, shed } => {
                write!(
                    f,
                    "server error{}: {message}",
                    if *shed { " (shed)" } else { "" }
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected protocol client.
pub struct ServeClient {
    stream: TcpStream,
    buf: BytesMut,
}

impl ServeClient {
    /// Connect with [`DEFAULT_TIMEOUT`] on every operation.
    pub fn connect(addr: SocketAddr) -> Result<ServeClient, ClientError> {
        ServeClient::connect_timeout(addr, DEFAULT_TIMEOUT)
    }

    /// Connect with an explicit connect/read/write timeout.
    pub fn connect_timeout(
        addr: SocketAddr,
        timeout: Duration,
    ) -> Result<ServeClient, ClientError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(ServeClient {
            stream,
            buf: BytesMut::with_capacity(1024),
        })
    }

    /// Send one raw request line and return the raw reply line, exactly
    /// as the server framed it (terminator stripped).
    pub fn request_line(&mut self, line: &str) -> Result<String, ClientError> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        let mut chunk = [0u8; 4096];
        loop {
            match proto::decode_line(&mut self.buf, MAX_REPLY_LEN)
                .map_err(|e| ClientError::Protocol(e.to_string()))?
            {
                Some(reply) => return Ok(reply),
                None => {
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(ClientError::Protocol(
                            "connection closed before reply".into(),
                        ));
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
            }
        }
    }

    /// Send a request, decode the [`Reply`]. Error replies (including
    /// sheds) come back as `Ok` so callers can inspect the `shed` flag.
    pub fn round_trip(&mut self, request: &Request) -> Result<Reply, ClientError> {
        let line = self.request_line(&request.encode())?;
        Reply::decode(&line).map_err(ClientError::Protocol)
    }

    /// Parse a record body; `Err(Server{..})` on refusal.
    pub fn parse(&mut self, domain: &str, text: &str) -> Result<Reply, ClientError> {
        let reply = self.round_trip(&Request::Parse(ParseRequest {
            domain: domain.to_string(),
            text: text.to_string(),
        }))?;
        expect_ok(reply)
    }

    /// Fetch-and-parse a domain via the server's upstream WHOIS.
    pub fn fetch(&mut self, domain: &str) -> Result<Reply, ClientError> {
        let reply = self.round_trip(&Request::Fetch(domain.to_string()))?;
        expect_ok(reply)
    }

    /// Serving statistics.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        let reply = expect_ok(self.round_trip(&Request::Stats)?)?;
        reply
            .stats
            .ok_or_else(|| ClientError::Protocol("STATS reply without stats payload".into()))
    }

    /// Liveness probe (answered inline by the server, never queued).
    pub fn health(&mut self) -> Result<HealthSnapshot, ClientError> {
        let reply = expect_ok(self.round_trip(&Request::Health)?)?;
        reply
            .health
            .ok_or_else(|| ClientError::Protocol("HEALTH reply without health payload".into()))
    }

    /// Drift-monitor and retrain-loop state (answered inline, like
    /// `HEALTH`; `enabled: false` when the server runs without the
    /// loop).
    pub fn retrain_status(&mut self) -> Result<RetrainSnapshot, ClientError> {
        let reply = expect_ok(self.round_trip(&Request::Retrain)?)?;
        reply
            .retrain
            .ok_or_else(|| ClientError::Protocol("RETRAIN reply without retrain payload".into()))
    }
}

fn expect_ok(reply: Reply) -> Result<Reply, ClientError> {
    if reply.ok {
        Ok(reply)
    } else {
        Err(ClientError::Server {
            message: reply.error.unwrap_or_else(|| "unspecified".into()),
            shed: reply.shed,
        })
    }
}
