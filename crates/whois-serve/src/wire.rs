//! The `whois-serve` line protocol.
//!
//! Requests are single lines (framed by [`whois_net::proto::decode_line`],
//! the helper shared with the WHOIS server), verb first:
//!
//! ```text
//! PARSE {"domain":"example.com","text":"Domain Name: ..."}
//! FETCH example.com
//! STATS
//! HEALTH
//! RETRAIN
//! ```
//!
//! Every reply is one JSON line. Replies to `PARSE`/`FETCH` carry the
//! structured record and the model version that produced it; shed
//! replies carry `"shed":true` so clients can distinguish overload from
//! a parse failure and retry elsewhere / later:
//!
//! ```text
//! {"ok":true,"model":"model-0001","record":{...}}
//! {"ok":false,"error":"overloaded","shed":true}
//! ```
//!
//! Newlines can never appear inside a reply because JSON strings escape
//! them, so line framing is airtight in both directions.

use serde::{Deserialize, Serialize};
use whois_model::ParsedRecord;

use crate::retrain::RetrainSnapshot;
use crate::stats::{HealthSnapshot, StatsSnapshot};

/// Payload of a `PARSE` request.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParseRequest {
    /// Domain the record describes (embedded in the parse output).
    pub domain: String,
    /// Verbatim record body.
    pub text: String,
}

/// A decoded request line.
#[derive(Clone, Debug)]
pub enum Request {
    /// Parse a record body supplied by the client.
    Parse(ParseRequest),
    /// Fetch the record for a domain from upstream WHOIS, then parse it.
    Fetch(String),
    /// Report serving statistics.
    Stats,
    /// Report liveness (answered inline, never queued — works even when
    /// every parse worker is wedged).
    Health,
    /// Report drift-monitor and retrain-loop state (answered inline,
    /// like `HEALTH`).
    Retrain,
}

impl Request {
    /// Decode one request line. `Err` carries the message for the error
    /// reply.
    pub fn decode(line: &str) -> Result<Request, String> {
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        match verb.to_ascii_uppercase().as_str() {
            "PARSE" => {
                let req: ParseRequest =
                    serde_json::from_str(rest).map_err(|e| format!("bad PARSE payload: {e}"))?;
                if req.domain.trim().is_empty() {
                    return Err("bad PARSE payload: empty domain".into());
                }
                Ok(Request::Parse(req))
            }
            "FETCH" => {
                if rest.is_empty() {
                    return Err("FETCH requires a domain".into());
                }
                Ok(Request::Fetch(rest.to_string()))
            }
            "STATS" => Ok(Request::Stats),
            "HEALTH" => Ok(Request::Health),
            "RETRAIN" => Ok(Request::Retrain),
            other => Err(format!("unknown verb: {other}")),
        }
    }

    /// Encode this request as a protocol line (no terminator).
    pub fn encode(&self) -> String {
        match self {
            Request::Parse(req) => format!(
                "PARSE {}",
                serde_json::to_string(req).expect("request serializes")
            ),
            Request::Fetch(domain) => format!("FETCH {domain}"),
            Request::Stats => "STATS".to_string(),
            Request::Health => "HEALTH".to_string(),
            Request::Retrain => "RETRAIN".to_string(),
        }
    }
}

/// A reply line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Reply {
    /// Whether the request succeeded.
    pub ok: bool,
    /// Model version that served a parse.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub model: Option<String>,
    /// The structured parse.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub record: Option<ParsedRecord>,
    /// `STATS` payload.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub stats: Option<StatsSnapshot>,
    /// `HEALTH` payload.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub health: Option<HealthSnapshot>,
    /// Error message when `ok` is false.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
    /// True when the request was refused by admission control — retry
    /// later; nothing is wrong with the request itself.
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub shed: bool,
    /// `RETRAIN` payload (appended after `shed`; older servers never
    /// emit it and older clients ignore it).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub retrain: Option<RetrainSnapshot>,
}

impl Reply {
    /// Successful parse reply (the cached unit).
    pub fn record(model: &str, record: ParsedRecord) -> Reply {
        Reply {
            ok: true,
            model: Some(model.to_string()),
            record: Some(record),
            stats: None,
            health: None,
            error: None,
            shed: false,
            retrain: None,
        }
    }

    /// `STATS` reply.
    pub fn stats(snapshot: StatsSnapshot) -> Reply {
        Reply {
            ok: true,
            model: None,
            record: None,
            stats: Some(snapshot),
            health: None,
            error: None,
            shed: false,
            retrain: None,
        }
    }

    /// `HEALTH` reply.
    pub fn health(snapshot: HealthSnapshot) -> Reply {
        Reply {
            ok: true,
            model: None,
            record: None,
            stats: None,
            health: Some(snapshot),
            error: None,
            shed: false,
            retrain: None,
        }
    }

    /// `RETRAIN` reply.
    pub fn retrain(snapshot: RetrainSnapshot) -> Reply {
        Reply {
            ok: true,
            model: None,
            record: None,
            stats: None,
            health: None,
            error: None,
            shed: false,
            retrain: Some(snapshot),
        }
    }

    /// Error reply; `shed` marks admission-control refusals.
    pub fn error(message: impl Into<String>, shed: bool) -> Reply {
        Reply {
            ok: false,
            model: None,
            record: None,
            stats: None,
            health: None,
            error: Some(message.into()),
            shed,
            retrain: None,
        }
    }

    /// Serialize to the wire line (no terminator).
    pub fn encode(&self) -> String {
        serde_json::to_string(self).expect("reply serializes")
    }

    /// Decode a wire line.
    pub fn decode(line: &str) -> Result<Reply, String> {
        serde_json::from_str(line).map_err(|e| format!("bad reply: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request::Parse(ParseRequest {
            domain: "example.com".into(),
            text: "Domain Name: EXAMPLE.COM\nRegistrar: X\n".into(),
        });
        match Request::decode(&req.encode()).unwrap() {
            Request::Parse(p) => {
                assert_eq!(p.domain, "example.com");
                assert!(p.text.contains('\n'), "newlines survive JSON escaping");
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            Request::decode("FETCH example.com").unwrap(),
            Request::Fetch(d) if d == "example.com"
        ));
        assert!(matches!(Request::decode("stats").unwrap(), Request::Stats));
        assert!(matches!(
            Request::decode("health").unwrap(),
            Request::Health
        ));
        assert!(matches!(
            Request::decode(&Request::Health.encode()).unwrap(),
            Request::Health
        ));
        assert!(matches!(
            Request::decode("retrain").unwrap(),
            Request::Retrain
        ));
        assert!(matches!(
            Request::decode(&Request::Retrain.encode()).unwrap(),
            Request::Retrain
        ));
    }

    #[test]
    fn bad_requests_are_rejected_with_reasons() {
        assert!(Request::decode("PARSE not json").is_err());
        assert!(Request::decode("PARSE {\"domain\":\"\",\"text\":\"x\"}").is_err());
        assert!(Request::decode("FETCH").is_err());
        assert!(Request::decode("EXPLODE now").is_err());
    }

    #[test]
    fn reply_roundtrip_and_shed_flag() {
        let shed = Reply::error("overloaded", true);
        let line = shed.encode();
        assert!(line.contains("\"shed\":true"), "{line}");
        let back = Reply::decode(&line).unwrap();
        assert!(!back.ok);
        assert!(back.shed);

        let plain = Reply::error("bad request", false).encode();
        assert!(!plain.contains("shed"), "{plain}");
        assert!(!Reply::decode(&plain).unwrap().shed);
    }

    #[test]
    fn health_reply_roundtrip() {
        let snapshot = crate::stats::HealthSnapshot {
            uptime_ms: 5,
            workers: 2,
            workers_alive: 2,
            model_version: "v1".into(),
            ..Default::default()
        };
        let line = Reply::health(snapshot.clone()).encode();
        let back = Reply::decode(&line).unwrap();
        assert!(back.ok);
        assert_eq!(back.health, Some(snapshot));
        // Replies without a health payload omit the field entirely.
        assert!(!Reply::error("x", false).encode().contains("health"));
    }

    #[test]
    fn retrain_reply_roundtrip() {
        let snapshot = RetrainSnapshot {
            enabled: true,
            drifting: true,
            queue_len: 4,
            ..RetrainSnapshot::default()
        };
        let line = Reply::retrain(snapshot.clone()).encode();
        let back = Reply::decode(&line).unwrap();
        assert!(back.ok);
        assert_eq!(back.retrain, Some(snapshot));
        // Non-retrain replies omit the field, so older clients that
        // deny unknown fields never see it.
        assert!(!Reply::error("x", false).encode().contains("retrain"));
    }
}
