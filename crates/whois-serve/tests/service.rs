//! Integration tests for the parse service: caching semantics, byte
//! identity, overload shedding, hot model swaps, graceful drain.

use proptest::prelude::*;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};
use whois_model::{BlockLabel, RegistrantLabel};
use whois_net::store::RecordStore;
use whois_net::{InMemoryStore, ServerConfig, WhoisClient, WhoisServer};
use whois_parser::{ParserConfig, TrainExample, WhoisParser};
use whois_serve::{
    ModelRegistry, ModelWatcher, ParseService, Reply, ServeClient, ServeConfig, UpstreamConfig,
};

fn train_parser(seed: u64, docs: usize) -> WhoisParser {
    let corpus = whois_gen::corpus::generate_corpus(whois_gen::corpus::GenConfig::new(seed, docs));
    let first: Vec<TrainExample<BlockLabel>> = corpus
        .iter()
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect();
    let second: Vec<TrainExample<RegistrantLabel>> = corpus
        .iter()
        .filter_map(|d| {
            let reg = d.registrant_labels();
            (!reg.is_empty()).then(|| TrainExample {
                text: reg.texts().join("\n"),
                labels: reg.labels(),
            })
        })
        .collect();
    WhoisParser::train(&first, &second, &ParserConfig::default())
}

fn start_service(workers: usize, queue: usize, upstream: Option<UpstreamConfig>) -> ParseService {
    let registry = Arc::new(ModelRegistry::new(train_parser(11, 40), "model-0001", 1));
    ParseService::start(
        registry,
        ServeConfig {
            workers,
            queue_capacity: queue,
            upstream,
            ..Default::default()
        },
        0,
    )
    .unwrap()
}

#[test]
fn parse_caches_and_replies_byte_identical() {
    let corpus = whois_gen::corpus::generate_corpus(whois_gen::corpus::GenConfig::new(42, 30));
    let service = start_service(2, 64, None);
    let mut client = ServeClient::connect(service.addr()).unwrap();

    let mut first_lines = Vec::new();
    for d in &corpus {
        let req = whois_serve::Request::Parse(whois_serve::ParseRequest {
            domain: d.facts.domain.clone(),
            text: d.rendered.text(),
        });
        let line = client.request_line(&req.encode()).unwrap();
        let reply = Reply::decode(&line).unwrap();
        assert!(reply.ok, "{line}");
        let record = reply.record.expect("parse reply carries a record");
        assert_eq!(record.domain, d.facts.domain.to_lowercase());
        first_lines.push((req, line));
    }

    // Second pass: every reply must be byte-identical to the first.
    for (req, first) in &first_lines {
        let second = client.request_line(&req.encode()).unwrap();
        assert_eq!(&second, first, "cached reply differs from uncached");
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.cache_misses, corpus.len() as u64);
    assert!(stats.cache_hits >= corpus.len() as u64);
    assert_eq!(stats.parses, corpus.len() as u64, "hits must not re-parse");
    assert!(stats.cache_hit_rate >= 0.5, "{}", stats.cache_hit_rate);
    assert_eq!(stats.sheds, 0);
    assert_eq!(service.cache_len(), corpus.len());
}

#[test]
fn transport_noise_hits_the_same_cache_entry() {
    let service = start_service(1, 16, None);
    let mut client = ServeClient::connect(service.addr()).unwrap();
    let body_lf = "Domain Name: EXAMPLE.COM\nRegistrar: Example Reg Inc.\n";
    let body_crlf_padded = "Domain Name: EXAMPLE.COM\r\nRegistrar: Example Reg Inc.   \r\n\r\n";

    client.parse("example.com", body_lf).unwrap();
    client.parse("EXAMPLE.com", body_crlf_padded).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.cache_misses, 1, "normalized bodies share one entry");
    assert_eq!(stats.cache_hits, 1);
}

/// A registry store whose lookups take a while — stands in for a slow
/// upstream WHOIS server so the single worker stays busy.
struct SlowStore {
    inner: InMemoryStore,
    delay: Duration,
    lookups: AtomicU64,
}

impl RecordStore for SlowStore {
    fn lookup(&self, domain: &str) -> Option<String> {
        self.lookups.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(self.delay);
        self.inner.lookup(domain)
    }
}

fn slow_upstream(delay: Duration, domains: &[String]) -> (WhoisServer, UpstreamConfig) {
    let mut inner = InMemoryStore::new();
    for d in domains {
        inner.insert(
            d,
            format!(
                "Domain Name: {}\nRegistrar: Slowpoke Registrar\n",
                d.to_uppercase()
            ),
        );
    }
    let store = SlowStore {
        inner,
        delay,
        lookups: AtomicU64::new(0),
    };
    let server = WhoisServer::start(store, ServerConfig::default()).unwrap();
    let upstream = UpstreamConfig {
        registry: server.addr(),
        resolver: HashMap::new(),
        client: WhoisClient::default(),
    };
    (server, upstream)
}

#[test]
fn overload_sheds_fast_instead_of_hanging() {
    let domains: Vec<String> = (0..8).map(|i| format!("slow-{i}.com")).collect();
    let (_upstream_server, upstream) = slow_upstream(Duration::from_millis(150), &domains);
    // One worker, two queue slots: at most 3 requests in the system.
    let service = start_service(1, 2, Some(upstream));
    let addr = service.addr();

    let started = Instant::now();
    let handles: Vec<_> = domains
        .iter()
        .cloned()
        .map(|domain| {
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                let line = client
                    .request_line(&format!("FETCH {domain}"))
                    .expect("every client gets a reply, shed or not");
                Reply::decode(&line).unwrap()
            })
        })
        .collect();

    let replies: Vec<Reply> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let elapsed = started.elapsed();

    let ok = replies.iter().filter(|r| r.ok).count();
    let shed = replies.iter().filter(|r| r.shed).count();
    assert_eq!(ok + shed, replies.len(), "every reply is success or shed");
    assert!(ok >= 1, "the admitted requests complete");
    assert!(shed >= 1, "overload must shed, got {ok} ok / {shed} shed");
    // Shed clients were answered immediately; nothing waited for the
    // full serial 8 × 150ms backlog.
    assert!(
        elapsed < Duration::from_millis(8 * 150),
        "clients hung for {elapsed:?}"
    );
    let mut client = ServeClient::connect(addr).unwrap();
    assert_eq!(client.stats().unwrap().sheds, shed as u64);
}

#[test]
fn hot_swap_under_load_loses_no_requests() {
    let dir = std::env::temp_dir().join(format!("whois-serve-swap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let corpus = whois_gen::corpus::generate_corpus(whois_gen::corpus::GenConfig::new(7, 24));
    // Train the replacement model up front so the swap lands while the
    // load threads are still running.
    let fresh_json = train_parser(23, 40).to_json().unwrap();
    let registry = Arc::new(ModelRegistry::new(train_parser(11, 40), "model-0001", 1));
    let watcher = ModelWatcher::start(registry.clone(), &dir, Duration::from_millis(10));
    let service = ParseService::start(
        registry.clone(),
        ServeConfig {
            workers: 2,
            queue_capacity: 256,
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let addr = service.addr();

    // Hammer the service from four connections while the swap lands.
    let requests: Vec<(String, String)> = corpus
        .iter()
        .map(|d| (d.facts.domain.clone(), d.rendered.text()))
        .collect();
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let requests = requests.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                let mut versions = std::collections::BTreeSet::new();
                let deadline = Instant::now() + Duration::from_secs(20);
                let mut round = 0u32;
                // Keep querying until this connection has seen the new
                // model (or the deadline proves the swap never landed).
                while !versions.contains("model-0002") && Instant::now() < deadline {
                    for (domain, text) in &requests {
                        let reply = client
                            .parse(&format!("w{t}-r{round}-{domain}"), text)
                            .expect("no request may fail during a swap");
                        assert!(reply.record.is_some());
                        versions.insert(reply.model.unwrap());
                    }
                    round += 1;
                }
                versions
            })
        })
        .collect();

    // Publish the newly trained model mid-flight: write to a temp name,
    // then rename — the atomic-publish protocol the watcher documents.
    std::thread::sleep(Duration::from_millis(50));
    std::fs::write(dir.join("model-0002.tmp"), fresh_json).unwrap();
    std::fs::rename(dir.join("model-0002.tmp"), dir.join("model-0002.json")).unwrap();

    let mut versions = std::collections::BTreeSet::new();
    for h in handles {
        versions.extend(h.join().unwrap());
    }
    // The swap happened while requests were in flight...
    let deadline = Instant::now() + Duration::from_secs(5);
    while registry.current().version != "model-0002" && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(registry.current().version, "model-0002");
    assert_eq!(registry.swaps(), 1);
    // ...and traffic saw both models with zero failures.
    assert!(
        versions.contains("model-0001"),
        "load should have started on the old model: {versions:?}"
    );
    assert!(
        versions.contains("model-0002"),
        "load outlived the swap but never saw the new model: {versions:?}"
    );

    let mut client = ServeClient::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.sheds, 0);
    assert_eq!(stats.model_version, "model-0002");
    assert_eq!(stats.model_swaps, 1);

    watcher.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_drains_admitted_work() {
    let domains: Vec<String> = (0..4).map(|i| format!("drain-{i}.com")).collect();
    let (mut upstream_server, upstream) = slow_upstream(Duration::from_millis(100), &domains);
    let mut service = start_service(1, 8, Some(upstream));
    let addr = service.addr();

    let handles: Vec<_> = domains
        .iter()
        .cloned()
        .map(|domain| {
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                client.fetch(&domain).expect("admitted work completes")
            })
        })
        .collect();

    // Let the requests reach the queue, then pull the plug.
    std::thread::sleep(Duration::from_millis(150));
    let report = service.shutdown();
    assert!(
        report.drained >= 1,
        "expected a backlog at shutdown, report {report:?}"
    );

    for h in handles {
        let reply = h.join().unwrap();
        assert!(reply.ok && reply.record.is_some());
    }
    // Repeat shutdowns return the original report.
    assert_eq!(service.shutdown(), report);

    // Every upstream WHOIS connection the drain completed was closed
    // cleanly: the whois-net server's own shutdown report shows nothing
    // had to be aborted.
    let upstream_report = upstream_server.shutdown();
    assert_eq!(upstream_report.aborted, 0, "{upstream_report:?}");
}

#[test]
fn health_verb_reports_liveness() {
    let service = start_service(2, 16, None);
    let mut client = ServeClient::connect(service.addr()).unwrap();
    let health = client.health().unwrap();
    assert_eq!(health.workers, 2);
    assert_eq!(health.workers_alive, 2);
    assert_eq!(health.panics, 0);
    assert_eq!(health.quarantine_len, 0);
    assert_eq!(health.model_version, "model-0001");
    assert_eq!(health.model_generation, 1);
    assert!(!health.draining);
    // Uptime is monotone across probes.
    std::thread::sleep(Duration::from_millis(5));
    assert!(client.health().unwrap().uptime_ms >= health.uptime_ms);
}

#[test]
fn rigged_panic_is_contained_quarantined_and_service_keeps_answering() {
    let registry = Arc::new(ModelRegistry::new(train_parser(11, 40), "model-0001", 1));
    let service = ParseService::start(
        registry,
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            panic_trigger: Some("poison.com".into()),
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let mut client = ServeClient::connect(service.addr()).unwrap();
    let poison_body = "Domain Name: POISON.COM\nRegistrar: Bad Actor Inc.\n";

    // The poisoned parse fails as a structured error, not a dead socket.
    let err = client.parse("poison.com", poison_body).unwrap_err();
    match err {
        whois_serve::ClientError::Server { message, shed } => {
            assert!(message.contains("panicked"), "{message}");
            assert!(!shed);
        }
        other => panic!("expected a server error, got {other:?}"),
    }

    // The same worker pool keeps answering: 100+ parses after the panic.
    for i in 0..120 {
        let reply = client
            .parse(
                &format!("after-{i}.com"),
                &format!("Domain Name: AFTER-{i}.COM\nRegistrar: Fine Reg\n"),
            )
            .expect("service survives a contained panic");
        assert!(reply.record.is_some());
    }

    // A repeat of the poison record is refused from quarantine, without
    // re-running (and re-panicking) the parse.
    let err = client.parse("poison.com", poison_body).unwrap_err();
    match err {
        whois_serve::ClientError::Server { message, .. } => {
            assert!(message.contains("quarantined"), "{message}");
        }
        other => panic!("expected a server error, got {other:?}"),
    }

    // HEALTH: all workers alive, one contained panic, one quarantined
    // record.
    let health = client.health().unwrap();
    assert_eq!(health.workers, 2);
    assert_eq!(health.workers_alive, 2, "panic must not kill a worker");
    assert_eq!(health.panics, 1, "quarantine refusals don't re-panic");
    assert_eq!(health.quarantine_len, 1);

    // STATS carries the same story plus the quarantine contents.
    let stats = client.stats().unwrap();
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.quarantine_len, 1);
    assert_eq!(stats.quarantine[0].domain, "poison.com");
    assert_eq!(stats.model_load_failures, 0);
    assert!(stats.errors >= 2);
    // The 120 clean parses all made it into the cache/parse counters.
    assert_eq!(stats.parses, 120);
}

#[test]
fn quarantine_ring_is_bounded() {
    let registry = Arc::new(ModelRegistry::new(train_parser(11, 40), "model-0001", 1));
    // Every domain panics; capacity 4 keeps only the newest 4.
    let service = ParseService::start(
        registry,
        ServeConfig {
            workers: 1,
            queue_capacity: 16,
            quarantine_capacity: 4,
            panic_trigger: Some("all-poison.com".into()),
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let mut client = ServeClient::connect(service.addr()).unwrap();
    for i in 0..10 {
        let _ = client.parse("all-poison.com", &format!("Registrar: R{i}\n"));
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.panics, 10, "each distinct body panics once");
    assert_eq!(stats.quarantine_len, 4, "ring holds only the newest 4");
    let health = client.health().unwrap();
    assert_eq!(health.workers_alive, 1);
}

/// One shared long-lived service for the property test: starting (and
/// training) one per case would dominate the runtime.
fn shared_service_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let service = start_service(2, 64, None);
        let addr = service.addr();
        std::mem::forget(service); // serve until the test process exits
        addr
    })
}

fn shared_client() -> &'static Mutex<ServeClient> {
    static CLIENT: OnceLock<Mutex<ServeClient>> = OnceLock::new();
    CLIENT.get_or_init(|| Mutex::new(ServeClient::connect(shared_service_addr()).unwrap()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For arbitrary bodies (arbitrary-ish text, blank lines, trailing
    /// whitespace), the cached reply is byte-identical to the uncached
    /// one that populated it.
    #[test]
    fn cached_replies_are_byte_identical(
        domain in "[a-z]{1,12}\\.(com|net|org)",
        lines in proptest::collection::vec("[ -~]{0,40}", 1..12),
        crlf in 0u8..2,
    ) {
        let sep = if crlf == 1 { "\r\n" } else { "\n" };
        let body = lines.join(sep);
        let request = whois_serve::Request::Parse(whois_serve::ParseRequest {
            domain: domain.clone(),
            text: body,
        });
        let mut client = shared_client().lock().unwrap();
        let first = client.request_line(&request.encode()).unwrap();
        let second = client.request_line(&request.encode()).unwrap();
        prop_assert_eq!(&first, &second);
        let reply = Reply::decode(&first).unwrap();
        prop_assert!(reply.ok);
        prop_assert_eq!(reply.record.unwrap().domain, domain.to_lowercase());
    }
}
