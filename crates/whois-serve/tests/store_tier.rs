//! Disk-tier integration tests: with a corpus larger than the hot
//! tier, the store-backed service answers byte-identically to a
//! store-less one; a restarted daemon reopens the segments and serves
//! its first epoch at warm-cache hit rates; a model swap fences stored
//! parses while raw records survive.

use std::sync::Arc;
use std::time::Duration;
use whois_model::{BlockLabel, RegistrantLabel};
use whois_parser::{ParserConfig, TrainExample, WhoisParser};
use whois_serve::{ModelRegistry, ParseService, ServeClient, ServeConfig, StoreTierConfig};

fn train_parser(seed: u64, docs: usize) -> WhoisParser {
    let corpus = whois_gen::corpus::generate_corpus(whois_gen::corpus::GenConfig::new(seed, docs));
    let first: Vec<TrainExample<BlockLabel>> = corpus
        .iter()
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect();
    let second: Vec<TrainExample<RegistrantLabel>> = corpus
        .iter()
        .filter_map(|d| {
            let reg = d.registrant_labels();
            (!reg.is_empty()).then(|| TrainExample {
                text: reg.texts().join("\n"),
                labels: reg.labels(),
            })
        })
        .collect();
    WhoisParser::train(&first, &second, &ParserConfig::default())
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("whois-store-tier-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Service with a deliberately tiny hot tier (forces evictions) and an
/// optional disk tier under it.
fn start_service(store_dir: Option<&std::path::Path>, cache_capacity: usize) -> ParseService {
    let registry = Arc::new(ModelRegistry::new(train_parser(11, 40), "model-0001", 1));
    ParseService::start(
        registry,
        ServeConfig {
            workers: 2,
            queue_capacity: 256,
            cache_capacity,
            store: store_dir.map(|dir| StoreTierConfig {
                // Long interval: tests drive compaction implicitly via
                // shutdown, never mid-assertion.
                compact_interval: Duration::from_secs(3600),
                ..StoreTierConfig::new(dir)
            }),
            ..Default::default()
        },
        0,
    )
    .unwrap()
}

fn corpus_requests(seed: u64, docs: usize) -> Vec<(String, String)> {
    whois_gen::corpus::generate_corpus(whois_gen::corpus::GenConfig::new(seed, docs))
        .iter()
        .map(|d| (d.facts.domain.clone(), d.rendered.text()))
        .collect()
}

/// Drive every request once, returning the raw reply lines.
fn sweep(client: &mut ServeClient, requests: &[(String, String)]) -> Vec<String> {
    requests
        .iter()
        .map(|(domain, text)| {
            let req = whois_serve::Request::Parse(whois_serve::ParseRequest {
                domain: domain.clone(),
                text: text.clone(),
            });
            client.request_line(&req.encode()).unwrap()
        })
        .collect()
}

/// With a corpus well past the hot-tier capacity, a store-backed
/// service and a store-less one must answer every request — first
/// sight, RAM hit, and disk hit alike — byte-identically.
#[test]
fn store_backed_replies_are_byte_identical_to_storeless() {
    let dir = tmp_dir("differential");
    let requests = corpus_requests(42, 48);
    // Hot tier holds ~1/3 of the corpus: pass 1 evicts (and spills),
    // pass 2 exercises the disk-fill path on the store-backed side.
    let mut plain = start_service(None, 16);
    let mut tiered = start_service(Some(&dir), 16);
    let mut plain_client = ServeClient::connect(plain.addr()).unwrap();
    let mut tiered_client = ServeClient::connect(tiered.addr()).unwrap();

    for pass in 0..2 {
        let plain_lines = sweep(&mut plain_client, &requests);
        let tiered_lines = sweep(&mut tiered_client, &requests);
        for (i, (p, t)) in plain_lines.iter().zip(&tiered_lines).enumerate() {
            assert_eq!(p, t, "pass {pass}, request {i}: replies diverged");
        }
    }

    let stats = tiered_client.stats().unwrap();
    assert!(stats.store.enabled);
    assert!(
        stats.store.spills > 0,
        "a corpus past the hot-tier cap must spill evictions: {stats:?}"
    );
    assert!(
        stats.store.disk_hits > 0,
        "pass 2 must fill some RAM misses from disk: {stats:?}"
    );
    let plain_stats = plain_client.stats().unwrap();
    assert!(!plain_stats.store.enabled);
    assert_eq!(plain_stats.store.spills, 0);

    plain.shutdown();
    tiered.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill the service partway through a run, restart it over the same
/// store directory, and replay: the first post-restart epoch must hit
/// (RAM or disk, no re-parse) at ≥ 90% of the pre-restart steady-state
/// rate, even though the RAM cache starts empty.
#[test]
fn restart_over_store_serves_first_epoch_warm() {
    let dir = tmp_dir("warm-restart");
    let requests = corpus_requests(7, 40);

    // Run to steady state: pass 1 populates, pass 2 measures.
    let steady_rate;
    {
        let mut service = start_service(Some(&dir), 16);
        let mut client = ServeClient::connect(service.addr()).unwrap();
        sweep(&mut client, &requests);
        let before = client.stats().unwrap();
        sweep(&mut client, &requests);
        let after = client.stats().unwrap();
        let pass2_requests = (after.requests - before.requests) as f64;
        let pass2_parses = (after.parses - before.parses) as f64;
        steady_rate = 1.0 - pass2_parses / pass2_requests;
        // Graceful shutdown drains the hot tier into the store — this,
        // plus the spills that already happened, is the warm state.
        service.shutdown();
    }

    let mut service = start_service(Some(&dir), 16);
    let mut client = ServeClient::connect(service.addr()).unwrap();
    let restart_stats = service.stats();
    assert!(
        restart_stats.store.parsed_entries > 0,
        "restart must reopen a populated store: {restart_stats:?}"
    );

    sweep(&mut client, &requests);
    let first_epoch = client.stats().unwrap();
    let first_rate = 1.0 - first_epoch.parses as f64 / first_epoch.requests as f64;
    assert!(
        first_rate >= 0.9 * steady_rate,
        "first post-restart epoch hit rate {first_rate:.3} fell below \
         90% of pre-restart steady state {steady_rate:.3}"
    );
    assert!(
        first_epoch.store.disk_hits > 0,
        "warm restart must be fed from disk: {first_epoch:?}"
    );

    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A model swap must fence every stored parse (no stale replies from
/// disk) while the store itself — and its raw records — survive.
#[test]
fn model_swap_invalidates_stored_parses_and_keeps_raw_records() {
    let dir = tmp_dir("model-swap");
    let requests = corpus_requests(23, 24);

    let mut service = start_service(Some(&dir), 8);
    let mut client = ServeClient::connect(service.addr()).unwrap();
    sweep(&mut client, &requests);
    let store = service.store().unwrap().clone();
    store
        .put_raw("survivor.com", "Domain Name: SURVIVOR.COM\n")
        .unwrap();
    let generation_before = store.generation();
    let parsed_before = store.stats().parsed_entries;
    assert!(parsed_before > 0, "sweep past the cap must spill parses");

    // Hot-swap a different model: the install hook must bump the
    // store's persistent generation, orphaning every parsed entry.
    service
        .registry()
        .install(train_parser(29, 40), "model-0002");
    assert_eq!(store.generation(), generation_before + 1);
    let stats = service.stats();
    assert_eq!(
        stats.store.parsed_entries, 0,
        "stored parses must be fenced at swap: {stats:?}"
    );
    assert_eq!(
        store.get_raw("survivor.com").as_deref(),
        Some("Domain Name: SURVIVOR.COM\n"),
        "raw records are model-independent and must survive the swap"
    );

    // Replies after the swap come from the new model (fresh parses),
    // and re-sweeping repopulates the disk tier under the new fence.
    let disk_hits_before = service.stats().store.disk_hits;
    sweep(&mut client, &requests);
    let after = service.stats();
    assert_eq!(
        after.store.disk_hits, disk_hits_before,
        "no post-swap reply may be served from pre-swap parses"
    );
    service.shutdown();
    // Release the single-writer lock (held via the service's store
    // Arc and our clone of it) before reopening for maintenance.
    drop(service);
    drop(store);

    // An inspection-only open sees the store without locking it, then
    // compaction — a writable open under the manifest's own model
    // version — reclaims the orphaned pre-swap parses (dead weight)
    // while preserving every live entry, including the raw tier.
    let inspected = whois_store::RecordStore::open_readonly(&dir).unwrap();
    let live_parsed = inspected.stats().parsed_entries;
    drop(inspected);
    let reopened = whois_store::RecordStore::open_existing(&dir, 0, true).unwrap();
    reopened.compact().unwrap();
    let final_stats = reopened.stats();
    assert_eq!(
        final_stats.parsed_entries, live_parsed,
        "compaction must keep exactly the live (new-generation) parses"
    );
    assert_eq!(final_stats.dead_bytes, 0);
    assert!(final_stats.raw_entries >= 1);
    assert!(reopened.get_raw("survivor.com").is_some());

    let _ = std::fs::remove_dir_all(&dir);
}
