//! Differential tests: the event-loop serving core against the
//! blocking thread-per-connection oracle.
//!
//! Identical traffic is driven at one service per mode (same model,
//! same seed, shared upstream) and the replies must be byte-identical —
//! including under fragmented and pipelined delivery, cache hits,
//! admission sheds, per-IP connection caps, idle-deadline closes, and
//! drain-on-shutdown.

use proptest::prelude::*;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use whois_model::{BlockLabel, RegistrantLabel};
use whois_net::store::RecordStore;
use whois_net::{InMemoryStore, ServerConfig, ServingMode, WhoisClient, WhoisServer};
use whois_parser::{ParserConfig, TrainExample, WhoisParser};
use whois_serve::{
    ConnectionGauges, ModelRegistry, ParseService, Reply, ServeConfig, UpstreamConfig,
};

const MODES: [ServingMode; 2] = [ServingMode::EventLoop, ServingMode::Blocking];

fn train_parser(seed: u64, docs: usize) -> WhoisParser {
    let corpus = whois_gen::corpus::generate_corpus(whois_gen::corpus::GenConfig::new(seed, docs));
    let first: Vec<TrainExample<BlockLabel>> = corpus
        .iter()
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect();
    let second: Vec<TrainExample<RegistrantLabel>> = corpus
        .iter()
        .filter_map(|d| {
            let reg = d.registrant_labels();
            (!reg.is_empty()).then(|| TrainExample {
                text: reg.texts().join("\n"),
                labels: reg.labels(),
            })
        })
        .collect();
    WhoisParser::train(&first, &second, &ParserConfig::default())
}

fn start_mode(mode: ServingMode, cfg: ServeConfig) -> ParseService {
    let registry = Arc::new(ModelRegistry::new(train_parser(11, 40), "model-0001", 1));
    ParseService::start(registry, ServeConfig { mode, ..cfg }, 0).unwrap()
}

/// Send `payload` split at the given chunk sizes (remainder last), then
/// read `replies` newline-terminated reply lines.
fn raw_exchange(addr: SocketAddr, payload: &[u8], splits: &[usize], replies: usize) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let mut sent = 0;
    for &n in splits {
        let end = (sent + n.max(1)).min(payload.len());
        if end > sent {
            stream.write_all(&payload[sent..end]).unwrap();
            sent = end;
            // Give the fragment time to arrive as its own segment.
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    if sent < payload.len() {
        stream.write_all(&payload[sent..]).unwrap();
    }
    let mut reader = BufReader::new(stream);
    (0..replies)
        .map(|_| {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read reply line");
            line
        })
        .collect()
}

fn parse_line(domain: &str, text: &str) -> String {
    whois_serve::Request::Parse(whois_serve::ParseRequest {
        domain: domain.into(),
        text: text.into(),
    })
    .encode()
}

/// A registry store whose lookups take a while — stands in for a slow
/// upstream WHOIS server so work is still queued when shutdown lands.
struct SlowStore {
    inner: InMemoryStore,
    delay: Duration,
}

impl RecordStore for SlowStore {
    fn lookup(&self, domain: &str) -> Option<String> {
        std::thread::sleep(self.delay);
        self.inner.lookup(domain)
    }
}

fn upstream_with_delay(domains: &[&str], delay: Duration) -> (WhoisServer, UpstreamConfig) {
    let mut inner = InMemoryStore::new();
    for d in domains {
        inner.insert(
            d,
            format!(
                "Domain Name: {}\nRegistrar: Shared Upstream Reg\n",
                d.to_uppercase()
            ),
        );
    }
    let server = WhoisServer::start(SlowStore { inner, delay }, ServerConfig::default()).unwrap();
    let cfg = UpstreamConfig {
        registry: server.addr(),
        resolver: HashMap::new(),
        client: WhoisClient::default(),
    };
    (server, cfg)
}

fn upstream(domains: &[&str]) -> (WhoisServer, UpstreamConfig) {
    upstream_with_delay(domains, Duration::ZERO)
}

#[test]
fn parse_and_fetch_replies_are_byte_identical_across_modes() {
    let corpus = whois_gen::corpus::generate_corpus(whois_gen::corpus::GenConfig::new(42, 12));
    let (_up, up_cfg) = upstream(&["wired.com", "tycho.net"]);
    let event = start_mode(
        ServingMode::EventLoop,
        ServeConfig {
            workers: 2,
            upstream: Some(up_cfg.clone()),
            ..Default::default()
        },
    );
    let blocking = start_mode(
        ServingMode::Blocking,
        ServeConfig {
            workers: 2,
            upstream: Some(up_cfg),
            ..Default::default()
        },
    );

    // PARSE: uncached pass, then the cached pass — all byte-identical.
    for pass in 0..2 {
        for d in &corpus {
            let req = format!("{}\n", parse_line(&d.facts.domain, &d.rendered.text()));
            let ev = raw_exchange(event.addr(), req.as_bytes(), &[], 1);
            let bl = raw_exchange(blocking.addr(), req.as_bytes(), &[], 1);
            assert_eq!(ev, bl, "pass {pass}: PARSE {} diverged", d.facts.domain);
        }
    }
    // FETCH through the shared upstream.
    for domain in ["wired.com", "tycho.net", "missing.org"] {
        let req = format!("FETCH {domain}\n");
        let ev = raw_exchange(event.addr(), req.as_bytes(), &[], 1);
        let bl = raw_exchange(blocking.addr(), req.as_bytes(), &[], 1);
        assert_eq!(ev, bl, "FETCH {domain} diverged");
    }
    // Identical traffic left identical counters behind.
    let (es, bs) = (event.stats(), blocking.stats());
    assert_eq!(es.requests, bs.requests);
    assert_eq!(es.cache_hits, bs.cache_hits);
    assert_eq!(es.cache_misses, bs.cache_misses);
    assert_eq!(es.parses, bs.parses);
    assert_eq!(es.errors, bs.errors);
}

#[test]
fn stats_and_health_decode_identically_modulo_volatile_fields() {
    let event = start_mode(ServingMode::EventLoop, ServeConfig::default());
    let blocking = start_mode(ServingMode::Blocking, ServeConfig::default());
    let body = "Domain Name: SAME.COM\nRegistrar: Same Reg\n";
    for svc in [&event, &blocking] {
        let req = format!("{}\n", parse_line("same.com", body));
        raw_exchange(svc.addr(), req.as_bytes(), &[], 1);
    }

    let normalize_stats = |line: &str| {
        let mut s = Reply::decode(line.trim_end()).unwrap().stats.unwrap();
        // Wall-clock stages, gauges, and hit-rate float noise are
        // volatile across runs; everything else must match exactly.
        s.queue_wait = Default::default();
        s.cache_lookup = Default::default();
        s.parse = Default::default();
        s.serialize = Default::default();
        s.fetch = Default::default();
        s.connections = ConnectionGauges::default();
        s
    };
    let ev = normalize_stats(&raw_exchange(event.addr(), b"STATS\n", &[], 1)[0]);
    let bl = normalize_stats(&raw_exchange(blocking.addr(), b"STATS\n", &[], 1)[0]);
    assert_eq!(ev, bl, "decoded STATS diverged");

    let normalize_health = |line: &str| {
        let mut h = Reply::decode(line.trim_end()).unwrap().health.unwrap();
        h.uptime_ms = 0;
        h.connections = ConnectionGauges::default();
        h
    };
    let ev = normalize_health(&raw_exchange(event.addr(), b"HEALTH\n", &[], 1)[0]);
    let bl = normalize_health(&raw_exchange(blocking.addr(), b"HEALTH\n", &[], 1)[0]);
    assert_eq!(ev, bl, "decoded HEALTH diverged");
}

#[test]
fn pipelined_requests_reply_in_order_identically() {
    let event = start_mode(ServingMode::EventLoop, ServeConfig::default());
    let blocking = start_mode(ServingMode::Blocking, ServeConfig::default());
    // Three requests in one write: two PARSEs (the second a cache hit of
    // the first) and a STATS — replies must come back in request order.
    let body = "Domain Name: PIPE.COM\nRegistrar: Pipeline Reg\n";
    let payload = format!(
        "{}\n{}\nHEALTH\n",
        parse_line("pipe.com", body),
        parse_line("pipe.com", body),
    );
    let ev = raw_exchange(event.addr(), payload.as_bytes(), &[], 3);
    let bl = raw_exchange(blocking.addr(), payload.as_bytes(), &[], 3);
    assert_eq!(ev[0], ev[1], "second parse is a byte-identical cache hit");
    assert_eq!(ev[0], bl[0]);
    assert_eq!(ev[1], bl[1]);
    // Replies landed in request order: the last is the HEALTH payload.
    for lines in [&ev, &bl] {
        assert!(
            Reply::decode(lines[2].trim_end()).unwrap().health.is_some(),
            "third reply is the HEALTH probe: {}",
            lines[2]
        );
    }
}

#[test]
fn overload_shed_replies_are_byte_identical() {
    // One worker + a slow upstream wedge the queue; the overflow reply
    // must be the same bytes in both modes.
    let mut shed_lines = Vec::new();
    for mode in MODES {
        let (_up, up_cfg) = upstream(&["wedge.com"]);
        let svc = start_mode(
            mode,
            ServeConfig {
                workers: 1,
                queue_capacity: 1,
                upstream: Some(up_cfg),
                ..Default::default()
            },
        );
        let addr = svc.addr();
        // Saturate worker + queue, then fire more FETCHes until one is
        // shed (cache misses keyed by domain keep each fetch slow).
        let handles: Vec<_> = (0..6)
            .map(|i| {
                std::thread::spawn(move || {
                    let req = format!("FETCH wedge-{i}.com\n");
                    raw_exchange(addr, req.as_bytes(), &[], 1).remove(0)
                })
            })
            .collect();
        let mut sheds: Vec<String> = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|line| Reply::decode(line.trim_end()).unwrap().shed)
            .collect();
        assert!(!sheds.is_empty(), "{mode:?}: expected at least one shed");
        sheds.dedup();
        assert_eq!(sheds.len(), 1, "{mode:?}: one distinct shed reply");
        shed_lines.push(sheds.remove(0));
    }
    assert_eq!(shed_lines[0], shed_lines[1], "shed replies diverged");
}

#[test]
fn idle_connections_are_closed_with_identical_replies() {
    let mut closes = Vec::new();
    for mode in MODES {
        let svc = start_mode(
            mode,
            ServeConfig {
                read_timeout: Duration::from_millis(200),
                ..Default::default()
            },
        );
        // Dribble half a request and stop: the slowloris guard must
        // reply and close within the deadline (not hang a thread).
        let mut stream = TcpStream::connect(svc.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(b"PARSE {\"incompl").unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        let decoded = Reply::decode(reply.trim_end()).unwrap();
        assert!(!decoded.ok && decoded.shed, "{mode:?}: {reply}");
        assert_eq!(svc.stats().connections.idle_closed, 1, "{mode:?}");
        closes.push(reply);
    }
    assert_eq!(closes[0], closes[1], "idle-close replies diverged");
}

#[test]
fn per_ip_connection_cap_refuses_identically() {
    let mut refusals = Vec::new();
    for mode in MODES {
        let svc = start_mode(
            mode,
            ServeConfig {
                max_conns_per_ip: Some(1),
                ..Default::default()
            },
        );
        // First connection holds the sole slot for 127.0.0.1...
        let held = TcpStream::connect(svc.addr()).unwrap();
        // (wait until the server has actually accepted + registered it)
        let deadline = Instant::now() + Duration::from_secs(5);
        while svc.stats().connections.open < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        // ...so the second is refused at accept with a shed-style reply.
        let mut refused = TcpStream::connect(svc.addr()).unwrap();
        refused
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reply = String::new();
        refused.read_to_string(&mut reply).unwrap();
        let decoded = Reply::decode(reply.trim_end()).unwrap();
        assert!(!decoded.ok && decoded.shed, "{mode:?}: {reply}");
        // Releasing the held slot re-admits new connections.
        drop(held);
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut admitted = false;
        while !admitted && Instant::now() < deadline {
            let got = raw_exchange(svc.addr(), b"HEALTH\n", &[], 1);
            admitted = Reply::decode(got[0].trim_end())
                .map(|r| r.health.is_some())
                .unwrap_or(false);
            if !admitted {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        assert!(admitted, "{mode:?}: slot not released after close");
        refusals.push(reply);
    }
    assert_eq!(refusals[0], refusals[1], "cap refusals diverged");
}

#[test]
fn drain_on_shutdown_completes_admitted_work_in_both_modes() {
    for mode in MODES {
        let domains: Vec<String> = (0..4).map(|i| format!("drain-{i}.com")).collect();
        let (_up, up_cfg) = upstream_with_delay(
            &["drain-0.com", "drain-1.com", "drain-2.com", "drain-3.com"],
            Duration::from_millis(100),
        );
        let mut svc = start_mode(
            mode,
            ServeConfig {
                workers: 1,
                queue_capacity: 8,
                upstream: Some(up_cfg),
                ..Default::default()
            },
        );
        let addr = svc.addr();
        let handles: Vec<_> = domains
            .into_iter()
            .map(|domain| {
                std::thread::spawn(move || {
                    let req = format!("FETCH {domain}\n");
                    raw_exchange(addr, req.as_bytes(), &[], 1).remove(0)
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(100));
        let report = svc.shutdown();
        for h in handles {
            let line = h.join().unwrap();
            let reply = Reply::decode(line.trim_end()).unwrap();
            // Admitted work completes; anything newer is an explicit
            // drain shed — never a dead socket.
            assert!(reply.ok || reply.shed, "{mode:?}: {line}");
        }
        assert!(
            report.drained > 0 || report.shed > 0,
            "{mode:?}: shutdown saw no traffic at all: {report:?}"
        );
    }
}

#[test]
fn event_loop_gauges_track_open_connections() {
    let svc = start_mode(ServingMode::EventLoop, ServeConfig::default());
    let c1 = TcpStream::connect(svc.addr()).unwrap();
    let c2 = TcpStream::connect(svc.addr()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut gauges = svc.stats().connections;
    while (gauges.open < 2 || gauges.reading < 2) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
        gauges = svc.stats().connections;
    }
    assert_eq!(gauges.open, 2, "{gauges:?}");
    assert_eq!(gauges.reading, 2, "{gauges:?}");
    assert_eq!(gauges.queued, 0, "{gauges:?}");
    drop(c1);
    drop(c2);
    let deadline = Instant::now() + Duration::from_secs(5);
    while svc.stats().connections.open > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(svc.stats().connections.open, 0, "gauges settle on close");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any fragmentation of a pipelined two-request payload produces
    /// the same replies as whole delivery, on both serving cores.
    #[test]
    fn fragmented_pipelined_delivery_is_byte_identical(
        splits in proptest::collection::vec(1usize..16, 0..4),
        crlf in 0u8..2,
    ) {
        let sep = if crlf == 1 { "\r\n" } else { "\n" };
        let body = "Domain Name: FRAG.COM\nRegistrar: Fragment Reg\n";
        let payload = format!(
            "{}{sep}HEALTH{sep}",
            parse_line("frag.com", body),
        ).into_bytes();

        let event = start_mode(ServingMode::EventLoop, ServeConfig::default());
        let blocking = start_mode(ServingMode::Blocking, ServeConfig::default());

        let whole_ev = raw_exchange(event.addr(), &payload, &[], 2);
        let frag_ev = raw_exchange(event.addr(), &payload, &splits, 2);
        let whole_bl = raw_exchange(blocking.addr(), &payload, &[], 2);
        let frag_bl = raw_exchange(blocking.addr(), &payload, &splits, 2);

        // The PARSE reply is deterministic: byte-identical across
        // fragmentations and across modes.
        prop_assert_eq!(&whole_ev[0], &frag_ev[0], "event loop: fragmentation changed the reply");
        prop_assert_eq!(&whole_bl[0], &frag_bl[0], "blocking: fragmentation changed the reply");
        prop_assert_eq!(&whole_ev[0], &whole_bl[0], "parse replies diverged");
        // The HEALTH reply carries wall-clock fields; it must decode to
        // an equivalent snapshot in every delivery.
        let health = |line: &String| {
            let mut h = Reply::decode(line.trim_end()).unwrap().health.unwrap();
            h.uptime_ms = 0;
            h.connections = ConnectionGauges::default();
            h
        };
        prop_assert_eq!(health(&whole_ev[1]), health(&frag_ev[1]));
        prop_assert_eq!(health(&whole_bl[1]), health(&frag_bl[1]));
        prop_assert_eq!(health(&whole_ev[1]), health(&whole_bl[1]));
    }
}
