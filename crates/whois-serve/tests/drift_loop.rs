//! The closed-loop continual-learning suite: crash-safe retrain queue,
//! the golden-set deployment gate, post-swap rollback, and a scaled
//! version of the drift-ramp recovery harness (the full-size run lives
//! in `whois-bench/benches/drift_loop.rs`).

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use whois_gen::corpus::{generate_corpus, DriftRamp, GenConfig};
use whois_model::{BlockLabel, Label, RegistrantLabel};
use whois_parser::{ParserConfig, TrainExample, WhoisParser};
use whois_serve::{
    ModelRegistry, ParseService, RetrainConfig, RetrainOutcome, RetrainQueue, ServeClient,
    ServeConfig,
};
use whois_templates::TemplateParser;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "whois-drift-loop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn first_level(corpus: &[whois_gen::corpus::GeneratedDomain]) -> Vec<TrainExample<BlockLabel>> {
    corpus
        .iter()
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect()
}

fn train_parser(seed: u64, docs: usize) -> WhoisParser {
    let corpus = generate_corpus(GenConfig::new(seed, docs));
    let first = first_level(&corpus);
    let second: Vec<TrainExample<RegistrantLabel>> = corpus
        .iter()
        .filter_map(|d| {
            let reg = d.registrant_labels();
            (!reg.is_empty()).then(|| TrainExample {
                text: reg.texts().join("\n"),
                labels: reg.labels(),
            })
        })
        .collect();
    WhoisParser::train(&first, &second, &ParserConfig::default())
}

/// Per-registrar templates learned from a clean corpus — the §2.3
/// baseline the labeling stage cross-checks the rule labeler against.
fn templates_from(corpus: &[whois_gen::corpus::GeneratedDomain]) -> TemplateParser {
    let mut templates = TemplateParser::new();
    for d in corpus {
        let text = d.rendered.text();
        let lines: Vec<&str> = whois_model::non_empty_lines(&text);
        templates.add_example(d.registrar.name, &lines, &d.block_labels().labels());
    }
    templates
}

// ---------------------------------------------------------------------
// Crash-safe queue: kill/reopen keeps exactly the acknowledged prefix.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of pushes and acks (each step pushes then acks
    /// an arbitrary amount), "killed" (dropped without any shutdown
    /// step) at an arbitrary point and reopened, yields exactly the
    /// unacknowledged suffix — acked records never reappear,
    /// fully-pushed unacked records never vanish.
    #[test]
    fn queue_reopen_preserves_exactly_the_acked_prefix(
        steps in proptest::collection::vec((0usize..5, 0usize..7), 1..16),
    ) {
        let dir = tmp_dir("prop");
        let mut pushed = 0usize;
        let mut acked = 0usize;
        {
            let q = RetrainQueue::open(&dir, 10_000).unwrap();
            for (push_n, ack_n) in steps {
                for _ in 0..push_n {
                    prop_assert!(q.push(
                        &format!("d{pushed}.com"),
                        &format!("Domain Name: D{pushed}.COM\n"),
                    ));
                    pushed += 1;
                }
                let n = ack_n.min(pushed - acked);
                q.ack(n);
                acked += n;
            }
        } // kill: no flush, no close protocol

        let q = RetrainQueue::open(&dir, 10_000).unwrap();
        let survivors: Vec<String> = q.take(usize::MAX).into_iter().map(|r| r.domain).collect();
        let expect: Vec<String> = (acked..pushed).map(|i| format!("d{i}.com")).collect();
        prop_assert_eq!(survivors, expect);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------
// The deployment gate and post-swap rollback.
// ---------------------------------------------------------------------

fn retrain_config(dir: PathBuf, golden: Vec<TrainExample<BlockLabel>>) -> RetrainConfig {
    RetrainConfig {
        window: 16,
        low_confidence: 0.8,
        drift_fraction: 0.5,
        rollback_mean: 0.4,
        probation: 64,
        min_batch: 8,
        max_batch: 96,
        // The tests drive ticks by hand; park the background thread.
        interval: Duration::from_secs(3600),
        golden_first: golden,
        ..RetrainConfig::new(dir)
    }
}

#[test]
fn gate_rejects_and_quarantines_a_worse_candidate() {
    let dir = tmp_dir("gate");
    let golden = first_level(&generate_corpus(GenConfig::new(91, 30)));
    let registry = Arc::new(ModelRegistry::new(train_parser(90, 60), "model-0001", 1));
    let service = ParseService::start(
        registry.clone(),
        ServeConfig {
            workers: 1,
            retrain: Some(retrain_config(dir.clone(), golden.clone())),
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let retrainer = service.retrainer().expect("loop configured").clone();

    // Poison a candidate: refit the incumbent on the golden set with
    // every label forced to Null. Whatever the optimizer makes of that,
    // it scores worse than the incumbent on the same golden set.
    let poisoned_examples: Vec<TrainExample<BlockLabel>> = golden
        .iter()
        .map(|ex| TrainExample {
            text: ex.text.clone(),
            labels: vec![BlockLabel::Null; ex.labels.len()],
        })
        .collect();
    let mut poisoned = registry.current().engine.parser().clone();
    poisoned.retrain_first_level(&poisoned_examples, &ParserConfig::default());

    let before = registry.current();
    assert_eq!(
        retrainer.consider(poisoned),
        RetrainOutcome::Rejected,
        "a worse-than-incumbent candidate must not deploy"
    );
    let after = registry.current();
    assert_eq!(after.version, before.version, "incumbent keeps serving");
    assert_eq!(after.generation, before.generation);
    assert_eq!(registry.swaps(), 0, "no swap happened");

    let snap = retrainer.hub().snapshot();
    assert_eq!(snap.rejected, 1);
    assert_eq!(snap.deployed, 0);
    assert!(
        snap.candidate_accuracy < snap.incumbent_accuracy,
        "gate saw candidate {} vs incumbent {}",
        snap.candidate_accuracy,
        snap.incumbent_accuracy
    );
    assert!(
        snap.last_outcome.starts_with("rejected"),
        "{}",
        snap.last_outcome
    );

    // The rejected candidate is quarantined on disk for post-mortem.
    let quarantined: Vec<_> = std::fs::read_dir(dir.join("quarantine"))
        .unwrap()
        .filter_map(|e| e.ok())
        .collect();
    assert_eq!(quarantined.len(), 1, "candidate JSON lands in quarantine");

    // An equal-or-better candidate (the incumbent itself) passes.
    let clone = registry.current().engine.parser().clone();
    assert!(matches!(
        retrainer.consider(clone),
        RetrainOutcome::Deployed(_)
    ));
    assert_eq!(registry.swaps(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn post_swap_confidence_collapse_rolls_back_to_previous_model() {
    let dir = tmp_dir("rollback");
    let golden = first_level(&generate_corpus(GenConfig::new(96, 30)));
    let registry = Arc::new(ModelRegistry::new(train_parser(95, 60), "model-0001", 1));
    let mut cfg = retrain_config(dir.clone(), golden);
    cfg.gate = false; // let a (secretly bad) candidate through
    let service = ParseService::start(
        registry.clone(),
        ServeConfig {
            workers: 1,
            retrain: Some(cfg),
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let retrainer = service.retrainer().expect("loop configured").clone();
    let hub = retrainer.hub().clone();

    let candidate = registry.current().engine.parser().clone();
    let deployed = retrainer.consider(candidate);
    assert!(matches!(deployed, RetrainOutcome::Deployed(_)));
    assert!(hub.snapshot().probation, "fresh deploy is on probation");
    let deployed_version = registry.current().version.clone();
    assert!(deployed_version.contains("+retrain-"), "{deployed_version}");

    // A healthy window during probation does NOT roll back.
    for _ in 0..16 {
        hub.observe_parse("ok.com", "Domain Name: OK.COM\n", 0.95);
    }
    assert_eq!(retrainer.tick(), RetrainOutcome::Skipped);
    assert_eq!(registry.current().version, deployed_version);

    // Confidence collapse during probation: the monitor window fills
    // with near-zero confidences, and the next tick reinstalls the
    // model the deploy replaced.
    for _ in 0..16 {
        hub.observe_parse("bad.com", "???????\n", 0.05);
    }
    assert_eq!(retrainer.tick(), RetrainOutcome::RolledBack);
    let restored = registry.current();
    assert!(
        restored.version.starts_with("model-0001") && restored.version.contains("+rb"),
        "rollback reinstalls the previous model: {}",
        restored.version
    );
    let snap = hub.snapshot();
    assert_eq!(snap.rollbacks, 1);
    assert!(!snap.probation, "rollback ends the probation");
    assert!(
        snap.last_outcome.starts_with("rolled back"),
        "{}",
        snap.last_outcome
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// The scaled closed-loop recovery harness.
// ---------------------------------------------------------------------

/// Field accuracy of served replies against generator ground truth: the
/// fraction of non-empty record lines filed under their true first-level
/// block label.
fn batch_accuracy(
    client: &mut ServeClient,
    batch: &[whois_gen::corpus::GeneratedDomain],
    failures: &mut u64,
) -> f64 {
    let mut lines = 0usize;
    let mut correct = 0usize;
    for d in batch {
        let text = d.rendered.text();
        let reply = match client.parse(&d.facts.domain, &text) {
            Ok(reply) => reply,
            Err(_) => {
                *failures += 1;
                continue;
            }
        };
        let record = match reply.record {
            Some(record) => record,
            None => {
                *failures += 1;
                continue;
            }
        };
        let truth = d.block_labels();
        for (line, label) in truth.texts().iter().zip(truth.labels()) {
            lines += 1;
            if record
                .blocks
                .get(label.name())
                .is_some_and(|bucket| bucket.iter().any(|l| l == line))
            {
                correct += 1;
            }
        }
    }
    correct as f64 / lines.max(1) as f64
}

/// Drive the same drift ramp through a loop-enabled and a loop-disabled
/// service. The enabled loop must detect the sustained low-confidence
/// regime, retrain from queued records, deploy through the gate, and
/// recover to ≥90% of pre-drift accuracy — with zero dropped or failed
/// requests on either service — while the baseline stays degraded.
#[test]
fn closed_loop_recovers_from_schema_drift_while_baseline_stays_degraded() {
    let dir = tmp_dir("loop");
    let base_seed = 0x10_5EED;
    let clean = generate_corpus(GenConfig::new(base_seed, 90));
    let parser = {
        let first = first_level(&clean);
        let second: Vec<TrainExample<RegistrantLabel>> = clean
            .iter()
            .filter_map(|d| {
                let reg = d.registrant_labels();
                (!reg.is_empty()).then(|| TrainExample {
                    text: reg.texts().join("\n"),
                    labels: reg.labels(),
                })
            })
            .collect();
        WhoisParser::train(&first, &second, &ParserConfig::default())
    };
    let golden = first_level(&generate_corpus(GenConfig::new(base_seed + 1, 30)));

    let mut cfg = retrain_config(dir.clone(), golden);
    cfg.window = 24;
    cfg.templates = templates_from(&clean);

    let looped_registry = Arc::new(ModelRegistry::new(parser.clone(), "model-0001", 1));
    let looped = ParseService::start(
        looped_registry.clone(),
        ServeConfig {
            workers: 2,
            retrain: Some(cfg),
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let baseline = ParseService::start(
        Arc::new(ModelRegistry::new(parser, "model-0001", 1)),
        ServeConfig {
            workers: 2,
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let retrainer = looped.retrainer().expect("loop configured").clone();

    let mut looped_client = ServeClient::connect(looped.addr()).unwrap();
    let mut baseline_client = ServeClient::connect(baseline.addr()).unwrap();
    let mut looped_failures = 0u64;
    let mut baseline_failures = 0u64;

    // Traffic: 2 clean batches, then an abrupt ramp to 90% drifted.
    let ramp = DriftRamp::new(2, 1, 0.9);
    let batch_size = 40;
    let traffic = |batch: usize| -> Vec<whois_gen::corpus::GeneratedDomain> {
        generate_corpus(ramp.config_at(base_seed + 100, batch_size, batch))
    };

    // Phase 1 — clean traffic: high accuracy, no drift declared.
    let mut pre_drift = 0.0;
    for batch in 0..2 {
        let docs = traffic(batch);
        pre_drift = batch_accuracy(&mut looped_client, &docs, &mut looped_failures);
        batch_accuracy(&mut baseline_client, &docs, &mut baseline_failures);
        assert_eq!(retrainer.tick(), RetrainOutcome::Skipped);
    }
    assert!(pre_drift > 0.9, "clean traffic parses well: {pre_drift}");
    assert!(!looped.retrain_hub().unwrap().snapshot().drifting);

    // Phase 2 — drifted traffic: confidence sags, the monitor declares
    // drift, the queue fills.
    let mut degraded = 1.0f64;
    for batch in 2..5 {
        let docs = traffic(batch);
        let acc = batch_accuracy(&mut looped_client, &docs, &mut looped_failures);
        degraded = degraded.min(acc);
        batch_accuracy(&mut baseline_client, &docs, &mut baseline_failures);
    }
    let snap = looped.retrain_hub().unwrap().snapshot();
    assert!(
        snap.drifting,
        "sustained low confidence must be declared as drift: {snap:?}"
    );
    assert!(
        snap.queue_len >= 8,
        "low-confidence records queue for retraining: {snap:?}"
    );
    assert!(
        degraded < pre_drift,
        "drift degrades the incumbent: {degraded} vs {pre_drift}"
    );

    // Phase 3 — the loop retrains, gates, and hot-swaps.
    let outcome = retrainer.tick();
    assert!(
        matches!(outcome, RetrainOutcome::Deployed(_)),
        "drift + full queue must produce a gated deploy, got {outcome:?}"
    );
    let snap = looped.retrain_hub().unwrap().snapshot();
    assert_eq!(snap.deployed, 1);
    assert!(snap.labeled > 0, "labelers agreed on queued records");
    assert!(looped_registry.current().version.contains("+retrain-"));

    // Phase 4 — post-swap drifted traffic: the loop-enabled service
    // recovers; the baseline stays degraded.
    let mut recovered = 0.0;
    let mut baseline_after = 0.0;
    for batch in 5..7 {
        let docs = traffic(batch);
        recovered = batch_accuracy(&mut looped_client, &docs, &mut looped_failures);
        baseline_after = batch_accuracy(&mut baseline_client, &docs, &mut baseline_failures);
    }
    assert!(
        recovered >= 0.9 * pre_drift,
        "loop must recover to ≥90% of pre-drift accuracy: \
         recovered {recovered:.4} vs pre-drift {pre_drift:.4}"
    );
    // "Stays degraded" is calibrated against the paper's own robustness
    // claim: a clean-trained CRF degrades *gracefully* under drift (the
    // tier-1 suites pin its line error under 10%), so the baseline loses
    // several points of field accuracy — it does not collapse. Require a
    // sustained loss of at least five points, and the loop to claw back
    // over half of that gap.
    assert!(
        baseline_after <= pre_drift - 0.05,
        "without the loop the baseline stays degraded: \
         {baseline_after:.4} vs pre-drift {pre_drift:.4}"
    );
    assert!(
        recovered >= baseline_after + 0.5 * (pre_drift - baseline_after),
        "the loop must close most of the drift gap: recovered \
         {recovered:.4}, baseline {baseline_after:.4}, pre-drift {pre_drift:.4}"
    );

    // Zero-downtime: every request on both services was answered.
    assert_eq!(looped_failures, 0, "no dropped/failed requests (looped)");
    assert_eq!(
        baseline_failures, 0,
        "no dropped/failed requests (baseline)"
    );
    let stats = looped_client.stats().unwrap();
    assert_eq!(stats.sheds, 0);
    assert!(stats.retrain.enabled);
    assert_eq!(stats.retrain.deployed, 1);

    // The RETRAIN verb surfaces the same state over the wire.
    let status = looped_client.retrain_status().unwrap();
    assert!(status.enabled);
    assert_eq!(status.deployed, 1);
    assert!(
        status.last_outcome.starts_with("deployed"),
        "{}",
        status.last_outcome
    );
    // A loop-less server answers the verb with the disabled default.
    let status = baseline_client.retrain_status().unwrap();
    assert!(!status.enabled);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The queue a killed daemon leaves behind feeds the successor's loop:
/// records queued by process 1 survive into process 2's hub.
#[test]
fn retrain_queue_survives_a_service_restart() {
    let dir = tmp_dir("restart");
    let golden = first_level(&generate_corpus(GenConfig::new(71, 30)));
    let parser = train_parser(70, 60);
    {
        let registry = Arc::new(ModelRegistry::new(parser.clone(), "model-0001", 1));
        let service = ParseService::start(
            registry,
            ServeConfig {
                workers: 1,
                retrain: Some(retrain_config(dir.clone(), golden.clone())),
                ..Default::default()
            },
            0,
        )
        .unwrap();
        let hub = service.retrain_hub().unwrap();
        hub.observe_parse("a.com", "Mystery: A\n", 0.1);
        hub.observe_parse("b.com", "Mystery: B\n", 0.1);
        assert_eq!(hub.queue().len(), 2);
        // Dropped without shutdown having any say over the queue files.
    }
    let registry = Arc::new(ModelRegistry::new(parser, "model-0001", 1));
    let service = ParseService::start(
        registry,
        ServeConfig {
            workers: 1,
            retrain: Some(retrain_config(dir.clone(), golden)),
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let hub = service.retrain_hub().unwrap();
    assert_eq!(hub.queue().len(), 2, "queued records survive the restart");
    let domains: Vec<String> = hub.queue().take(10).into_iter().map(|r| r.domain).collect();
    assert_eq!(domains, vec!["a.com", "b.com"]);
    let _ = std::fs::remove_dir_all(&dir);
}
