//! Serving-level differential under `WHOIS_FORCE_SCALAR=1`: parse
//! replies from a live service whose kernels are pinned to scalar must
//! be byte-identical to the same model compiled at every SIMD level —
//! before and after a hot swap.
//!
//! Own test binary — own process — so the override cannot leak into
//! other suites.

use std::sync::Arc;
use whois_model::{BlockLabel, RawRecord, RegistrantLabel};
use whois_parser::{
    DecodeCounters, DecodeTier, KernelLevel, LineCache, ParseEngine, ParserConfig, TrainExample,
    WhoisParser,
};
use whois_serve::{ModelRegistry, ParseService, ServeClient, ServeConfig};

fn force_scalar() {
    std::env::set_var("WHOIS_FORCE_SCALAR", "1");
    assert_eq!(KernelLevel::active(), KernelLevel::Scalar);
}

fn train_on(seed: u64, count: usize, split: usize) -> (WhoisParser, Vec<RawRecord>) {
    let corpus = whois_gen::corpus::generate_corpus(whois_gen::corpus::GenConfig::new(seed, count));
    let (train, test) = corpus.split_at(split);
    let first: Vec<TrainExample<BlockLabel>> = train
        .iter()
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect();
    let second: Vec<TrainExample<RegistrantLabel>> = train
        .iter()
        .filter_map(|d| {
            let reg = d.registrant_labels();
            (!reg.is_empty()).then(|| TrainExample {
                text: reg.texts().join("\n"),
                labels: reg.labels(),
            })
        })
        .collect();
    let parser = WhoisParser::train(&first, &second, &ParserConfig::default());
    (parser, test.iter().map(|d| d.raw()).collect())
}

/// Reference bytes: the same parser compiled for the fast tier at an
/// explicit SIMD level, line cache off so the kernels always run.
fn simd_reference(parser: &WhoisParser, level: KernelLevel, records: &[RawRecord]) -> Vec<String> {
    let engine = ParseEngine::with_decode_tier(
        parser.clone(),
        1,
        Arc::new(LineCache::disabled()),
        DecodeTier::Fast,
        Arc::new(DecodeCounters::new()),
    )
    .with_kernel_level(level);
    records
        .iter()
        .map(|r| serde_json::to_string(&engine.parse_one(r)).unwrap())
        .collect()
}

#[test]
fn scalar_service_replies_match_every_simd_level_across_a_hot_swap() {
    force_scalar();
    let (parser_v1, records) = train_on(311, 90, 60);
    let (parser_v2, _) = train_on(312, 90, 60);
    let registry = Arc::new(ModelRegistry::new(parser_v1.clone(), "model-0001", 1));
    assert_eq!(registry.kernel_level(), KernelLevel::Scalar);
    let service = ParseService::start(registry.clone(), ServeConfig::default(), 0).unwrap();
    let mut client = ServeClient::connect(service.addr()).unwrap();

    for (version, parser) in [("model-0001", &parser_v1), ("model-0002", &parser_v2)] {
        if version != "model-0001" {
            registry.install(parser.clone(), version);
        }
        let replies: Vec<String> = records
            .iter()
            .map(|r| {
                let reply = client.parse(&r.domain, &r.text).unwrap();
                assert_eq!(reply.model.as_deref(), Some(version));
                serde_json::to_string(&reply.record.expect("reply carries a record")).unwrap()
            })
            .collect();
        for &level in &KernelLevel::ALL {
            assert_eq!(
                replies,
                simd_reference(parser, level, &records),
                "{version} vs level {}",
                level.name()
            );
        }
        // The service reports the forced level over the wire.
        let stats = client.stats().unwrap();
        assert_eq!(stats.decode.kernel, "scalar");
        let health = client.health().unwrap();
        assert_eq!(health.kernel, "scalar");
    }
}
