//! Deterministic generators for registrant entities: people,
//! organizations, postal addresses, phone numbers, e-mail addresses.
//!
//! All sampling is driven by a caller-supplied RNG so corpora are fully
//! reproducible from a seed.

use rand::Rng;

/// A country with the data needed to render realistic contact blocks.
#[derive(Clone, Debug)]
pub struct CountrySpec {
    /// Display name as commonly written in WHOIS records.
    pub name: &'static str,
    /// ISO 3166-1 alpha-2 code.
    pub code: &'static str,
    /// International dialing prefix.
    pub dial: &'static str,
    /// Representative cities with their state/province and a postcode
    /// pattern (`#` = random digit, `A` = random upper-case letter).
    pub cities: &'static [(&'static str, &'static str, &'static str)],
}

/// The countries the generator knows how to render.
///
/// Shares are *not* attached here — see `distributions` — this is purely
/// rendering data.
pub const COUNTRIES: &[CountrySpec] = &[
    CountrySpec {
        name: "United States",
        code: "US",
        dial: "+1",
        cities: &[
            ("San Diego", "CA", "#####"),
            ("New York", "NY", "#####"),
            ("Scottsdale", "AZ", "#####"),
            ("Bellevue", "WA", "#####"),
            ("Austin", "TX", "#####"),
            ("Jacksonville", "FL", "#####"),
            ("Columbus", "OH", "#####"),
            ("Denver", "CO", "#####"),
        ],
    },
    CountrySpec {
        name: "China",
        code: "CN",
        dial: "+86",
        cities: &[
            ("Beijing", "Beijing", "######"),
            ("Hangzhou", "Zhejiang", "######"),
            ("Shanghai", "Shanghai", "######"),
            ("Shenzhen", "Guangdong", "######"),
            ("Chengdu", "Sichuan", "######"),
        ],
    },
    CountrySpec {
        name: "United Kingdom",
        code: "GB",
        dial: "+44",
        cities: &[
            ("London", "England", "A## #AA"),
            ("Manchester", "England", "A## #AA"),
            ("Edinburgh", "Scotland", "A## #AA"),
            ("Cardiff", "Wales", "A## #AA"),
        ],
    },
    CountrySpec {
        name: "Germany",
        code: "DE",
        dial: "+49",
        cities: &[
            ("Berlin", "Berlin", "#####"),
            ("Munich", "Bavaria", "#####"),
            ("Hamburg", "Hamburg", "#####"),
            ("Cologne", "NRW", "#####"),
        ],
    },
    CountrySpec {
        name: "France",
        code: "FR",
        dial: "+33",
        cities: &[
            ("Paris", "Ile-de-France", "#####"),
            ("Lyon", "Rhone", "#####"),
            ("Marseille", "PACA", "#####"),
        ],
    },
    CountrySpec {
        name: "Canada",
        code: "CA",
        dial: "+1",
        cities: &[
            ("Toronto", "ON", "A#A #A#"),
            ("Vancouver", "BC", "A#A #A#"),
            ("Montreal", "QC", "A#A #A#"),
        ],
    },
    CountrySpec {
        name: "Spain",
        code: "ES",
        dial: "+34",
        cities: &[
            ("Madrid", "Madrid", "#####"),
            ("Barcelona", "Catalonia", "#####"),
            ("Valencia", "Valencia", "#####"),
        ],
    },
    CountrySpec {
        name: "Australia",
        code: "AU",
        dial: "+61",
        cities: &[
            ("Sydney", "NSW", "####"),
            ("Melbourne", "VIC", "####"),
            ("Brisbane", "QLD", "####"),
        ],
    },
    CountrySpec {
        name: "Japan",
        code: "JP",
        dial: "+81",
        cities: &[
            ("Tokyo", "Tokyo", "###-####"),
            ("Osaka", "Osaka", "###-####"),
            ("Kyoto", "Kyoto", "###-####"),
        ],
    },
    CountrySpec {
        name: "India",
        code: "IN",
        dial: "+91",
        cities: &[
            ("Mumbai", "Maharashtra", "######"),
            ("Bangalore", "Karnataka", "######"),
            ("New Delhi", "Delhi", "######"),
        ],
    },
    CountrySpec {
        name: "Turkey",
        code: "TR",
        dial: "+90",
        cities: &[
            ("Istanbul", "Istanbul", "#####"),
            ("Ankara", "Ankara", "#####"),
        ],
    },
    CountrySpec {
        name: "Vietnam",
        code: "VN",
        dial: "+84",
        cities: &[
            ("Hanoi", "Hanoi", "######"),
            ("Ho Chi Minh City", "Ho Chi Minh", "######"),
        ],
    },
    CountrySpec {
        name: "Russia",
        code: "RU",
        dial: "+7",
        cities: &[
            ("Moscow", "Moscow", "######"),
            ("Saint Petersburg", "SPB", "######"),
        ],
    },
    CountrySpec {
        name: "Hong Kong",
        code: "HK",
        dial: "+852",
        cities: &[("Hong Kong", "HK", "")],
    },
    CountrySpec {
        name: "Netherlands",
        code: "NL",
        dial: "+31",
        cities: &[
            ("Amsterdam", "NH", "#### AA"),
            ("Rotterdam", "ZH", "#### AA"),
        ],
    },
    CountrySpec {
        name: "Brazil",
        code: "BR",
        dial: "+55",
        cities: &[
            ("Sao Paulo", "SP", "#####-###"),
            ("Rio de Janeiro", "RJ", "#####-###"),
        ],
    },
    CountrySpec {
        name: "Italy",
        code: "IT",
        dial: "+39",
        cities: &[("Rome", "RM", "#####"), ("Milan", "MI", "#####")],
    },
];

/// Look up a country spec by ISO code. Falls back to the US spec for
/// unknown codes so rendering never fails.
pub fn country_by_code(code: &str) -> &'static CountrySpec {
    COUNTRIES
        .iter()
        .find(|c| c.code == code)
        .unwrap_or(&COUNTRIES[0])
}

const FIRST_NAMES: &[&str] = &[
    "James",
    "Mary",
    "Wei",
    "Li",
    "John",
    "Patricia",
    "Robert",
    "Jennifer",
    "Michael",
    "Linda",
    "David",
    "Elizabeth",
    "William",
    "Susan",
    "Richard",
    "Jessica",
    "Joseph",
    "Sarah",
    "Thomas",
    "Karen",
    "Hiroshi",
    "Yuki",
    "Kenji",
    "Akira",
    "Pierre",
    "Marie",
    "Jean",
    "Sophie",
    "Hans",
    "Anna",
    "Klaus",
    "Greta",
    "Carlos",
    "Lucia",
    "Miguel",
    "Elena",
    "Raj",
    "Priya",
    "Arjun",
    "Ananya",
    "Ahmet",
    "Elif",
    "Ivan",
    "Olga",
    "Nguyen",
    "Linh",
    "Chen",
    "Xia",
    "Oliver",
    "Charlotte",
    "Jack",
    "Amelia",
    "Lucas",
    "Emma",
];

const LAST_NAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Wang",
    "Zhang",
    "Li",
    "Liu",
    "Chen",
    "Yang",
    "Tanaka",
    "Suzuki",
    "Sato",
    "Watanabe",
    "Mueller",
    "Schmidt",
    "Schneider",
    "Fischer",
    "Martin",
    "Bernard",
    "Dubois",
    "Petit",
    "Rodriguez",
    "Martinez",
    "Fernandez",
    "Lopez",
    "Patel",
    "Sharma",
    "Singh",
    "Kumar",
    "Yilmaz",
    "Kaya",
    "Ivanov",
    "Petrov",
    "Tran",
    "Pham",
    "Taylor",
    "Wilson",
    "Clark",
    "Walker",
    "Hall",
    "Young",
    "King",
    "Wright",
    "Scott",
    "Green",
];

const STREET_NAMES: &[&str] = &[
    "Main",
    "Oak",
    "Maple",
    "Cedar",
    "Pine",
    "Elm",
    "Washington",
    "Lake",
    "Hill",
    "Park",
    "River",
    "Spring",
    "Church",
    "Market",
    "Broad",
    "Center",
    "Union",
    "High",
    "School",
    "Gilman",
    "Campus",
    "Harbor",
    "Sunset",
    "Meadow",
    "Forest",
    "Garden",
    "Mill",
    "Bridge",
];

const STREET_SUFFIXES: &[&str] = &[
    "St", "Ave", "Blvd", "Dr", "Ln", "Rd", "Way", "Court", "Street", "Avenue", "Drive", "Road",
];

const ORG_HEADS: &[&str] = &[
    "Pacific",
    "Global",
    "United",
    "Sunrise",
    "Golden",
    "Silver",
    "Blue Sky",
    "Red Rock",
    "Evergreen",
    "Summit",
    "Pioneer",
    "Atlas",
    "Orion",
    "Vertex",
    "Nimbus",
    "Quantum",
    "Stellar",
    "Harbor",
    "Crescent",
    "Phoenix",
    "Cascade",
    "Aurora",
    "Zenith",
    "Delta",
    "Apex",
    "Fusion",
];

const ORG_TAILS: &[&str] = &[
    "Trading Co.",
    "Technologies",
    "Solutions",
    "Consulting",
    "Media Group",
    "Holdings",
    "Industries",
    "Networks",
    "Digital",
    "Studios",
    "Ventures",
    "Enterprises",
    "Labs",
    "Logistics",
    "Services Ltd.",
    "International",
    "Partners",
    "Systems",
    "Software",
    "Design",
];

const EMAIL_PROVIDERS: &[&str] = &[
    "gmail.com",
    "yahoo.com",
    "hotmail.com",
    "outlook.com",
    "163.com",
    "qq.com",
    "mail.ru",
    "web.de",
    "orange.fr",
];

const DOMAIN_WORDS: &[&str] = &[
    "shop", "best", "my", "the", "top", "new", "pro", "web", "net", "online", "store", "blog",
    "tech", "cloud", "data", "smart", "fast", "easy", "go", "get", "buy", "sale", "deal", "home",
    "world", "city", "star", "sun", "moon", "sky", "red", "blue", "green", "gold", "silver",
    "mega", "super", "ultra", "prime", "first", "alpha", "beta", "delta", "omega", "zen", "fox",
    "wolf", "bear", "eagle", "lion", "tiger", "panda", "koi", "sakura", "tokyo", "pari", "berlin",
    "vista", "nova", "luna", "terra", "aqua", "pixel", "byte", "code", "apps", "game", "play",
    "media", "press", "news", "daily", "info", "guide", "wiki", "hub", "spot", "zone", "land",
    "ville", "port", "bay", "creek", "ridge", "peak", "vale", "glen", "ford", "stead",
];

/// A generated person or organization with a full postal identity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entity {
    /// Personal name (`First Last`).
    pub name: String,
    /// Organization name; people registering personally reuse their own
    /// name with some probability, matching real records.
    pub org: Option<String>,
    /// Street address.
    pub street: String,
    /// Optional second street line (suite / unit).
    pub street2: Option<String>,
    /// City.
    pub city: String,
    /// State or province.
    pub state: String,
    /// Postal code rendered from the country's pattern.
    pub postcode: String,
    /// Country display name.
    pub country_name: String,
    /// ISO country code.
    pub country_code: &'static str,
    /// Phone in `+CC.NNNNNNNNNN` WHOIS convention.
    pub phone: String,
    /// Fax, present for a minority of registrants.
    pub fax: Option<String>,
    /// Contact e-mail.
    pub email: String,
}

/// Render a postcode pattern (`#` digit, `A` letter).
pub fn render_postcode<R: Rng + ?Sized>(rng: &mut R, pattern: &str) -> String {
    pattern
        .chars()
        .map(|c| match c {
            '#' => char::from(b'0' + rng.random_range(0..10u8)),
            'A' => char::from(b'A' + rng.random_range(0..26u8)),
            other => other,
        })
        .collect()
}

/// Pick a uniformly random element of a non-empty slice.
pub fn pick<'a, T, R: Rng + ?Sized>(rng: &mut R, items: &'a [T]) -> &'a T {
    &items[rng.random_range(0..items.len())]
}

/// Generate a phone number in the `+CC.NNNNNNNNN` convention used by most
/// registrars.
pub fn gen_phone<R: Rng + ?Sized>(rng: &mut R, dial: &str) -> String {
    let digits: String = (0..10)
        .map(|_| char::from(b'0' + rng.random_range(0..10u8)))
        .collect();
    format!("{}.{}", dial, digits)
}

/// Generate an entity resident in the country with ISO code `country_code`.
pub fn gen_entity<R: Rng + ?Sized>(rng: &mut R, country_code: &str) -> Entity {
    let spec = country_by_code(country_code);
    let first = pick(rng, FIRST_NAMES);
    let last = pick(rng, LAST_NAMES);
    let name = format!("{first} {last}");
    let org = if rng.random_bool(0.45) {
        Some(format!("{} {}", pick(rng, ORG_HEADS), pick(rng, ORG_TAILS)))
    } else if rng.random_bool(0.3) {
        Some(name.clone())
    } else {
        None
    };
    let (city, state, zip_pattern) = *pick(rng, spec.cities);
    let street = format!(
        "{} {} {}",
        rng.random_range(1..9999),
        pick(rng, STREET_NAMES),
        pick(rng, STREET_SUFFIXES)
    );
    let street2 = if rng.random_bool(0.18) {
        Some(format!("Suite {}", rng.random_range(1..999)))
    } else {
        None
    };
    let email_domain = pick(rng, EMAIL_PROVIDERS);
    let email = format!(
        "{}{}{}@{}",
        first.to_lowercase(),
        if rng.random_bool(0.5) { "." } else { "" },
        last.to_lowercase(),
        email_domain
    );
    Entity {
        name,
        org,
        street,
        street2,
        city: city.to_string(),
        state: state.to_string(),
        postcode: render_postcode(rng, zip_pattern),
        country_name: spec.name.to_string(),
        country_code: spec.code,
        phone: gen_phone(rng, spec.dial),
        fax: if rng.random_bool(0.25) {
            Some(gen_phone(rng, spec.dial))
        } else {
            None
        },
        email,
    }
}

/// Generate a plausible second-level domain name under `tld`.
pub fn gen_domain_name<R: Rng + ?Sized>(rng: &mut R, tld: &str) -> String {
    let parts = rng.random_range(2..=3);
    let mut s = String::new();
    for _ in 0..parts {
        s.push_str(*pick(rng, DOMAIN_WORDS));
    }
    if rng.random_bool(0.15) {
        s.push_str(&rng.random_range(1..100).to_string());
    }
    format!("{s}.{tld}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn entity_generation_is_deterministic() {
        let a = gen_entity(&mut rng(), "US");
        let b = gen_entity(&mut rng(), "US");
        assert_eq!(a, b);
    }

    #[test]
    fn entity_fields_are_consistent_with_country() {
        let mut r = rng();
        for code in ["US", "CN", "JP", "GB", "DE"] {
            let e = gen_entity(&mut r, code);
            assert_eq!(e.country_code, code);
            let spec = country_by_code(code);
            assert_eq!(e.country_name, spec.name);
            assert!(e.phone.starts_with(spec.dial));
            assert!(e.email.contains('@'));
            assert!(!e.postcode.contains('#'), "pattern fully rendered");
            assert!(!e.city.is_empty() && !e.street.is_empty());
        }
    }

    #[test]
    fn unknown_country_falls_back_to_us() {
        assert_eq!(country_by_code("ZZ").code, "US");
    }

    #[test]
    fn postcode_patterns_render() {
        let mut r = rng();
        let p = render_postcode(&mut r, "A## #AA");
        assert_eq!(p.len(), 7);
        assert!(p.chars().next().unwrap().is_ascii_uppercase());
        assert!(p.chars().nth(1).unwrap().is_ascii_digit());
        assert_eq!(render_postcode(&mut r, ""), "");
        assert_eq!(render_postcode(&mut r, "X-Y"), "X-Y");
    }

    #[test]
    fn domain_names_are_valid_shape() {
        let mut r = rng();
        for _ in 0..100 {
            let d = gen_domain_name(&mut r, "com");
            assert!(d.ends_with(".com"));
            let sld = d.strip_suffix(".com").unwrap();
            assert!(!sld.is_empty());
            assert!(sld.chars().all(|c| c.is_ascii_alphanumeric()));
        }
    }

    #[test]
    fn entities_vary_across_draws() {
        let mut r = rng();
        let entities: Vec<Entity> = (0..50).map(|_| gen_entity(&mut r, "US")).collect();
        let names: std::collections::HashSet<_> = entities.iter().map(|e| &e.name).collect();
        assert!(
            names.len() > 20,
            "names should be diverse, got {}",
            names.len()
        );
        assert!(entities.iter().any(|e| e.org.is_some()));
        assert!(entities.iter().any(|e| e.org.is_none()));
        assert!(entities.iter().any(|e| e.fax.is_some()));
    }

    #[test]
    fn phone_format_is_whois_convention() {
        let mut r = rng();
        let p = gen_phone(&mut r, "+86");
        assert!(p.starts_with("+86."));
        assert_eq!(p.len(), "+86.".len() + 10);
    }
}
