//! The template language: how a registrar's record format is described
//! and rendered.
//!
//! A registrar family is a [`Template`]: an ordered list of [`Element`]s.
//! Rendering a template against the [`DomainFacts`] of one domain yields
//! the record text *and* the gold label of every line — the generator's
//! ground truth is constructed, never inferred.

use whois_model::{BlockLabel, ContactKind, LabeledRecord, RawRecord, RegistrantLabel};

/// A calendar date; the generator needs no time-zone machinery.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SimpleDate {
    /// Year (e.g. 2014).
    pub y: i32,
    /// Month 1..=12.
    pub m: u32,
    /// Day 1..=28 (the generator never emits 29–31, sidestepping calendar
    /// rules).
    pub d: u32,
}

/// How a family renders dates.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DateStyle {
    /// `2014-03-01`
    Iso,
    /// `2014-03-01T00:00:00Z`
    IsoT,
    /// `01-Mar-2014`
    DayMonYear,
    /// `03/01/2014`
    Slash,
    /// `2014.03.01`
    Dot,
    /// `2014-03-01 04:30:00`
    IsoSpace,
}

const MONTH_ABBR: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

impl SimpleDate {
    /// Construct a date.
    pub fn new(y: i32, m: u32, d: u32) -> Self {
        assert!(
            (1..=12).contains(&m) && (1..=28).contains(&d),
            "generator dates are conservative"
        );
        SimpleDate { y, m, d }
    }

    /// Render in the given style.
    pub fn render(&self, style: DateStyle) -> String {
        match style {
            DateStyle::Iso => format!("{:04}-{:02}-{:02}", self.y, self.m, self.d),
            DateStyle::IsoT => format!("{:04}-{:02}-{:02}T00:00:00Z", self.y, self.m, self.d),
            DateStyle::DayMonYear => format!(
                "{:02}-{}-{:04}",
                self.d,
                MONTH_ABBR[(self.m - 1) as usize],
                self.y
            ),
            DateStyle::Slash => format!("{:02}/{:02}/{:04}", self.m, self.d, self.y),
            DateStyle::Dot => format!("{:04}.{:02}.{:02}", self.y, self.m, self.d),
            DateStyle::IsoSpace => {
                format!("{:04}-{:02}-{:02} 04:30:00", self.y, self.m, self.d)
            }
        }
    }
}

/// A contact as stored in the facts (an `entity::Entity` plus a registry
/// handle).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContactFacts {
    /// Registry handle / contact ID.
    pub id: String,
    /// Personal name.
    pub name: String,
    /// Organization (may be absent).
    pub org: Option<String>,
    /// First street line.
    pub street: String,
    /// Second street line (suite etc.).
    pub street2: Option<String>,
    /// City.
    pub city: String,
    /// State/province.
    pub state: String,
    /// Postal code.
    pub postcode: String,
    /// Country display name.
    pub country_name: String,
    /// ISO country code.
    pub country_code: String,
    /// Phone.
    pub phone: String,
    /// Fax (minority of contacts).
    pub fax: Option<String>,
    /// E-mail.
    pub email: String,
}

/// Everything known about one domain, sufficient to render any template.
#[derive(Clone, Debug, PartialEq)]
pub struct DomainFacts {
    /// Fully-qualified lower-case domain.
    pub domain: String,
    /// Sponsoring registrar display name.
    pub registrar_name: String,
    /// Registrar WHOIS server host name.
    pub whois_server: String,
    /// Registrar IANA ID.
    pub iana_id: u32,
    /// Registrar abuse contact e-mail.
    pub abuse_email: String,
    /// Registrar abuse contact phone.
    pub abuse_phone: String,
    /// Registrar public URL.
    pub registrar_url: String,
    /// Creation date.
    pub created: SimpleDate,
    /// Last-update date.
    pub updated: SimpleDate,
    /// Expiry date.
    pub expires: SimpleDate,
    /// Name servers (2–4 typically).
    pub name_servers: Vec<String>,
    /// EPP status strings.
    pub statuses: Vec<String>,
    /// The registrant contact (already privacy-substituted when the domain
    /// uses a protection service).
    pub registrant: ContactFacts,
    /// Administrative contact.
    pub admin: Option<ContactFacts>,
    /// Technical contact.
    pub tech: Option<ContactFacts>,
    /// Billing contact.
    pub billing: Option<ContactFacts>,
    /// Name of the privacy-protection service, when used.
    pub privacy_service: Option<String>,
}

impl DomainFacts {
    fn contact(&self, kind: ContactKind) -> Option<&ContactFacts> {
        match kind {
            ContactKind::Registrant => Some(&self.registrant),
            ContactKind::Admin => self.admin.as_ref(),
            ContactKind::Tech => self.tech.as_ref(),
            ContactKind::Billing => self.billing.as_ref(),
        }
    }
}

/// A single piece of contact information.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ContactField {
    /// Registry handle.
    Id,
    /// Personal name.
    Name,
    /// Organization.
    Org,
    /// First street line.
    Street1,
    /// Second street line.
    Street2,
    /// City.
    City,
    /// State/province.
    State,
    /// Postal code.
    Postcode,
    /// Country display name.
    CountryName,
    /// ISO country code.
    CountryCode,
    /// Combined `City, ST 99999` line (legacy formats).
    CityStateZip,
    /// Phone.
    Phone,
    /// Fax.
    Fax,
    /// E-mail.
    Email,
}

impl ContactField {
    /// The second-level label for a registrant line carrying this field.
    pub fn registrant_label(self) -> RegistrantLabel {
        match self {
            ContactField::Id => RegistrantLabel::Id,
            ContactField::Name => RegistrantLabel::Name,
            ContactField::Org => RegistrantLabel::Org,
            ContactField::Street1 | ContactField::Street2 => RegistrantLabel::Street,
            ContactField::City => RegistrantLabel::City,
            ContactField::State => RegistrantLabel::State,
            ContactField::Postcode => RegistrantLabel::Postcode,
            ContactField::CountryName | ContactField::CountryCode => RegistrantLabel::Country,
            // The combined line's dominant information is the city.
            ContactField::CityStateZip => RegistrantLabel::City,
            ContactField::Phone => RegistrantLabel::Phone,
            ContactField::Fax => RegistrantLabel::Fax,
            ContactField::Email => RegistrantLabel::Email,
        }
    }
}

/// An atomic value a template can interpolate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Field {
    /// The domain name (upper- or lower-case per `upper`).
    DomainName {
        /// Render upper-case (legacy registries shout).
        upper: bool,
    },
    /// Registrar display name.
    RegistrarName,
    /// Registrar WHOIS server.
    WhoisServer,
    /// Registrar URL.
    RegistrarUrl,
    /// Registrar IANA ID.
    IanaId,
    /// Abuse e-mail.
    AbuseEmail,
    /// Abuse phone.
    AbusePhone,
    /// Creation date.
    Created,
    /// Update date.
    Updated,
    /// Expiry date.
    Expires,
    /// `i`-th name server (skipped when absent).
    NameServer(usize),
    /// `i`-th status string.
    Status(usize),
    /// DNSSEC flag (always "unsigned" in the generator).
    Dnssec,
    /// A contact field.
    Contact(ContactKind, ContactField),
}

impl Field {
    /// The first-level block label of a line carrying this field.
    pub fn block_label(&self) -> BlockLabel {
        match self {
            Field::RegistrarName
            | Field::WhoisServer
            | Field::RegistrarUrl
            | Field::IanaId
            | Field::AbuseEmail
            | Field::AbusePhone => BlockLabel::Registrar,
            Field::DomainName { .. } | Field::NameServer(_) | Field::Status(_) | Field::Dnssec => {
                BlockLabel::Domain
            }
            Field::Created | Field::Updated | Field::Expires => BlockLabel::Date,
            Field::Contact(ContactKind::Registrant, _) => BlockLabel::Registrant,
            Field::Contact(_, _) => BlockLabel::Other,
        }
    }

    /// Resolve the field's value; `None` means the line is skipped.
    /// Empty resolved values (e.g. an unknown country) also skip the line,
    /// matching how real registrars omit absent fields.
    pub fn value(&self, facts: &DomainFacts, dates: DateStyle) -> Option<String> {
        self.value_inner(facts, dates).filter(|v| !v.is_empty())
    }

    fn value_inner(&self, facts: &DomainFacts, dates: DateStyle) -> Option<String> {
        match self {
            Field::DomainName { upper } => Some(if *upper {
                facts.domain.to_uppercase()
            } else {
                facts.domain.clone()
            }),
            Field::RegistrarName => Some(facts.registrar_name.clone()),
            Field::WhoisServer => Some(facts.whois_server.clone()),
            Field::RegistrarUrl => Some(facts.registrar_url.clone()),
            Field::IanaId => Some(facts.iana_id.to_string()),
            Field::AbuseEmail => Some(facts.abuse_email.clone()),
            Field::AbusePhone => Some(facts.abuse_phone.clone()),
            Field::Created => Some(facts.created.render(dates)),
            Field::Updated => Some(facts.updated.render(dates)),
            Field::Expires => Some(facts.expires.render(dates)),
            Field::NameServer(i) => facts.name_servers.get(*i).cloned(),
            Field::Status(i) => facts.statuses.get(*i).cloned(),
            Field::Dnssec => Some("unsigned".to_string()),
            Field::Contact(kind, cf) => {
                let c = facts.contact(*kind)?;
                match cf {
                    ContactField::Id => Some(c.id.clone()),
                    ContactField::Name => Some(c.name.clone()),
                    ContactField::Org => c.org.clone(),
                    ContactField::Street1 => Some(c.street.clone()),
                    ContactField::Street2 => c.street2.clone(),
                    ContactField::City => Some(c.city.clone()),
                    ContactField::State => Some(c.state.clone()),
                    ContactField::Postcode => Some(c.postcode.clone()),
                    ContactField::CountryName => Some(c.country_name.clone()),
                    ContactField::CountryCode => Some(c.country_code.clone()),
                    ContactField::CityStateZip => {
                        Some(format!("{}, {} {}", c.city, c.state, c.postcode))
                    }
                    ContactField::Phone => Some(c.phone.clone()),
                    ContactField::Fax => c.fax.clone(),
                    ContactField::Email => Some(c.email.clone()),
                }
            }
        }
    }
}

/// One element of a template.
#[derive(Clone, Debug, PartialEq)]
pub enum Element {
    /// A literal `null`-labeled line (version banners, notices).
    Banner(String),
    /// Several literal `null`-labeled lines (legal boilerplate).
    Boilerplate(&'static [&'static str]),
    /// A blank line (unlabeled; shapes the `NL` marker).
    Blank,
    /// `"{title}{sep}{value}"` — skipped when the field has no value.
    Titled {
        /// Field title, already styled (casing etc.).
        title: String,
        /// Separator text between title and value (e.g. `": "`).
        sep: String,
        /// The interpolated field.
        field: Field,
        /// Leading indentation in spaces.
        indent: usize,
    },
    /// A bare value line (no title), used by legacy block formats.
    Bare {
        /// The interpolated field.
        field: Field,
        /// Leading indentation in spaces.
        indent: usize,
    },
    /// A context header such as `"Registrant:"`; labeled with the block
    /// of `of` (e.g. the registrant header belongs to the registrant
    /// block).
    Header {
        /// Header text (with trailing colon if the family uses one).
        text: String,
        /// Which contact block the header introduces.
        of: ContactKind,
    },
    /// A literal line with an explicit first-level label (escape hatch for
    /// family quirks).
    Literal {
        /// Line text.
        text: String,
        /// Its gold label.
        label: BlockLabel,
    },
    /// Two formerly adjacent titled fields collapsed onto one line — a
    /// paper-observed drift (§2.3): registrars merge related fields
    /// (`Creation Date: ...  Expiry Date: ...`). Both fields must carry
    /// the same block label so the merged line's ground truth stays
    /// single-valued. When one side's value is absent the line degrades
    /// to the present side alone; when both are absent it is skipped.
    Merged {
        /// First field's title.
        title: String,
        /// Separator between each title and its value.
        sep: String,
        /// First (label-carrying) field.
        first: Field,
        /// Second field's title.
        second_title: String,
        /// Second field, rendered after the first on the same line.
        second: Field,
        /// Leading indentation in spaces.
        indent: usize,
    },
}

/// A complete registrar record format.
#[derive(Clone, Debug, PartialEq)]
pub struct Template {
    /// Family name (unique across the generator, e.g. `"icann-2013"`).
    pub family: String,
    /// Date rendering style.
    pub dates: DateStyle,
    /// The ordered elements.
    pub elements: Vec<Element>,
}

/// One rendered line with its gold labels (`None` labels for blank lines,
/// which are not labelable).
#[derive(Clone, Debug, PartialEq)]
pub struct RenderedLine {
    /// The text, possibly empty (blank line).
    pub text: String,
    /// First-level label, absent for blank/symbol-only lines.
    pub block: Option<BlockLabel>,
    /// Second-level label for lines inside the registrant block.
    pub registrant: Option<RegistrantLabel>,
}

/// A fully rendered record with ground truth attached.
#[derive(Clone, Debug)]
pub struct RenderedRecord {
    /// The domain rendered.
    pub domain: String,
    /// All lines, including blanks.
    pub lines: Vec<RenderedLine>,
}

impl Template {
    /// Render `facts` through this template.
    pub fn render(&self, facts: &DomainFacts) -> RenderedRecord {
        let mut lines = Vec::with_capacity(self.elements.len());
        for el in &self.elements {
            match el {
                Element::Banner(text) => lines.push(labeled_line(text.clone(), BlockLabel::Null)),
                Element::Boilerplate(texts) => {
                    for t in *texts {
                        lines.push(labeled_line((*t).to_string(), BlockLabel::Null));
                    }
                }
                Element::Blank => lines.push(RenderedLine {
                    text: String::new(),
                    block: None,
                    registrant: None,
                }),
                Element::Titled {
                    title,
                    sep,
                    field,
                    indent,
                } => {
                    if let Some(v) = field.value(facts, self.dates) {
                        let text = format!("{}{}{}{}", " ".repeat(*indent), title, sep, v);
                        lines.push(field_line(text, field));
                    }
                }
                Element::Bare { field, indent } => {
                    if let Some(v) = field.value(facts, self.dates) {
                        let text = format!("{}{}", " ".repeat(*indent), v);
                        lines.push(field_line(text, field));
                    }
                }
                Element::Header { text, of } => {
                    let block = match of {
                        ContactKind::Registrant => BlockLabel::Registrant,
                        _ => BlockLabel::Other,
                    };
                    let registrant =
                        (block == BlockLabel::Registrant).then_some(RegistrantLabel::Other);
                    lines.push(RenderedLine {
                        text: text.clone(),
                        block: Some(block),
                        registrant,
                    });
                }
                Element::Literal { text, label } => lines.push(labeled_line(text.clone(), *label)),
                Element::Merged {
                    title,
                    sep,
                    first,
                    second_title,
                    second,
                    indent,
                } => {
                    debug_assert_eq!(
                        first.block_label(),
                        second.block_label(),
                        "merged fields must share a block label"
                    );
                    let ind = " ".repeat(*indent);
                    match (
                        first.value(facts, self.dates),
                        second.value(facts, self.dates),
                    ) {
                        (Some(a), Some(b)) => {
                            let text = format!("{ind}{title}{sep}{a}  {second_title}{sep}{b}");
                            lines.push(field_line(text, first));
                        }
                        (Some(a), None) => {
                            lines.push(field_line(format!("{ind}{title}{sep}{a}"), first));
                        }
                        (None, Some(b)) => {
                            lines.push(field_line(format!("{ind}{second_title}{sep}{b}"), second));
                        }
                        (None, None) => {}
                    }
                }
            }
        }
        // Lines without any alphanumeric character are not labelable: clear
        // their labels so ground truth matches the chunker's view. Every
        // labelable registrant-block line must carry a second-level label;
        // lines with no specific sub-field default to `other`.
        for line in &mut lines {
            if !line.text.chars().any(|c| c.is_alphanumeric()) {
                line.block = None;
                line.registrant = None;
            } else if line.block == Some(BlockLabel::Registrant) && line.registrant.is_none() {
                line.registrant = Some(RegistrantLabel::Other);
            }
        }
        RenderedRecord {
            domain: facts.domain.clone(),
            lines,
        }
    }
}

fn labeled_line(text: String, label: BlockLabel) -> RenderedLine {
    RenderedLine {
        text,
        block: Some(label),
        registrant: None,
    }
}

fn field_line(text: String, field: &Field) -> RenderedLine {
    let block = field.block_label();
    let registrant = match field {
        Field::Contact(ContactKind::Registrant, cf) => Some(cf.registrant_label()),
        _ => None,
    };
    RenderedLine {
        text,
        block: Some(block),
        registrant,
    }
}

impl RenderedRecord {
    /// The record text (lines joined with `\n`).
    pub fn text(&self) -> String {
        self.lines
            .iter()
            .map(|l| l.text.as_str())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// As a [`RawRecord`].
    pub fn to_raw(&self) -> RawRecord {
        RawRecord::new(self.domain.clone(), self.text())
    }

    /// First-level ground truth over the labelable lines.
    pub fn block_labels(&self) -> LabeledRecord<BlockLabel> {
        let mut texts = Vec::new();
        let mut labels = Vec::new();
        for l in &self.lines {
            if let Some(b) = l.block {
                texts.push(l.text.clone());
                labels.push(b);
            }
        }
        LabeledRecord::from_parts(self.domain.clone(), texts, labels)
    }

    /// Second-level ground truth: the registrant-block lines with their
    /// sub-field labels. Empty when the record has no registrant block.
    pub fn registrant_labels(&self) -> LabeledRecord<RegistrantLabel> {
        let mut texts = Vec::new();
        let mut labels = Vec::new();
        for l in &self.lines {
            if let (Some(BlockLabel::Registrant), Some(r)) = (l.block, l.registrant) {
                texts.push(l.text.clone());
                labels.push(r);
            }
        }
        LabeledRecord::from_parts(self.domain.clone(), texts, labels)
    }
}

/// Ready-made facts for tests and documentation examples (also used by
/// other crates' test suites).
pub mod fixtures {
    use super::*;

    /// A fully populated contact.
    pub fn sample_contact(tag: &str) -> ContactFacts {
        ContactFacts {
            id: format!("H{tag}123"),
            name: "John Smith".into(),
            org: Some("Pacific Trading Co.".into()),
            street: "500 Gilman Dr".into(),
            street2: None,
            city: "San Diego".into(),
            state: "CA".into(),
            postcode: "92093".into(),
            country_name: "United States".into(),
            country_code: "US".into(),
            phone: "+1.8585550100".into(),
            fax: None,
            email: "john.smith@example.org".into(),
        }
    }

    /// A fully populated set of domain facts.
    pub fn sample_facts() -> DomainFacts {
        DomainFacts {
            domain: "exampledomain.com".into(),
            registrar_name: "GoDaddy.com, LLC".into(),
            whois_server: "whois.godaddy.com".into(),
            iana_id: 146,
            abuse_email: "abuse@godaddy.com".into(),
            abuse_phone: "+1.4806242505".into(),
            registrar_url: "http://www.godaddy.com".into(),
            created: SimpleDate::new(2011, 8, 9),
            updated: SimpleDate::new(2014, 7, 22),
            expires: SimpleDate::new(2016, 8, 9),
            name_servers: vec!["ns1.example.com".into(), "ns2.example.com".into()],
            statuses: vec!["clientTransferProhibited".into()],
            registrant: sample_contact("R"),
            admin: Some(sample_contact("A")),
            tech: None,
            billing: None,
            privacy_service: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_contact(tag: &str) -> ContactFacts {
        ContactFacts {
            id: format!("H{tag}123"),
            name: "John Smith".into(),
            org: Some("Pacific Trading Co.".into()),
            street: "500 Gilman Dr".into(),
            street2: None,
            city: "San Diego".into(),
            state: "CA".into(),
            postcode: "92093".into(),
            country_name: "United States".into(),
            country_code: "US".into(),
            phone: "+1.8585550100".into(),
            fax: None,
            email: "john.smith@example.org".into(),
        }
    }

    pub(crate) fn sample_facts() -> DomainFacts {
        DomainFacts {
            domain: "exampledomain.com".into(),
            registrar_name: "GoDaddy.com, LLC".into(),
            whois_server: "whois.godaddy.com".into(),
            iana_id: 146,
            abuse_email: "abuse@godaddy.com".into(),
            abuse_phone: "+1.4806242505".into(),
            registrar_url: "http://www.godaddy.com".into(),
            created: SimpleDate::new(2011, 8, 9),
            updated: SimpleDate::new(2014, 7, 22),
            expires: SimpleDate::new(2016, 8, 9),
            name_servers: vec!["ns1.example.com".into(), "ns2.example.com".into()],
            statuses: vec!["clientTransferProhibited".into()],
            registrant: sample_contact("R"),
            admin: Some(sample_contact("A")),
            tech: None,
            billing: None,
            privacy_service: None,
        }
    }

    fn titled(title: &str, field: Field) -> Element {
        Element::Titled {
            title: title.into(),
            sep: ": ".into(),
            field,
            indent: 0,
        }
    }

    #[test]
    fn date_styles_render() {
        let d = SimpleDate::new(2014, 3, 1);
        assert_eq!(d.render(DateStyle::Iso), "2014-03-01");
        assert_eq!(d.render(DateStyle::IsoT), "2014-03-01T00:00:00Z");
        assert_eq!(d.render(DateStyle::DayMonYear), "01-Mar-2014");
        assert_eq!(d.render(DateStyle::Slash), "03/01/2014");
        assert_eq!(d.render(DateStyle::Dot), "2014.03.01");
        assert_eq!(d.render(DateStyle::IsoSpace), "2014-03-01 04:30:00");
    }

    #[test]
    #[should_panic(expected = "conservative")]
    fn extreme_dates_rejected() {
        SimpleDate::new(2014, 2, 30);
    }

    #[test]
    fn titled_fields_render_with_labels() {
        let t = Template {
            family: "test".into(),
            dates: DateStyle::Iso,
            elements: vec![
                titled("Domain Name", Field::DomainName { upper: true }),
                titled("Registrar", Field::RegistrarName),
                titled("Creation Date", Field::Created),
                titled(
                    "Registrant Name",
                    Field::Contact(ContactKind::Registrant, ContactField::Name),
                ),
                titled(
                    "Admin Email",
                    Field::Contact(ContactKind::Admin, ContactField::Email),
                ),
            ],
        };
        let r = t.render(&sample_facts());
        assert_eq!(r.lines.len(), 5);
        assert_eq!(r.lines[0].text, "Domain Name: EXAMPLEDOMAIN.COM");
        assert_eq!(r.lines[0].block, Some(BlockLabel::Domain));
        assert_eq!(r.lines[1].block, Some(BlockLabel::Registrar));
        assert_eq!(r.lines[2].block, Some(BlockLabel::Date));
        assert_eq!(r.lines[3].block, Some(BlockLabel::Registrant));
        assert_eq!(r.lines[3].registrant, Some(RegistrantLabel::Name));
        assert_eq!(r.lines[4].block, Some(BlockLabel::Other));
        assert_eq!(r.lines[4].registrant, None);
    }

    #[test]
    fn absent_fields_are_skipped() {
        let t = Template {
            family: "test".into(),
            dates: DateStyle::Iso,
            elements: vec![
                titled(
                    "Tech Name",
                    Field::Contact(ContactKind::Tech, ContactField::Name),
                ),
                titled("Name Server", Field::NameServer(5)),
                titled(
                    "Registrant Fax",
                    Field::Contact(ContactKind::Registrant, ContactField::Fax),
                ),
            ],
        };
        let r = t.render(&sample_facts());
        assert!(r.lines.is_empty(), "all three fields are absent");
    }

    #[test]
    fn blank_lines_are_unlabeled() {
        let t = Template {
            family: "test".into(),
            dates: DateStyle::Iso,
            elements: vec![
                titled("Domain", Field::DomainName { upper: false }),
                Element::Blank,
                Element::Banner(">>> last update of whois database <<<".into()),
            ],
        };
        let r = t.render(&sample_facts());
        assert_eq!(r.lines.len(), 3);
        assert_eq!(r.lines[1].block, None);
        let labeled = r.block_labels();
        assert_eq!(labeled.len(), 2, "blank line not in ground truth");
        assert_eq!(labeled.lines[1].label, BlockLabel::Null);
    }

    #[test]
    fn symbol_only_literal_loses_label() {
        let t = Template {
            family: "test".into(),
            dates: DateStyle::Iso,
            elements: vec![Element::Banner("-----------".into())],
        };
        let r = t.render(&sample_facts());
        assert_eq!(r.lines[0].block, None, "not labelable by the chunker");
        assert!(r.block_labels().is_empty());
    }

    #[test]
    fn header_and_bare_block_rendering() {
        let t = Template {
            family: "legacy".into(),
            dates: DateStyle::DayMonYear,
            elements: vec![
                Element::Header {
                    text: "Registrant:".into(),
                    of: ContactKind::Registrant,
                },
                Element::Bare {
                    field: Field::Contact(ContactKind::Registrant, ContactField::Org),
                    indent: 3,
                },
                Element::Bare {
                    field: Field::Contact(ContactKind::Registrant, ContactField::Street1),
                    indent: 3,
                },
                Element::Bare {
                    field: Field::Contact(ContactKind::Registrant, ContactField::CityStateZip),
                    indent: 3,
                },
            ],
        };
        let r = t.render(&sample_facts());
        assert_eq!(r.lines[0].registrant, Some(RegistrantLabel::Other));
        assert_eq!(r.lines[1].text, "   Pacific Trading Co.");
        assert_eq!(r.lines[1].registrant, Some(RegistrantLabel::Org));
        assert_eq!(r.lines[3].text, "   San Diego, CA 92093");
        assert_eq!(r.lines[3].registrant, Some(RegistrantLabel::City));
        let reg = r.registrant_labels();
        assert_eq!(reg.len(), 4);
    }

    #[test]
    fn merged_fields_render_one_line_one_label() {
        let t = Template {
            family: "test".into(),
            dates: DateStyle::Iso,
            elements: vec![Element::Merged {
                title: "Creation Date".into(),
                sep: ": ".into(),
                first: Field::Created,
                second_title: "Expiry Date".into(),
                second: Field::Expires,
                indent: 0,
            }],
        };
        let r = t.render(&sample_facts());
        assert_eq!(r.lines.len(), 1, "two fields share one line");
        assert_eq!(
            r.lines[0].text,
            "Creation Date: 2011-08-09  Expiry Date: 2016-08-09"
        );
        assert_eq!(r.lines[0].block, Some(BlockLabel::Date));
        assert_eq!(r.block_labels().len(), 1);
    }

    #[test]
    fn merged_field_degrades_when_one_side_is_absent() {
        // Registrant fax is absent in the sample facts: the merged line
        // falls back to the email alone, keeping its own labels.
        let t = Template {
            family: "test".into(),
            dates: DateStyle::Iso,
            elements: vec![Element::Merged {
                title: "Fax".into(),
                sep: ": ".into(),
                first: Field::Contact(ContactKind::Registrant, ContactField::Fax),
                second_title: "Email".into(),
                second: Field::Contact(ContactKind::Registrant, ContactField::Email),
                indent: 0,
            }],
        };
        let r = t.render(&sample_facts());
        assert_eq!(r.lines.len(), 1);
        assert_eq!(r.lines[0].text, "Email: john.smith@example.org");
        assert_eq!(r.lines[0].block, Some(BlockLabel::Registrant));
        assert_eq!(r.lines[0].registrant, Some(RegistrantLabel::Email));
    }

    #[test]
    fn text_and_raw_roundtrip() {
        let t = Template {
            family: "test".into(),
            dates: DateStyle::Iso,
            elements: vec![
                titled("Domain", Field::DomainName { upper: false }),
                Element::Blank,
                titled("Registrar", Field::RegistrarName),
            ],
        };
        let r = t.render(&sample_facts());
        let raw = r.to_raw();
        assert_eq!(
            raw.text,
            "Domain: exampledomain.com\n\nRegistrar: GoDaddy.com, LLC"
        );
        assert_eq!(raw.lines().len(), 2);
        assert_eq!(r.block_labels().len(), 2);
    }
}
