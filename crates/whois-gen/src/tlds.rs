//! Single-template formats for the twelve "new TLD" examples of Table 2.
//!
//! Each of these TLDs is thick and "owned by a single registrar" in the
//! paper's sample, with one consistent template per TLD — but the
//! templates are *not* ones observed in the `com` training data, which is
//! what makes Table 2 a generalization test. The formats below are
//! deliberately distinct from every `com` family in `families`, with
//! `coop` the most alien (the paper's rule-based parser mislabeled 91 of
//! its 127 lines).

use crate::entity::gen_entity;
use crate::families::{BOILERPLATE_LONG, BOILERPLATE_NOTICE, BOILERPLATE_SHORT};
use crate::style::{ContactField, DateStyle, DomainFacts, Element, Field, SimpleDate, Template};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use whois_model::{BlockLabel, ContactKind};

fn titled(title: &str, sep: &str, field: Field) -> Element {
    Element::Titled {
        title: title.to_string(),
        sep: sep.to_string(),
        field,
        indent: 0,
    }
}

fn reg(cf: ContactField) -> Field {
    Field::Contact(ContactKind::Registrant, cf)
}

fn ct(kind: ContactKind, cf: ContactField) -> Field {
    Field::Contact(kind, cf)
}

/// The registry-style contact dump used by `coop` and `pro`: one
/// `Contact Type:` discriminator line followed by generic `Contact X:`
/// titles, so nothing in the title says *registrant* except the type line.
fn registry_contact_dump(kind: ContactKind, type_name: &str, out: &mut Vec<Element>) {
    let block = match kind {
        ContactKind::Registrant => BlockLabel::Registrant,
        _ => BlockLabel::Other,
    };
    out.push(Element::Literal {
        text: format!("Contact Type: {type_name}"),
        label: block,
    });
    // NOTE: for the registrant this line is labeled registrant/other at
    // level 2 via Header semantics; we emit generic titles below.
    for (title, cf) in [
        ("Contact ID", ContactField::Id),
        ("Contact Name", ContactField::Name),
        ("Contact Organization", ContactField::Org),
        ("Contact Address1", ContactField::Street1),
        ("Contact Address2", ContactField::Street2),
        ("Contact City", ContactField::City),
        ("Contact Province", ContactField::State),
        ("Contact Postal", ContactField::Postcode),
        ("Contact Country", ContactField::CountryCode),
        ("Contact Voice", ContactField::Phone),
        ("Contact Facsimile", ContactField::Fax),
        ("Contact Mail", ContactField::Email),
    ] {
        out.push(titled(title, ": ", ct(kind, cf)));
    }
}

/// Template for one of the twelve Table 2 TLDs; `None` for unknown TLDs.
pub fn tld_template(tld: &str) -> Option<Template> {
    let t = match tld {
        "aero" => Template {
            family: "tld-aero".into(),
            dates: DateStyle::IsoT,
            elements: vec![
                titled("Domain Name", ": ", Field::DomainName { upper: false }),
                titled("Domain ID", ": ", Field::IanaId),
                titled("Sponsoring Registrar", ": ", Field::RegistrarName),
                titled("Domain Registration Date", ": ", Field::Created),
                titled("Domain Expiration Date", ": ", Field::Expires),
                titled("Domain Last Updated Date", ": ", Field::Updated),
                titled("Registrant Name", ": ", reg(ContactField::Name)),
                titled("Registrant Organization", ": ", reg(ContactField::Org)),
                titled("Registrant Address", ": ", reg(ContactField::Street1)),
                titled("Registrant City", ": ", reg(ContactField::City)),
                titled("Registrant Postal Code", ": ", reg(ContactField::Postcode)),
                titled("Registrant Country", ": ", reg(ContactField::CountryCode)),
                titled("Registrant Email", ": ", reg(ContactField::Email)),
                titled("Name Server", ": ", Field::NameServer(0)),
                titled("Name Server", ": ", Field::NameServer(1)),
                Element::Blank,
                Element::Boilerplate(BOILERPLATE_LONG),
            ],
        },
        "asia" => Template {
            family: "tld-asia".into(),
            dates: DateStyle::Iso,
            elements: vec![
                Element::Banner("DotAsia WHOIS LookUp".into()),
                Element::Blank,
                titled("Domain Name", ":", Field::DomainName { upper: true }),
                titled("Registrar Name", ":", Field::RegistrarName),
                titled("Created On", ":", Field::Created),
                titled("Expiration Date", ":", Field::Expires),
                titled("Domain Status", ":", Field::Status(0)),
                Element::Blank,
                Element::Header {
                    text: "Registrant Details".into(),
                    of: ContactKind::Registrant,
                },
                Element::Bare {
                    field: reg(ContactField::Name),
                    indent: 2,
                },
                Element::Bare {
                    field: reg(ContactField::Org),
                    indent: 2,
                },
                Element::Bare {
                    field: reg(ContactField::Street1),
                    indent: 2,
                },
                Element::Bare {
                    field: reg(ContactField::CityStateZip),
                    indent: 2,
                },
                Element::Bare {
                    field: reg(ContactField::CountryName),
                    indent: 2,
                },
                Element::Bare {
                    field: reg(ContactField::Email),
                    indent: 2,
                },
                Element::Blank,
                titled("Nameservers", ":", Field::NameServer(0)),
                titled("Nameservers", ":", Field::NameServer(1)),
                Element::Blank,
                Element::Boilerplate(BOILERPLATE_NOTICE),
            ],
        },
        "biz" => Template {
            family: "tld-biz".into(),
            dates: DateStyle::DayMonYear,
            elements: vec![
                titled(
                    "Domain Name",
                    "                 ",
                    Field::DomainName { upper: true },
                ),
                titled("Domain ID", "                   ", Field::IanaId),
                titled("Sponsoring Registrar", "        ", Field::RegistrarName),
                titled("Domain Status", "               ", Field::Status(0)),
                titled("Registrant ID", "               ", reg(ContactField::Id)),
                titled("Registrant Name", "             ", reg(ContactField::Name)),
                titled("Registrant Organization", "     ", reg(ContactField::Org)),
                titled(
                    "Registrant Address1",
                    "         ",
                    reg(ContactField::Street1),
                ),
                titled("Registrant City", "             ", reg(ContactField::City)),
                titled("Registrant State/Province", "   ", reg(ContactField::State)),
                titled(
                    "Registrant Postal Code",
                    "      ",
                    reg(ContactField::Postcode),
                ),
                titled(
                    "Registrant Country Code",
                    "     ",
                    reg(ContactField::CountryCode),
                ),
                titled("Registrant Phone Number", "     ", reg(ContactField::Phone)),
                titled("Registrant Email", "            ", reg(ContactField::Email)),
                titled("Name Server", "                 ", Field::NameServer(0)),
                titled("Name Server", "                 ", Field::NameServer(1)),
                titled("Created by Registrar", "        ", Field::RegistrarName),
                titled("Domain Registration Date", "    ", Field::Created),
                titled("Domain Expiration Date", "      ", Field::Expires),
                titled("Domain Last Updated Date", "    ", Field::Updated),
                Element::Blank,
                Element::Boilerplate(BOILERPLATE_SHORT),
            ],
        },
        "coop" => {
            let mut elements = vec![
                Element::Banner("The .coop Registry WHOIS Service".into()),
                Element::Boilerplate(BOILERPLATE_LONG),
                Element::Blank,
                titled("Domain", "            ", Field::DomainName { upper: false }),
                titled("Record ID", "         ", Field::IanaId),
                titled("Sponsor", "           ", Field::RegistrarName),
                titled("Activated", "         ", Field::Created),
                titled("Renewal", "           ", Field::Expires),
                titled("Touched", "           ", Field::Updated),
                Element::Blank,
            ];
            registry_contact_dump(ContactKind::Registrant, "registrant", &mut elements);
            elements.push(Element::Blank);
            registry_contact_dump(ContactKind::Admin, "admin", &mut elements);
            elements.push(Element::Blank);
            registry_contact_dump(ContactKind::Tech, "tech", &mut elements);
            elements.push(Element::Blank);
            elements.push(titled("Host", "              ", Field::NameServer(0)));
            elements.push(titled("Host", "              ", Field::NameServer(1)));
            elements.push(Element::Blank);
            elements.push(Element::Boilerplate(BOILERPLATE_NOTICE));
            Template {
                family: "tld-coop".into(),
                dates: DateStyle::Dot,
                elements,
            }
        }
        "info" => Template {
            family: "tld-info".into(),
            dates: DateStyle::IsoT,
            elements: vec![
                titled("Domain Name", ":", Field::DomainName { upper: true }),
                titled("Registrar", ":", Field::RegistrarName),
                titled("Updated Date", ":", Field::Updated),
                titled("Creation Date", ":", Field::Created),
                titled("Registry Expiry Date", ":", Field::Expires),
                titled("Registrant Name", ":", reg(ContactField::Name)),
                titled("Registrant Organization", ":", reg(ContactField::Org)),
                titled("Registrant Street", ":", reg(ContactField::Street1)),
                titled("Registrant City", ":", reg(ContactField::City)),
                titled("Registrant Postal Code", ":", reg(ContactField::Postcode)),
                titled("Registrant Country", ":", reg(ContactField::CountryCode)),
                titled("Registrant Phone", ":", reg(ContactField::Phone)),
                titled("Registrant Email", ":", reg(ContactField::Email)),
                titled("Name Server", ":", Field::NameServer(0)),
                titled("Name Server", ":", Field::NameServer(1)),
                titled("DNSSEC", ":", Field::Dnssec),
                Element::Blank,
                Element::Boilerplate(BOILERPLATE_SHORT),
            ],
        },
        "mobi" => Template {
            family: "tld-mobi".into(),
            dates: DateStyle::Iso,
            elements: vec![
                Element::Banner("mTLD WHOIS server".into()),
                Element::Blank,
                titled("domain", ": ", Field::DomainName { upper: false }),
                titled("registrar", ": ", Field::RegistrarName),
                titled("created", ": ", Field::Created),
                titled("expires", ": ", Field::Expires),
                Element::Blank,
                titled("owner contact", ": ", reg(ContactField::Id)),
                titled("name", ": ", reg(ContactField::Name)),
                titled("org", ": ", reg(ContactField::Org)),
                titled("address", ": ", reg(ContactField::Street1)),
                titled("city", ": ", reg(ContactField::City)),
                titled("zip", ": ", reg(ContactField::Postcode)),
                titled("country", ": ", reg(ContactField::CountryCode)),
                titled("email", ": ", reg(ContactField::Email)),
                Element::Blank,
                titled("nserver", ": ", Field::NameServer(0)),
                titled("nserver", ": ", Field::NameServer(1)),
            ],
        },
        "name" => Template {
            family: "tld-name".into(),
            dates: DateStyle::Iso,
            elements: vec![
                titled("Domain Name ID", ": ", Field::IanaId),
                titled("Domain Name", ": ", Field::DomainName { upper: true }),
                titled("Sponsoring Registrar", ": ", Field::RegistrarName),
                titled("Domain Status", ": ", Field::Status(0)),
                titled("Registrant", ": ", reg(ContactField::Name)),
                titled("Registrant Email", ": ", reg(ContactField::Email)),
                titled("Created On", ": ", Field::Created),
                titled("Expires On", ": ", Field::Expires),
                titled("Name Server", ": ", Field::NameServer(0)),
                titled("Name Server", ": ", Field::NameServer(1)),
            ],
        },
        "org" => Template {
            family: "tld-org".into(),
            dates: DateStyle::IsoT,
            elements: vec![
                titled("Domain Name", ":", Field::DomainName { upper: true }),
                titled("Domain ID", ":", Field::IanaId),
                titled("Creation Date", ":", Field::Created),
                titled("Updated Date", ":", Field::Updated),
                titled("Registry Expiry Date", ":", Field::Expires),
                titled("Sponsoring Registrar", ":", Field::RegistrarName),
                titled("Domain Status", ":", Field::Status(0)),
                titled("Registrant ID", ":", reg(ContactField::Id)),
                titled("Registrant Name", ":", reg(ContactField::Name)),
                titled("Registrant Organization", ":", reg(ContactField::Org)),
                titled("Registrant Street", ":", reg(ContactField::Street1)),
                titled("Registrant City", ":", reg(ContactField::City)),
                titled("Registrant State/Province", ":", reg(ContactField::State)),
                titled("Registrant Postal Code", ":", reg(ContactField::Postcode)),
                titled("Registrant Country", ":", reg(ContactField::CountryCode)),
                titled("Registrant Phone", ":", reg(ContactField::Phone)),
                titled("Registrant Email", ":", reg(ContactField::Email)),
                titled("Name Server", ":", Field::NameServer(0)),
                titled("Name Server", ":", Field::NameServer(1)),
                titled("DNSSEC", ":", Field::Dnssec),
                Element::Blank,
                Element::Boilerplate(BOILERPLATE_NOTICE),
            ],
        },
        "pro" => {
            let mut elements = vec![
                titled("Domain Name", ": ", Field::DomainName { upper: true }),
                titled("Registrar", ": ", Field::RegistrarName),
                titled("Created", ": ", Field::Created),
                titled("Expires", ": ", Field::Expires),
                Element::Blank,
            ];
            registry_contact_dump(ContactKind::Registrant, "owner", &mut elements);
            elements.push(Element::Blank);
            elements.push(titled("DNS", ": ", Field::NameServer(0)));
            elements.push(titled("DNS", ": ", Field::NameServer(1)));
            Template {
                family: "tld-pro".into(),
                dates: DateStyle::Iso,
                elements,
            }
        }
        "travel" => Template {
            family: "tld-travel".into(),
            dates: DateStyle::Slash,
            elements: vec![
                Element::Banner("Tralliance Registry Management Whois".into()),
                titled(
                    "Domain name",
                    "..........",
                    Field::DomainName { upper: false },
                ),
                titled("Registrar", "............", Field::RegistrarName),
                titled("Registered on", "........", Field::Created),
                titled("Valid until", "..........", Field::Expires),
                Element::Blank,
                Element::Header {
                    text: "Owner contact".into(),
                    of: ContactKind::Registrant,
                },
                Element::Bare {
                    field: reg(ContactField::Name),
                    indent: 1,
                },
                Element::Bare {
                    field: reg(ContactField::Org),
                    indent: 1,
                },
                Element::Bare {
                    field: reg(ContactField::Street1),
                    indent: 1,
                },
                Element::Bare {
                    field: reg(ContactField::CityStateZip),
                    indent: 1,
                },
                Element::Bare {
                    field: reg(ContactField::CountryName),
                    indent: 1,
                },
                Element::Bare {
                    field: reg(ContactField::Phone),
                    indent: 1,
                },
                Element::Bare {
                    field: reg(ContactField::Email),
                    indent: 1,
                },
                Element::Blank,
                titled("Nameserver", "...........", Field::NameServer(0)),
                titled("Nameserver", "...........", Field::NameServer(1)),
            ],
        },
        "us" => Template {
            family: "tld-us".into(),
            dates: DateStyle::DayMonYear,
            elements: vec![
                Element::Boilerplate(BOILERPLATE_NOTICE),
                Element::Blank,
                titled("Domain Name", ":", Field::DomainName { upper: true }),
                titled("Domain ID", ":", Field::IanaId),
                titled("Sponsoring Registrar", ":", Field::RegistrarName),
                titled("Registrant ID", ":", reg(ContactField::Id)),
                titled("Registrant Name", ":", reg(ContactField::Name)),
                titled("Registrant Organization", ":", reg(ContactField::Org)),
                titled("Registrant Address1", ":", reg(ContactField::Street1)),
                titled("Registrant City", ":", reg(ContactField::City)),
                titled("Registrant State/Province", ":", reg(ContactField::State)),
                titled("Registrant Postal Code", ":", reg(ContactField::Postcode)),
                titled("Registrant Country", ":", reg(ContactField::CountryName)),
                titled(
                    "Registrant Country Code",
                    ":",
                    reg(ContactField::CountryCode),
                ),
                titled("Registrant Phone Number", ":", reg(ContactField::Phone)),
                titled("Registrant Email", ":", reg(ContactField::Email)),
                titled("Name Server", ":", Field::NameServer(0)),
                titled("Name Server", ":", Field::NameServer(1)),
                titled("Domain Registration Date", ":", Field::Created),
                titled("Domain Expiration Date", ":", Field::Expires),
                titled("Domain Last Updated Date", ":", Field::Updated),
            ],
        },
        "xxx" => Template {
            family: "tld-xxx".into(),
            dates: DateStyle::IsoT,
            elements: vec![
                titled("Domain Name", ": ", Field::DomainName { upper: true }),
                titled("Domain ID", ": ", Field::IanaId),
                titled("Sponsoring Registrar", ": ", Field::RegistrarName),
                titled("Creation Date", ": ", Field::Created),
                titled("Expiry Date", ": ", Field::Expires),
                titled("Registrant ID", ": ", reg(ContactField::Id)),
                titled("Registrant Name", ": ", reg(ContactField::Name)),
                titled("Registrant Street", ": ", reg(ContactField::Street1)),
                titled("Registrant City", ": ", reg(ContactField::City)),
                titled("Registrant Postal Code", ": ", reg(ContactField::Postcode)),
                titled("Registrant Country", ": ", reg(ContactField::CountryCode)),
                titled("Registrant Email", ": ", reg(ContactField::Email)),
                titled("Name Server", ": ", Field::NameServer(0)),
                titled("Name Server", ": ", Field::NameServer(1)),
                Element::Blank,
                Element::Boilerplate(BOILERPLATE_SHORT),
            ],
        },
        _ => return None,
    };
    Some(t)
}

/// Generate a sample record in TLD `tld` with full ground truth (what
/// Table 2 needs: one record per TLD).
pub fn tld_sample(tld: &str, seed: u64) -> Option<crate::style::RenderedRecord> {
    let template = tld_template(tld)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ tld.len() as u64);
    let e = gen_entity(&mut rng, "US");
    let contact = |e: &crate::entity::Entity, tag: &str| crate::style::ContactFacts {
        id: format!(
            "{}-{}{}",
            tld.to_uppercase(),
            tag,
            rng_id(&mut ChaCha8Rng::seed_from_u64(seed))
        ),
        name: e.name.clone(),
        org: e.org.clone(),
        street: e.street.clone(),
        street2: e.street2.clone(),
        city: e.city.clone(),
        state: e.state.clone(),
        postcode: e.postcode.clone(),
        country_name: e.country_name.clone(),
        country_code: e.country_code.to_string(),
        phone: e.phone.clone(),
        fax: e.fax.clone(),
        email: e.email.clone(),
    };
    let registrant = contact(&e, "R");
    let admin_entity = gen_entity(&mut rng, "US");
    let facts = DomainFacts {
        domain: crate::entity::gen_domain_name(&mut rng, tld),
        registrar_name: format!("{} Registry Services", tld.to_uppercase()),
        whois_server: format!("whois.nic.{tld}"),
        iana_id: 9000 + tld.len() as u32,
        abuse_email: format!("abuse@nic.{tld}"),
        abuse_phone: "+1.5555550000".into(),
        registrar_url: format!("http://www.nic.{tld}"),
        created: SimpleDate::new(rng.random_range(2002..=2013), rng.random_range(1..=12), 14),
        updated: SimpleDate::new(2014, rng.random_range(1..=12), 7),
        expires: SimpleDate::new(2016, 6, 14),
        name_servers: vec![format!("ns1.host-{tld}.net"), format!("ns2.host-{tld}.net")],
        statuses: vec!["ok".into()],
        registrant,
        admin: Some(contact(&admin_entity, "A")),
        tech: Some(contact(&admin_entity, "T")),
        billing: None,
        privacy_service: None,
    };
    Some(template.render(&facts))
}

fn rng_id(rng: &mut ChaCha8Rng) -> u32 {
    rng.random_range(1000..99999)
}

#[cfg(test)]
mod tests {
    use super::*;
    use whois_model::Tld;

    #[test]
    fn all_twelve_tlds_have_templates() {
        for tld in Tld::TABLE2_TLDS {
            assert!(tld_template(tld).is_some(), "missing template for {tld}");
        }
        assert!(tld_template("com").is_none(), "com uses registrar families");
    }

    #[test]
    fn tld_samples_render_with_ground_truth() {
        for tld in Tld::TABLE2_TLDS {
            let r = tld_sample(tld, 42).unwrap();
            let labels = r.block_labels();
            assert!(
                labels.len() >= 10,
                "tld {tld} sample too short: {}",
                labels.len()
            );
            assert_eq!(
                r.to_raw().lines().len(),
                labels.len(),
                "tld {tld} misaligned"
            );
            assert!(labels
                .lines
                .iter()
                .any(|l| l.label == BlockLabel::Registrant));
            assert!(r.domain.ends_with(&format!(".{tld}")));
        }
    }

    #[test]
    fn tld_samples_are_deterministic() {
        let a = tld_sample("coop", 7).unwrap();
        let b = tld_sample("coop", 7).unwrap();
        assert_eq!(a.text(), b.text());
    }

    #[test]
    fn tld_templates_differ_from_each_other() {
        let mut texts: Vec<String> = Tld::TABLE2_TLDS
            .iter()
            .map(|t| tld_sample(t, 3).unwrap().text())
            .collect();
        let n = texts.len();
        texts.sort();
        texts.dedup();
        assert_eq!(texts.len(), n);
    }

    #[test]
    fn coop_uses_generic_contact_titles() {
        // The hostile property: the registrant block's titles never contain
        // the word "registrant"; only a type line distinguishes blocks.
        let r = tld_sample("coop", 5).unwrap();
        let text = r.text();
        assert!(text.contains("Contact Type: registrant"));
        assert!(text.contains("Contact Type: admin"));
        let reg_lines: Vec<&crate::style::RenderedLine> = r
            .lines
            .iter()
            .filter(|l| l.block == Some(BlockLabel::Registrant))
            .collect();
        assert!(reg_lines.len() >= 10);
        assert!(reg_lines
            .iter()
            .skip(1)
            .all(|l| l.text.starts_with("Contact ")));
    }
}
