//! The top-level corpus generator.
//!
//! [`CorpusGenerator`] is a seeded iterator of [`GeneratedDomain`]s. Each
//! domain combines a creation year (Figure 4a), a registrar (Table 5,
//! year-blended), a registrant country (Table 3 / Figure 4b, further
//! shaped by the registrar's own mix per Figure 5), optional privacy
//! protection (Figure 4b adoption, registrar-specific services per
//! Tables 6–7), occasional brand-company ownership (Table 4), and the
//! registrar's template family rendered into a thick record with full
//! ground truth — plus the matching Verisign-style **thin** record for the
//! crawler.

use crate::distributions;
use crate::drift;
use crate::entity::{self, gen_entity};
use crate::families;
use crate::registrars::{Registrar, RegistrarDirectory};
use crate::style::{ContactFacts, DomainFacts, RenderedRecord, SimpleDate, Template};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{HashMap, HashSet};
use whois_model::{BlockLabel, LabeledRecord, RawRecord, RegistrantLabel};

/// Configuration of a corpus run.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Master seed; identical configs generate identical corpora.
    pub seed: u64,
    /// Number of domains to generate.
    pub count: usize,
    /// Fraction of domains rendered through a drift-mutated variant of
    /// their registrar's template (schema-change experiments; default 0).
    pub drift_fraction: f64,
    /// Seed of the drift mutation itself, independent of `seed`: batches
    /// generated with different master seeds but the same `drift_seed`
    /// see the *same* schema change — a registrar redesigns its format
    /// once, then every record it sponsors shows the new layout.
    pub drift_seed: u64,
    /// TLD to generate under (`"com"` unless exercising Table 2).
    pub tld: String,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 0x_c0ffee,
            count: 1000,
            drift_fraction: 0.0,
            drift_seed: 0xd41f7,
            tld: "com".to_string(),
        }
    }
}

impl GenConfig {
    /// Convenience constructor.
    pub fn new(seed: u64, count: usize) -> Self {
        GenConfig {
            seed,
            count,
            ..Default::default()
        }
    }
}

/// One generated domain with facts, rendered record, and ground truth.
#[derive(Clone, Debug)]
pub struct GeneratedDomain {
    /// All underlying facts (the survey's ground truth).
    pub facts: DomainFacts,
    /// The sponsoring registrar.
    pub registrar: &'static Registrar,
    /// The rendered thick record with per-line labels.
    pub rendered: RenderedRecord,
    /// Registrant country ISO code before any privacy substitution
    /// (empty = unknown). What the *record* shows is in `facts`.
    pub true_country: &'static str,
    /// Whether a drift-mutated template was used.
    pub drifted: bool,
}

impl GeneratedDomain {
    /// The thick record as seen on the wire.
    pub fn raw(&self) -> RawRecord {
        self.rendered.to_raw()
    }

    /// First-level ground truth.
    pub fn block_labels(&self) -> LabeledRecord<BlockLabel> {
        self.rendered.block_labels()
    }

    /// Second-level (registrant sub-field) ground truth.
    pub fn registrant_labels(&self) -> LabeledRecord<RegistrantLabel> {
        self.rendered.registrant_labels()
    }

    /// The Verisign-style thin record for this domain (what the `com`
    /// registry returns; §2.2).
    pub fn thin_text(&self) -> String {
        let f = &self.facts;
        let mut s = String::new();
        s.push_str("Whois Server Version 2.0\n\n");
        s.push_str(
            "Domain names in the .com and .net domains can now be registered\n\
             with many different competing registrars. Go to http://www.internic.net\n\
             for detailed information.\n\n",
        );
        s.push_str(&format!("   Domain Name: {}\n", f.domain.to_uppercase()));
        s.push_str(&format!(
            "   Registrar: {}\n",
            f.registrar_name.to_uppercase()
        ));
        s.push_str(&format!("   Sponsoring Registrar IANA ID: {}\n", f.iana_id));
        s.push_str(&format!("   Whois Server: {}\n", f.whois_server));
        s.push_str(&format!("   Referral URL: {}\n", f.registrar_url));
        for ns in &f.name_servers {
            s.push_str(&format!("   Name Server: {}\n", ns.to_uppercase()));
        }
        for st in &f.statuses {
            s.push_str(&format!("   Status: {st}\n"));
        }
        s.push_str(&format!(
            "   Updated Date: {}\n",
            f.updated.render(crate::style::DateStyle::DayMonYear)
        ));
        s.push_str(&format!(
            "   Creation Date: {}\n",
            f.created.render(crate::style::DateStyle::DayMonYear)
        ));
        s.push_str(&format!(
            "   Expiration Date: {}\n",
            f.expires.render(crate::style::DateStyle::DayMonYear)
        ));
        s.push_str("\n>>> Last update of whois database: 2015-02-06T10:00:00Z <<<\n");
        s
    }
}

/// Seeded iterator of generated domains.
pub struct CorpusGenerator {
    cfg: GenConfig,
    rng: ChaCha8Rng,
    directory: RegistrarDirectory,
    templates: HashMap<String, Template>,
    drifted_templates: HashMap<String, Template>,
    seen_domains: HashSet<String>,
    produced: usize,
    next_contact_id: u64,
}

impl CorpusGenerator {
    /// Create a generator for `cfg`.
    pub fn new(cfg: GenConfig) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut templates = HashMap::new();
        for t in families::com_families() {
            templates.insert(t.family.clone(), t);
        }
        CorpusGenerator {
            rng,
            directory: RegistrarDirectory::new(),
            templates,
            drifted_templates: HashMap::new(),
            seen_domains: HashSet::new(),
            produced: 0,
            next_contact_id: 1,
            cfg,
        }
    }

    /// The registrar directory in use.
    pub fn directory(&self) -> &RegistrarDirectory {
        &self.directory
    }

    fn fresh_domain_name(&mut self) -> String {
        for _ in 0..8 {
            let candidate = entity::gen_domain_name(&mut self.rng, &self.cfg.tld);
            if self.seen_domains.insert(candidate.clone()) {
                return candidate;
            }
        }
        // Guaranteed-unique fallback.
        let candidate = format!(
            "{}{}.{}",
            entity::gen_domain_name(&mut self.rng, "x")
                .strip_suffix(".x")
                .unwrap(),
            self.produced,
            self.cfg.tld
        );
        self.seen_domains.insert(candidate.clone());
        candidate
    }

    fn contact_from_entity(&mut self, e: &entity::Entity, registrar: &Registrar) -> ContactFacts {
        let id = format!(
            "{}{:08X}",
            registrar
                .name
                .chars()
                .filter(|c| c.is_ascii_uppercase())
                .take(3)
                .collect::<String>(),
            self.next_contact_id
        );
        self.next_contact_id += 1;
        ContactFacts {
            id,
            name: e.name.clone(),
            org: e.org.clone(),
            street: e.street.clone(),
            street2: e.street2.clone(),
            city: e.city.clone(),
            state: e.state.clone(),
            postcode: e.postcode.clone(),
            country_name: if e.country_code.is_empty() {
                String::new()
            } else {
                e.country_name.clone()
            },
            country_code: e.country_code.to_string(),
            phone: e.phone.clone(),
            fax: e.fax.clone(),
            email: e.email.clone(),
        }
    }

    /// Replace a contact with a privacy-proxy identity.
    fn privacy_contact(&mut self, service: &str, domain: &str) -> ContactFacts {
        let id = format!("PP{:08X}", self.next_contact_id);
        self.next_contact_id += 1;
        let service_domain = format!(
            "{}.example",
            service
                .to_lowercase()
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
        );
        ContactFacts {
            id,
            name: "Registration Private".into(),
            org: Some(service.to_string()),
            street: "14455 N. Hayden Road".into(),
            street2: Some("Suite 219".into()),
            city: "Scottsdale".into(),
            state: "AZ".into(),
            postcode: "85260".into(),
            country_name: "United States".into(),
            country_code: "US".into(),
            phone: "+1.4806242599".into(),
            fax: None,
            email: format!("{}@{}", domain.replace('.', "-"), service_domain),
        }
    }

    fn sample_dates(&mut self) -> (SimpleDate, SimpleDate, SimpleDate) {
        let year = distributions::sample_year(&mut self.rng);
        let created = SimpleDate::new(
            year,
            self.rng.random_range(1..=12),
            self.rng.random_range(1..=28),
        );
        let updated_year = self.rng.random_range(created.y..=2014).max(created.y);
        let updated = SimpleDate::new(
            updated_year,
            self.rng.random_range(1..=12),
            self.rng.random_range(1..=28),
        );
        // Registered domains in the Feb-2015 zone must not be expired.
        let expires = SimpleDate::new(
            2015 + self.rng.random_range(0..=2),
            self.rng.random_range(3..=12),
            created.d,
        );
        (created, updated, expires)
    }

    /// Generate the next domain.
    fn generate_one(&mut self) -> GeneratedDomain {
        let (created, updated, expires) = self.sample_dates();
        let u: f64 = self.rng.random();
        let registrar = self.directory.sample(created.y, u);

        // Country: blend of the global per-year distribution (Table 3 /
        // Figure 4b) and the registrar's own mix (Figure 5), weighted by
        // how "national" the registrar is.
        let true_country: &'static str = if self.rng.random_bool(registrar.mix_weight) {
            *distributions::weighted_choice(registrar.country_mix, self.rng.random())
        } else {
            distributions::sample_country(&mut self.rng, created.y)
        };

        let domain = self.fresh_domain_name();

        // Registrant entity (or brand company portfolio domain).
        let brand_total: f64 = distributions::BRAND_COMPANIES.iter().map(|(_, w)| w).sum();
        let is_brand = self.rng.random_bool((brand_total / 1e6).min(1.0));
        let mut registrant_entity = gen_entity(&mut self.rng, true_country);
        if is_brand {
            let brand =
                *distributions::weighted_choice(distributions::BRAND_COMPANIES, self.rng.random());
            registrant_entity.org = Some(brand.to_string());
            registrant_entity.name = "Domain Administrator".into();
        }
        // Records with unknown country omit the country fields.
        let mut registrant = self.contact_from_entity(&registrant_entity, registrar);
        if true_country.is_empty() {
            registrant.country_code = String::new();
            registrant.country_name = String::new();
        }

        // Privacy protection: year-level adoption scaled by the
        // registrar's own propensity relative to the global ~20%.
        let rate =
            (distributions::privacy_rate(created.y) * registrar.privacy_rate / 0.20).min(0.95);
        let privacy_service = if !is_brand && self.rng.random_bool(rate) {
            Some(
                (*distributions::weighted_choice(registrar.privacy_services, self.rng.random()))
                    .to_string(),
            )
        } else {
            None
        };
        if let Some(service) = &privacy_service {
            let service = service.clone();
            registrant = self.privacy_contact(&service, &domain);
        }

        // Admin/tech usually mirror the registrant.
        let admin = if self.rng.random_bool(0.85) {
            Some(if self.rng.random_bool(0.75) {
                registrant.clone()
            } else {
                let e = gen_entity(&mut self.rng, true_country);
                self.contact_from_entity(&e, registrar)
            })
        } else {
            None
        };
        let tech = admin.clone().filter(|_| self.rng.random_bool(0.9));

        let ns_count = self.rng.random_range(2..=3);
        let sld = domain.split('.').next().unwrap_or("x").to_string();
        let name_servers: Vec<String> = (1..=ns_count)
            .map(|i| {
                if self.rng.random_bool(0.5) {
                    format!("ns{i}.{domain}")
                } else {
                    format!("ns{i}.{sld}-dns.net")
                }
            })
            .collect();
        let mut statuses = vec!["clientTransferProhibited".to_string()];
        if self.rng.random_bool(0.3) {
            statuses.push("clientDeleteProhibited".to_string());
        }

        let facts = DomainFacts {
            domain: domain.clone(),
            registrar_name: registrar.name.to_string(),
            whois_server: registrar.whois_server.to_string(),
            iana_id: registrar.iana_id,
            abuse_email: format!(
                "abuse@{}",
                registrar.whois_server.trim_start_matches("whois.")
            ),
            abuse_phone: "+1.5555551212".into(),
            registrar_url: registrar.url.to_string(),
            created,
            updated,
            expires,
            name_servers,
            statuses,
            registrant,
            admin,
            tech,
            billing: None,
            privacy_service,
        };

        // Render, through a drifted template for the configured fraction.
        let drifted = self.rng.random_bool(self.cfg.drift_fraction);
        let rendered = if drifted {
            let family = registrar.family;
            if !self.drifted_templates.contains_key(family) {
                let base = self.templates.get(family).expect("family exists").clone();
                let mutated = drift::mutate(&base, self.cfg.drift_seed);
                self.drifted_templates.insert(family.to_string(), mutated);
            }
            self.drifted_templates[family].render(&facts)
        } else {
            self.templates[registrar.family].render(&facts)
        };

        self.produced += 1;
        GeneratedDomain {
            facts,
            registrar,
            rendered,
            true_country,
            drifted,
        }
    }
}

impl Iterator for CorpusGenerator {
    type Item = GeneratedDomain;

    fn next(&mut self) -> Option<GeneratedDomain> {
        if self.produced >= self.cfg.count {
            return None;
        }
        Some(self.generate_one())
    }
}

/// Generate the whole corpus into memory (convenience for tests and small
/// experiments; the survey pipeline streams instead).
pub fn generate_corpus(cfg: GenConfig) -> Vec<GeneratedDomain> {
    CorpusGenerator::new(cfg).collect()
}

/// A stepwise drift schedule for closed-loop harnesses: traffic starts
/// clean, then a registrar schema change (§2.3) ramps in linearly over
/// `ramp` batches and holds at `peak` — the timeline the drift monitor
/// and retrain loop are exercised against.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftRamp {
    /// Batches of clean (pre-drift) traffic.
    pub clean: usize,
    /// Batches over which the drifted fraction rises linearly to `peak`.
    pub ramp: usize,
    /// Drifted fraction held once the ramp completes (clamped to [0, 1]).
    pub peak: f64,
}

impl DriftRamp {
    /// Construct a ramp; `peak` is clamped into `[0, 1]`.
    pub fn new(clean: usize, ramp: usize, peak: f64) -> Self {
        DriftRamp {
            clean,
            ramp,
            peak: peak.clamp(0.0, 1.0),
        }
    }

    /// The drifted fraction in effect for batch `batch` (0-based).
    pub fn fraction_at(&self, batch: usize) -> f64 {
        if batch < self.clean {
            0.0
        } else if self.ramp == 0 || batch >= self.clean + self.ramp {
            self.peak
        } else {
            self.peak * (batch - self.clean + 1) as f64 / self.ramp as f64
        }
    }

    /// A [`GenConfig`] for batch `batch`: a batch-distinct seed (so each
    /// batch carries fresh domains) with this ramp's drift fraction.
    pub fn config_at(&self, base_seed: u64, count: usize, batch: usize) -> GenConfig {
        GenConfig {
            drift_fraction: self.fraction_at(batch),
            ..GenConfig::new(base_seed.wrapping_add(batch as u64), count)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_corpus(GenConfig::new(7, 50));
        let b = generate_corpus(GenConfig::new(7, 50));
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.facts.domain, y.facts.domain);
            assert_eq!(x.rendered.text(), y.rendered.text());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_corpus(GenConfig::new(1, 10));
        let b = generate_corpus(GenConfig::new(2, 10));
        assert_ne!(
            a.iter().map(|d| d.facts.domain.clone()).collect::<Vec<_>>(),
            b.iter().map(|d| d.facts.domain.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn domains_are_unique() {
        let corpus = generate_corpus(GenConfig::new(3, 2000));
        let set: HashSet<_> = corpus.iter().map(|d| d.facts.domain.clone()).collect();
        assert_eq!(set.len(), corpus.len());
    }

    #[test]
    fn ground_truth_aligns_with_chunker() {
        for d in generate_corpus(GenConfig::new(11, 200)) {
            let raw = d.raw();
            assert_eq!(
                raw.lines().len(),
                d.block_labels().len(),
                "domain {} misaligned",
                d.facts.domain
            );
        }
    }

    #[test]
    fn thin_records_reference_registrar_server() {
        let corpus = generate_corpus(GenConfig::new(5, 20));
        for d in corpus {
            let thin = d.thin_text();
            assert!(thin.contains(&format!("Whois Server: {}", d.registrar.whois_server)));
            assert!(thin.contains(&d.facts.domain.to_uppercase()));
            assert!(thin.contains("Creation Date:"));
        }
    }

    #[test]
    fn privacy_domains_have_proxy_registrant() {
        let corpus = generate_corpus(GenConfig::new(13, 3000));
        let private: Vec<_> = corpus
            .iter()
            .filter(|d| d.facts.privacy_service.is_some())
            .collect();
        assert!(
            !private.is_empty(),
            "some privacy-protected domains expected"
        );
        for d in &private {
            let org = d.facts.registrant.org.as_deref().unwrap_or("");
            assert_eq!(org, d.facts.privacy_service.as_deref().unwrap());
            assert!(d.facts.registrant.email.contains("@"));
        }
        // Adoption should be meaningful but minority overall.
        let rate = private.len() as f64 / corpus.len() as f64;
        assert!((0.05..0.40).contains(&rate), "privacy rate {rate}");
    }

    #[test]
    fn registrar_share_is_roughly_calibrated() {
        let corpus = generate_corpus(GenConfig::new(17, 4000));
        let godaddy = corpus
            .iter()
            .filter(|d| d.registrar.name.starts_with("GoDaddy"))
            .count() as f64
            / corpus.len() as f64;
        assert!(
            (godaddy - 0.34).abs() < 0.05,
            "GoDaddy share {godaddy} far from Table 5"
        );
    }

    #[test]
    fn unknown_country_records_omit_country() {
        let corpus = generate_corpus(GenConfig::new(19, 3000));
        let unknown: Vec<_> = corpus
            .iter()
            .filter(|d| d.true_country.is_empty() && d.facts.privacy_service.is_none())
            .collect();
        assert!(!unknown.is_empty());
        for d in unknown {
            assert!(d.facts.registrant.country_code.is_empty());
            assert!(!d.rendered.text().contains("Country: \n"));
        }
    }

    #[test]
    fn drift_fraction_produces_drifted_records() {
        let cfg = GenConfig {
            drift_fraction: 0.5,
            ..GenConfig::new(23, 400)
        };
        let corpus = generate_corpus(cfg);
        let drifted = corpus.iter().filter(|d| d.drifted).count();
        assert!(
            (100..300).contains(&drifted),
            "drifted count {drifted} not near half"
        );
        // Drifted and undrifted records from the same registrar differ in
        // format.
        let by_reg: HashMap<&str, Vec<&GeneratedDomain>> =
            corpus.iter().fold(HashMap::new(), |mut m, d| {
                m.entry(d.registrar.name).or_default().push(d);
                m
            });
        let mut compared = false;
        for domains in by_reg.values() {
            let d0 = domains.iter().find(|d| d.drifted);
            let u0 = domains.iter().find(|d| !d.drifted);
            if let (Some(d), Some(u)) = (d0, u0) {
                // Compare titles only (values differ anyway): first line.
                let dt = d.rendered.text();
                let ut = u.rendered.text();
                assert_ne!(dt, ut);
                compared = true;
            }
        }
        assert!(compared);
    }

    #[test]
    fn drift_ramp_schedule_is_clean_then_linear_then_held() {
        let ramp = DriftRamp::new(3, 4, 0.8);
        assert_eq!(ramp.fraction_at(0), 0.0);
        assert_eq!(ramp.fraction_at(2), 0.0, "clean phase");
        assert!((ramp.fraction_at(3) - 0.2).abs() < 1e-12, "first ramp step");
        assert!((ramp.fraction_at(6) - 0.8).abs() < 1e-12, "ramp completes");
        assert_eq!(ramp.fraction_at(100), 0.8, "held at peak");
        // Monotone non-decreasing throughout.
        for b in 1..20 {
            assert!(ramp.fraction_at(b) >= ramp.fraction_at(b - 1));
        }
        // Degenerate ramps are well-defined.
        assert_eq!(DriftRamp::new(0, 0, 2.0).fraction_at(0), 1.0, "clamped");
        let cfg = ramp.config_at(100, 10, 5);
        assert_eq!(cfg.seed, 105);
        assert_eq!(cfg.count, 10);
        assert!((cfg.drift_fraction - 0.6).abs() < 1e-12);
    }

    #[test]
    fn creation_years_span_the_window() {
        let corpus = generate_corpus(GenConfig::new(29, 3000));
        let years: HashSet<i32> = corpus.iter().map(|d| d.facts.created.y).collect();
        assert!(years.contains(&2014));
        assert!(years.iter().any(|&y| y < 2000));
        assert!(corpus.iter().all(|d| d.facts.expires.y >= 2015));
    }
}
