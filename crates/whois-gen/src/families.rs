//! Concrete `.com` registrar template families.
//!
//! `com`'s thin registry lets every registrar format thick records as it
//! pleases; the paper found 400+ registrar-specific templates in
//! deft-whois for `com` alone. This module reproduces that diversity with
//! eight structural **builders** (modern ICANN-uniform, legacy
//! label-free blocks, contextual blocks, ellipsis, tabbed, key=value,
//! bracketed, shouting-caps) crossed with title-synonym/boilerplate/date
//! variants, yielding 40+ distinct families.
//!
//! All families are deterministic data — no RNG — so a family name is a
//! stable identifier across runs.

use crate::style::{ContactField, DateStyle, Element, Field, Template};
use whois_model::{BlockLabel, ContactKind};

/// Legal boilerplate variants (all lines alphanumeric ⇒ labelable `null`).
pub const BOILERPLATE_SHORT: &[&str] = &[
    "The data in this whois database is provided for information purposes only.",
    "By submitting a whois query you agree to abide by this policy.",
];

pub const BOILERPLATE_LONG: &[&str] = &[
    "TERMS OF USE: You are not authorized to access or query our Whois",
    "database through the use of electronic processes that are high-volume and",
    "automated except as reasonably necessary to register domain names or",
    "modify existing registrations. Whois database is provided as a service to",
    "the internet community. The data is for information purposes only and",
    "we do not guarantee its accuracy. By submitting this query you agree",
    "to abide by the following terms of use. You agree that you may use this",
    "data only for lawful purposes and that under no circumstances will you",
    "use this data to allow or otherwise support the transmission of mass",
    "unsolicited commercial advertising or solicitations via e-mail or spam.",
];

pub const BOILERPLATE_NOTICE: &[&str] = &[
    "NOTICE: The expiration date displayed in this record is the date the",
    "registrar's sponsorship of the domain name registration in the registry is",
    "currently set to expire. Please consult the registrar to learn more.",
];

pub const BOILERPLATE_PRIVACY: &[&str] = &[
    "Some of the data in this record has been redacted by a privacy service.",
    "To contact the domain holder please use the listed proxy email address.",
    "Learn more about our privacy services at our website.",
];

fn titled(title: &str, sep: &str, field: Field) -> Element {
    Element::Titled {
        title: title.to_string(),
        sep: sep.to_string(),
        field,
        indent: 0,
    }
}

fn titled_in(indent: usize, title: &str, sep: &str, field: Field) -> Element {
    Element::Titled {
        title: title.to_string(),
        sep: sep.to_string(),
        field,
        indent,
    }
}

fn bare(indent: usize, field: Field) -> Element {
    Element::Bare { field, indent }
}

fn reg(cf: ContactField) -> Field {
    Field::Contact(ContactKind::Registrant, cf)
}

fn contact(kind: ContactKind, cf: ContactField) -> Field {
    Field::Contact(kind, cf)
}

/// Title synonyms per contact block prefix for the ICANN-uniform builder.
struct UniformTitles {
    registrant: &'static str,
    admin: &'static str,
    tech: &'static str,
    created: &'static str,
    updated: &'static str,
    expires: &'static str,
    org: &'static str,
    email: &'static str,
    postcode: &'static str,
}

/// The modern 2013-RAA-style layout used (with small mutations) by most
/// large registrars.
fn icann_uniform(
    name: &str,
    dates: DateStyle,
    t: &UniformTitles,
    with_admin_tech: bool,
    boiler: &'static [&'static str],
    sep: &str,
) -> Template {
    let mut elements = vec![
        titled("Domain Name", sep, Field::DomainName { upper: false }),
        titled("Registrar WHOIS Server", sep, Field::WhoisServer),
        titled("Registrar URL", sep, Field::RegistrarUrl),
        titled(t.updated, sep, Field::Updated),
        titled(t.created, sep, Field::Created),
        titled(t.expires, sep, Field::Expires),
        titled("Registrar", sep, Field::RegistrarName),
        titled("Registrar IANA ID", sep, Field::IanaId),
        titled("Registrar Abuse Contact Email", sep, Field::AbuseEmail),
        titled("Registrar Abuse Contact Phone", sep, Field::AbusePhone),
        titled("Domain Status", sep, Field::Status(0)),
        titled("Domain Status", sep, Field::Status(1)),
    ];
    let contact_block = |kind: ContactKind, prefix: &str, elements: &mut Vec<Element>| {
        elements.push(titled(
            &format!("{prefix} ID"),
            sep,
            contact(kind, ContactField::Id),
        ));
        elements.push(titled(
            &format!("{prefix} Name"),
            sep,
            contact(kind, ContactField::Name),
        ));
        elements.push(titled(
            &format!("{prefix} {}", t.org),
            sep,
            contact(kind, ContactField::Org),
        ));
        elements.push(titled(
            &format!("{prefix} Street"),
            sep,
            contact(kind, ContactField::Street1),
        ));
        elements.push(titled(
            &format!("{prefix} Street"),
            sep,
            contact(kind, ContactField::Street2),
        ));
        elements.push(titled(
            &format!("{prefix} City"),
            sep,
            contact(kind, ContactField::City),
        ));
        elements.push(titled(
            &format!("{prefix} State/Province"),
            sep,
            contact(kind, ContactField::State),
        ));
        elements.push(titled(
            &format!("{prefix} {}", t.postcode),
            sep,
            contact(kind, ContactField::Postcode),
        ));
        elements.push(titled(
            &format!("{prefix} Country"),
            sep,
            contact(kind, ContactField::CountryCode),
        ));
        elements.push(titled(
            &format!("{prefix} Phone"),
            sep,
            contact(kind, ContactField::Phone),
        ));
        elements.push(titled(
            &format!("{prefix} Fax"),
            sep,
            contact(kind, ContactField::Fax),
        ));
        elements.push(titled(
            &format!("{prefix} {}", t.email),
            sep,
            contact(kind, ContactField::Email),
        ));
    };
    contact_block(ContactKind::Registrant, t.registrant, &mut elements);
    if with_admin_tech {
        contact_block(ContactKind::Admin, t.admin, &mut elements);
        contact_block(ContactKind::Tech, t.tech, &mut elements);
    }
    elements.push(titled("Name Server", sep, Field::NameServer(0)));
    elements.push(titled("Name Server", sep, Field::NameServer(1)));
    elements.push(titled("Name Server", sep, Field::NameServer(2)));
    elements.push(titled("DNSSEC", sep, Field::Dnssec));
    elements.push(Element::Blank);
    elements.push(Element::Boilerplate(boiler));
    Template {
        family: name.to_string(),
        dates,
        elements,
    }
}

/// Legacy Network-Solutions-style format: label-free contact blocks.
fn legacy_blocks(
    name: &str,
    dates: DateStyle,
    created_title: &str,
    expires_title: &str,
    with_org_line: bool,
    boiler: &'static [&'static str],
) -> Template {
    let mut elements = vec![
        Element::Boilerplate(boiler),
        Element::Blank,
        titled("Registration Service Provider", ": ", Field::RegistrarName),
        titled("Registrar WHOIS Server", ": ", Field::WhoisServer),
        Element::Blank,
        Element::Header {
            text: "Registrant:".into(),
            of: ContactKind::Registrant,
        },
    ];
    if with_org_line {
        elements.push(bare(3, reg(ContactField::Org)));
    }
    elements.push(bare(3, reg(ContactField::Name)));
    elements.push(bare(3, reg(ContactField::Street1)));
    elements.push(bare(3, reg(ContactField::Street2)));
    elements.push(bare(3, reg(ContactField::CityStateZip)));
    elements.push(bare(3, reg(ContactField::CountryName)));
    elements.push(Element::Blank);
    elements.extend([
        titled_in(3, "Domain Name", ": ", Field::DomainName { upper: true }),
        Element::Blank,
        Element::Header {
            text: "Administrative Contact:".into(),
            of: ContactKind::Admin,
        },
        bare(6, contact(ContactKind::Admin, ContactField::Name)),
        bare(6, contact(ContactKind::Admin, ContactField::Email)),
        bare(6, contact(ContactKind::Admin, ContactField::Phone)),
        Element::Header {
            text: "Technical Contact:".into(),
            of: ContactKind::Tech,
        },
        bare(6, contact(ContactKind::Tech, ContactField::Name)),
        bare(6, contact(ContactKind::Tech, ContactField::Email)),
        bare(6, contact(ContactKind::Tech, ContactField::Phone)),
        Element::Blank,
        titled_in(3, created_title, ": ", Field::Created),
        titled_in(3, expires_title, ": ", Field::Expires),
        Element::Blank,
        Element::Literal {
            text: "   Domain servers in listed order:".into(),
            label: BlockLabel::Domain,
        },
        bare(6, Field::NameServer(0)),
        bare(6, Field::NameServer(1)),
        bare(6, Field::NameServer(2)),
    ]);
    Template {
        family: name.to_string(),
        dates,
        elements,
    }
}

/// Contextual block format: a header then *titled* sub-fields, indented.
fn contextual(name: &str, dates: DateStyle, sep: &str, owner_word: &str) -> Template {
    let sub = |kind: ContactKind, title: &str, cf: ContactField| {
        titled_in(4, title, sep, contact(kind, cf))
    };
    Template {
        family: name.to_string(),
        dates,
        elements: vec![
            Element::Banner("WHOIS information".into()),
            Element::Blank,
            titled("Domain", sep, Field::DomainName { upper: false }),
            titled("Registrar", sep, Field::RegistrarName),
            titled("Whois Server", sep, Field::WhoisServer),
            titled("Registered", sep, Field::Created),
            titled("Modified", sep, Field::Updated),
            titled("Expires", sep, Field::Expires),
            titled("Status", sep, Field::Status(0)),
            titled("Nserver", sep, Field::NameServer(0)),
            titled("Nserver", sep, Field::NameServer(1)),
            Element::Blank,
            Element::Header {
                text: format!("{owner_word}:"),
                of: ContactKind::Registrant,
            },
            sub(ContactKind::Registrant, "Name", ContactField::Name),
            sub(ContactKind::Registrant, "Organisation", ContactField::Org),
            sub(ContactKind::Registrant, "Address", ContactField::Street1),
            sub(ContactKind::Registrant, "City", ContactField::City),
            sub(
                ContactKind::Registrant,
                "Postal Code",
                ContactField::Postcode,
            ),
            sub(
                ContactKind::Registrant,
                "Country",
                ContactField::CountryCode,
            ),
            sub(ContactKind::Registrant, "Phone", ContactField::Phone),
            sub(ContactKind::Registrant, "Email", ContactField::Email),
            Element::Blank,
            Element::Header {
                text: "Admin Contact:".into(),
                of: ContactKind::Admin,
            },
            sub(ContactKind::Admin, "Name", ContactField::Name),
            sub(ContactKind::Admin, "Email", ContactField::Email),
            Element::Blank,
            Element::Boilerplate(BOILERPLATE_SHORT),
        ],
    }
}

/// Ellipsis separators (`Record expires on..........2016-01-01`).
fn ellipsis(name: &str, dates: DateStyle) -> Template {
    let dots = "..........";
    Template {
        family: name.to_string(),
        dates,
        elements: vec![
            Element::Banner("Registration Service Provided By".into()),
            titled("Domain name", dots, Field::DomainName { upper: false }),
            titled("Registrar of Record", dots, Field::RegistrarName),
            titled("Record created on", dots, Field::Created),
            titled("Record expires on", dots, Field::Expires),
            titled("Record last updated on", dots, Field::Updated),
            Element::Blank,
            Element::Header {
                text: "Registrant".into(),
                of: ContactKind::Registrant,
            },
            bare(4, reg(ContactField::Name)),
            bare(4, reg(ContactField::Org)),
            bare(4, reg(ContactField::Street1)),
            bare(4, reg(ContactField::City)),
            bare(4, reg(ContactField::Postcode)),
            bare(4, reg(ContactField::CountryName)),
            titled_in(4, "Phone", dots, reg(ContactField::Phone)),
            titled_in(4, "Email", dots, reg(ContactField::Email)),
            Element::Blank,
            titled("Domain servers", dots, Field::NameServer(0)),
            titled("Domain servers", dots, Field::NameServer(1)),
            Element::Blank,
            Element::Boilerplate(BOILERPLATE_NOTICE),
        ],
    }
}

/// Tab-separated titles.
fn tabbed(name: &str, dates: DateStyle) -> Template {
    Template {
        family: name.to_string(),
        dates,
        elements: vec![
            titled("domain", "\t", Field::DomainName { upper: false }),
            titled("registrar", "\t", Field::RegistrarName),
            titled("whois-server", "\t", Field::WhoisServer),
            titled("created", "\t", Field::Created),
            titled("changed", "\t", Field::Updated),
            titled("expires", "\t", Field::Expires),
            titled("nserver", "\t", Field::NameServer(0)),
            titled("nserver", "\t", Field::NameServer(1)),
            titled("status", "\t", Field::Status(0)),
            Element::Blank,
            titled("owner-name", "\t", reg(ContactField::Name)),
            titled("owner-org", "\t", reg(ContactField::Org)),
            titled("owner-street", "\t", reg(ContactField::Street1)),
            titled("owner-city", "\t", reg(ContactField::City)),
            titled("owner-zip", "\t", reg(ContactField::Postcode)),
            titled("owner-country", "\t", reg(ContactField::CountryCode)),
            titled("owner-phone", "\t", reg(ContactField::Phone)),
            titled("owner-email", "\t", reg(ContactField::Email)),
            Element::Blank,
            titled(
                "admin-name",
                "\t",
                contact(ContactKind::Admin, ContactField::Name),
            ),
            titled(
                "admin-email",
                "\t",
                contact(ContactKind::Admin, ContactField::Email),
            ),
            Element::Blank,
            Element::Boilerplate(BOILERPLATE_SHORT),
        ],
    }
}

/// `key = value` format.
fn key_equals(name: &str, dates: DateStyle) -> Template {
    let s = " = ";
    Template {
        family: name.to_string(),
        dates,
        elements: vec![
            Element::Banner("% This query returned 1 object".into()),
            titled("domain", s, Field::DomainName { upper: false }),
            titled("registrar", s, Field::RegistrarName),
            titled("created", s, Field::Created),
            titled("last-modified", s, Field::Updated),
            titled("expires", s, Field::Expires),
            titled("ns0", s, Field::NameServer(0)),
            titled("ns1", s, Field::NameServer(1)),
            Element::Blank,
            titled("registrant-id", s, reg(ContactField::Id)),
            titled("registrant-name", s, reg(ContactField::Name)),
            titled("registrant-organization", s, reg(ContactField::Org)),
            titled("registrant-street", s, reg(ContactField::Street1)),
            titled("registrant-city", s, reg(ContactField::City)),
            titled("registrant-state", s, reg(ContactField::State)),
            titled("registrant-zip", s, reg(ContactField::Postcode)),
            titled("registrant-country", s, reg(ContactField::CountryCode)),
            titled("registrant-phone", s, reg(ContactField::Phone)),
            titled("registrant-email", s, reg(ContactField::Email)),
            Element::Blank,
            Element::Boilerplate(BOILERPLATE_SHORT),
        ],
    }
}

/// Bracketed titles with no separator (`[Domain Name] EXAMPLE.COM`) — the
/// GMO/JPRS visual style.
fn bracketed(name: &str, dates: DateStyle) -> Template {
    let t = |title: &str, field: Field| titled(&format!("[{title}]"), " ", field);
    Template {
        family: name.to_string(),
        dates,
        elements: vec![
            t("Domain Name", Field::DomainName { upper: true }),
            Element::Blank,
            t("Registrar", Field::RegistrarName),
            t("Created on", Field::Created),
            t("Expires on", Field::Expires),
            t("Last updated on", Field::Updated),
            Element::Blank,
            t("Registrant Name", reg(ContactField::Name)),
            t("Registrant Organization", reg(ContactField::Org)),
            t("Registrant Address", reg(ContactField::Street1)),
            t("Registrant City", reg(ContactField::City)),
            t("Registrant Postal Code", reg(ContactField::Postcode)),
            t("Registrant Country", reg(ContactField::CountryName)),
            t("Registrant Email", reg(ContactField::Email)),
            t("Registrant Phone", reg(ContactField::Phone)),
            Element::Blank,
            t("Name Server", Field::NameServer(0)),
            t("Name Server", Field::NameServer(1)),
            Element::Blank,
            Element::Boilerplate(BOILERPLATE_SHORT),
        ],
    }
}

/// Numbered-field reseller format (`1. Domain Name: x`): the numbering
/// defeats naive title matching but the CRF's word features see through
/// it.
fn numbered(name: &str, dates: DateStyle) -> Template {
    let t = |i: usize, title: &str, field: Field| titled(&format!("{i}. {title}"), ": ", field);
    Template {
        family: name.to_string(),
        dates,
        elements: vec![
            Element::Banner("Whois lookup result".into()),
            t(1, "Domain Name", Field::DomainName { upper: false }),
            t(2, "Registrar", Field::RegistrarName),
            t(3, "Registration Date", Field::Created),
            t(4, "Expiration Date", Field::Expires),
            t(5, "Registrant Name", reg(ContactField::Name)),
            t(6, "Registrant Company", reg(ContactField::Org)),
            t(7, "Registrant Address", reg(ContactField::Street1)),
            t(8, "Registrant City", reg(ContactField::City)),
            t(9, "Registrant Postal Code", reg(ContactField::Postcode)),
            t(10, "Registrant Country", reg(ContactField::CountryCode)),
            t(11, "Registrant Phone", reg(ContactField::Phone)),
            t(12, "Registrant Email", reg(ContactField::Email)),
            t(13, "Name Server", Field::NameServer(0)),
            t(14, "Name Server", Field::NameServer(1)),
            Element::Blank,
            Element::Boilerplate(BOILERPLATE_SHORT),
        ],
    }
}

/// A thick record that opens with thin-registry-looking indented fields
/// and appends a contextual registrant tail — the hybrid shape some
/// resellers produce by concatenating both responses.
fn thin_plus_tail(name: &str, dates: DateStyle) -> Template {
    Template {
        family: name.to_string(),
        dates,
        elements: vec![
            Element::Banner("Whois Server Version 2.0".into()),
            Element::Blank,
            titled_in(3, "Domain Name", ": ", Field::DomainName { upper: true }),
            titled_in(3, "Registrar", ": ", Field::RegistrarName),
            titled_in(3, "Whois Server", ": ", Field::WhoisServer),
            titled_in(3, "Referral URL", ": ", Field::RegistrarUrl),
            titled_in(3, "Name Server", ": ", Field::NameServer(0)),
            titled_in(3, "Name Server", ": ", Field::NameServer(1)),
            titled_in(3, "Status", ": ", Field::Status(0)),
            titled_in(3, "Updated Date", ": ", Field::Updated),
            titled_in(3, "Creation Date", ": ", Field::Created),
            titled_in(3, "Expiration Date", ": ", Field::Expires),
            Element::Blank,
            Element::Header {
                text: "Registrant:".into(),
                of: ContactKind::Registrant,
            },
            bare(2, reg(ContactField::Name)),
            bare(2, reg(ContactField::Org)),
            bare(2, reg(ContactField::Street1)),
            bare(2, reg(ContactField::CityStateZip)),
            bare(2, reg(ContactField::CountryName)),
            titled_in(2, "Email", ": ", reg(ContactField::Email)),
            titled_in(2, "Tel", ": ", reg(ContactField::Phone)),
            Element::Blank,
            Element::Boilerplate(BOILERPLATE_NOTICE),
        ],
    }
}

/// ALL-CAPS titles (older reseller formats).
fn shouting(name: &str, dates: DateStyle) -> Template {
    Template {
        family: name.to_string(),
        dates,
        elements: vec![
            Element::Boilerplate(BOILERPLATE_NOTICE),
            Element::Blank,
            titled("DOMAIN NAME", ": ", Field::DomainName { upper: true }),
            titled("SPONSORING REGISTRAR", ": ", Field::RegistrarName),
            titled("CREATED DATE", ": ", Field::Created),
            titled("UPDATED DATE", ": ", Field::Updated),
            titled("EXPIRATION DATE", ": ", Field::Expires),
            titled("STATUS", ": ", Field::Status(0)),
            titled("NAMESERVER", ": ", Field::NameServer(0)),
            titled("NAMESERVER", ": ", Field::NameServer(1)),
            Element::Blank,
            titled("OWNER NAME", ": ", reg(ContactField::Name)),
            titled("OWNER ORGANIZATION", ": ", reg(ContactField::Org)),
            titled("OWNER STREET", ": ", reg(ContactField::Street1)),
            titled("OWNER CITY", ": ", reg(ContactField::City)),
            titled("OWNER STATE", ": ", reg(ContactField::State)),
            titled("OWNER POSTAL CODE", ": ", reg(ContactField::Postcode)),
            titled("OWNER COUNTRY", ": ", reg(ContactField::CountryCode)),
            titled("OWNER PHONE", ": ", reg(ContactField::Phone)),
            titled("OWNER EMAIL", ": ", reg(ContactField::Email)),
        ],
    }
}

/// All `.com` registrar families known to the generator.
///
/// Family names are stable identifiers; `registrars` assigns families to
/// registrars and `drift` derives mutated variants from them.
pub fn com_families() -> Vec<Template> {
    let mut out = Vec::new();

    // ICANN-uniform variants: the workhorse layout with per-registrar
    // title quirks, date styles, boilerplate and contact-block coverage.
    let uniform_variants: [(
        &str,
        DateStyle,
        UniformTitles,
        bool,
        &'static [&'static str],
        &str,
    ); 14] = [
        (
            "icann-standard",
            DateStyle::IsoT,
            UniformTitles {
                registrant: "Registrant",
                admin: "Admin",
                tech: "Tech",
                created: "Creation Date",
                updated: "Updated Date",
                expires: "Registrar Registration Expiration Date",
                org: "Organization",
                email: "Email",
                postcode: "Postal Code",
            },
            true,
            BOILERPLATE_LONG,
            ": ",
        ),
        (
            "icann-compact",
            DateStyle::Iso,
            UniformTitles {
                registrant: "Registrant",
                admin: "Admin",
                tech: "Tech",
                created: "Creation Date",
                updated: "Updated Date",
                expires: "Expiration Date",
                org: "Organization",
                email: "Email",
                postcode: "Postal Code",
            },
            false,
            BOILERPLATE_SHORT,
            ": ",
        ),
        (
            "icann-holder",
            DateStyle::IsoT,
            UniformTitles {
                registrant: "Holder",
                admin: "Administrative Contact",
                tech: "Technical Contact",
                created: "Created On",
                updated: "Last Updated On",
                expires: "Expiration Date",
                org: "Organisation",
                email: "E-mail",
                postcode: "Postal Code",
            },
            true,
            BOILERPLATE_SHORT,
            ": ",
        ),
        (
            "icann-space",
            DateStyle::IsoSpace,
            UniformTitles {
                registrant: "Registrant",
                admin: "Admin",
                tech: "Tech",
                created: "Registration Time",
                updated: "Update Time",
                expires: "Expiration Time",
                org: "Organization",
                email: "Email",
                postcode: "Zip Code",
            },
            true,
            BOILERPLATE_SHORT,
            ": ",
        ),
        (
            "icann-dmy",
            DateStyle::DayMonYear,
            UniformTitles {
                registrant: "Registrant Contact",
                admin: "Admin Contact",
                tech: "Tech Contact",
                created: "Created",
                updated: "Updated",
                expires: "Expires",
                org: "Company",
                email: "Email Address",
                postcode: "Zip",
            },
            true,
            BOILERPLATE_NOTICE,
            ": ",
        ),
        (
            "icann-slash",
            DateStyle::Slash,
            UniformTitles {
                registrant: "Registrant",
                admin: "Admin",
                tech: "Tech",
                created: "Domain Registration Date",
                updated: "Domain Last Updated Date",
                expires: "Domain Expiration Date",
                org: "Organization",
                email: "Email",
                postcode: "Postal Code",
            },
            true,
            BOILERPLATE_LONG,
            ": ",
        ),
        (
            "icann-dot-dates",
            DateStyle::Dot,
            UniformTitles {
                registrant: "Registrant",
                admin: "Administrative",
                tech: "Technical",
                created: "Created Date",
                updated: "Modified Date",
                expires: "Expires Date",
                org: "Org",
                email: "Mail",
                postcode: "Postcode",
            },
            false,
            BOILERPLATE_SHORT,
            ": ",
        ),
        (
            "icann-privacy-heavy",
            DateStyle::IsoT,
            UniformTitles {
                registrant: "Registrant",
                admin: "Admin",
                tech: "Tech",
                created: "Creation Date",
                updated: "Updated Date",
                expires: "Registry Expiry Date",
                org: "Organization",
                email: "Email",
                postcode: "Postal Code",
            },
            true,
            BOILERPLATE_PRIVACY,
            ": ",
        ),
        (
            "icann-owner",
            DateStyle::Iso,
            UniformTitles {
                registrant: "Owner",
                admin: "Admin",
                tech: "Tech",
                created: "Created",
                updated: "Changed",
                expires: "Expires",
                org: "Organization",
                email: "Email",
                postcode: "Postal Code",
            },
            false,
            BOILERPLATE_SHORT,
            ": ",
        ),
        (
            "icann-wide-sep",
            DateStyle::IsoT,
            UniformTitles {
                registrant: "Registrant",
                admin: "Admin",
                tech: "Tech",
                created: "Creation Date",
                updated: "Updated Date",
                expires: "Expiration Date",
                org: "Organization",
                email: "Email",
                postcode: "Postal Code",
            },
            true,
            BOILERPLATE_LONG,
            ":  ",
        ),
        (
            "icann-cn",
            DateStyle::IsoSpace,
            UniformTitles {
                registrant: "Registrant",
                admin: "Admin",
                tech: "Tech",
                created: "Registration Date",
                updated: "Update Date",
                expires: "Expiration Date",
                org: "Registrant Organization",
                email: "Contact Email",
                postcode: "ZIP Code",
            },
            false,
            BOILERPLATE_SHORT,
            ": ",
        ),
        (
            "icann-reseller",
            DateStyle::IsoT,
            UniformTitles {
                registrant: "Registrant",
                admin: "Admin",
                tech: "Tech",
                created: "Creation Date",
                updated: "Updated Date",
                expires: "Registrar Registration Expiration Date",
                org: "Organization",
                email: "Email",
                postcode: "Postal Code",
            },
            true,
            BOILERPLATE_NOTICE,
            ": ",
        ),
        (
            "icann-min",
            DateStyle::Iso,
            UniformTitles {
                registrant: "Registrant",
                admin: "Admin",
                tech: "Tech",
                created: "Created",
                updated: "Updated",
                expires: "Expires",
                org: "Organization",
                email: "Email",
                postcode: "Postal Code",
            },
            false,
            BOILERPLATE_SHORT,
            ": ",
        ),
        (
            "icann-de",
            DateStyle::Iso,
            UniformTitles {
                registrant: "Registrant",
                admin: "Admin-C",
                tech: "Tech-C",
                created: "Created",
                updated: "Last Update",
                expires: "Expires",
                org: "Organisation",
                email: "E-Mail",
                postcode: "PostalCode",
            },
            true,
            BOILERPLATE_SHORT,
            ": ",
        ),
    ];
    for (name, dates, titles, admin_tech, boiler, sep) in uniform_variants {
        out.push(icann_uniform(name, dates, &titles, admin_tech, boiler, sep));
    }

    // Legacy label-free block formats.
    out.push(legacy_blocks(
        "legacy-netsol",
        DateStyle::DayMonYear,
        "Record created on",
        "Record expires on",
        true,
        BOILERPLATE_LONG,
    ));
    out.push(legacy_blocks(
        "legacy-register",
        DateStyle::DayMonYear,
        "Created on",
        "Expires on",
        true,
        BOILERPLATE_NOTICE,
    ));
    out.push(legacy_blocks(
        "legacy-noorg",
        DateStyle::Slash,
        "Record created on",
        "Record expires on",
        false,
        BOILERPLATE_SHORT,
    ));
    out.push(legacy_blocks(
        "legacy-fastdomain",
        DateStyle::Iso,
        "Created",
        "Expires",
        true,
        BOILERPLATE_SHORT,
    ));

    // Contextual header + titled sub-fields.
    out.push(contextual(
        "ctx-registrant",
        DateStyle::Iso,
        ": ",
        "Registrant",
    ));
    out.push(contextual(
        "ctx-owner",
        DateStyle::DayMonYear,
        ": ",
        "Owner",
    ));
    out.push(contextual("ctx-holder", DateStyle::Dot, ": ", "Holder"));
    out.push(contextual("ctx-wide", DateStyle::Iso, " : ", "Registrant"));

    // Ellipsis, tab, key=value, bracketed, shouting.
    out.push(ellipsis("dots-pdr", DateStyle::DayMonYear));
    out.push(ellipsis("dots-directi", DateStyle::Iso));
    out.push(ellipsis("dots-long", DateStyle::Slash));
    out.push(tabbed("tab-joker", DateStyle::Iso));
    out.push(tabbed("tab-eu", DateStyle::Dot));
    out.push(tabbed("tab-compact", DateStyle::IsoSpace));
    out.push(key_equals("eq-ovh", DateStyle::Iso));
    out.push(key_equals("eq-nordic", DateStyle::Dot));
    out.push(key_equals("eq-min", DateStyle::DayMonYear));
    out.push(bracketed("bracket-gmo", DateStyle::Slash));
    out.push(bracketed("bracket-jp2", DateStyle::Iso));
    out.push(bracketed("bracket-mixed", DateStyle::IsoT));
    out.push(shouting("caps-reseller", DateStyle::Slash));
    out.push(shouting("caps-melbourne", DateStyle::DayMonYear));
    out.push(shouting("caps-min", DateStyle::Iso));

    // Quirkier shapes.
    out.push(numbered("numbered-reseller", DateStyle::Iso));
    out.push(numbered("numbered-asia", DateStyle::IsoSpace));
    out.push(thin_plus_tail("thinlike-hybrid", DateStyle::DayMonYear));
    out.push(thin_plus_tail("thinlike-hybrid2", DateStyle::Iso));

    out
}

/// Look up a family by name.
pub fn family_by_name(name: &str) -> Option<Template> {
    com_families().into_iter().find(|t| t.family == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::style::{DomainFacts, SimpleDate};

    fn facts() -> DomainFacts {
        let c = |tag: &str| crate::style::ContactFacts {
            id: format!("H{tag}1"),
            name: "Jane Roe".into(),
            org: Some("Blue Sky Ventures".into()),
            street: "12 Oak Ave".into(),
            street2: Some("Suite 9".into()),
            city: "Austin".into(),
            state: "TX".into(),
            postcode: "73301".into(),
            country_name: "United States".into(),
            country_code: "US".into(),
            phone: "+1.5125550147".into(),
            fax: Some("+1.5125550148".into()),
            email: "jane@example.net".into(),
        };
        DomainFacts {
            domain: "bluesky.com".into(),
            registrar_name: "eNom, Inc.".into(),
            whois_server: "whois.enom.com".into(),
            iana_id: 48,
            abuse_email: "abuse@enom.com".into(),
            abuse_phone: "+1.4252982646".into(),
            registrar_url: "http://www.enom.com".into(),
            created: SimpleDate::new(2009, 4, 15),
            updated: SimpleDate::new(2014, 4, 2),
            expires: SimpleDate::new(2015, 4, 15),
            name_servers: vec!["ns1.bluesky.com".into(), "ns2.bluesky.com".into()],
            statuses: vec!["clientTransferProhibited".into()],
            registrant: c("R"),
            admin: Some(c("A")),
            tech: Some(c("T")),
            billing: None,
            privacy_service: None,
        }
    }

    #[test]
    fn at_least_forty_families_with_unique_names() {
        let fams = com_families();
        assert!(fams.len() >= 40, "got {}", fams.len());
        let names: std::collections::HashSet<_> = fams.iter().map(|t| t.family.clone()).collect();
        assert_eq!(names.len(), fams.len(), "family names must be unique");
    }

    #[test]
    fn every_family_renders_all_six_blocks_or_documents_why() {
        let f = facts();
        for t in com_families() {
            let r = t.render(&f);
            let labels = r.block_labels();
            assert!(!labels.is_empty(), "{} rendered nothing", t.family);
            let have: std::collections::HashSet<_> = labels.lines.iter().map(|l| l.label).collect();
            use whois_model::BlockLabel::*;
            for needed in [Registrar, Domain, Date, Registrant] {
                assert!(
                    have.contains(&needed),
                    "family {} missing block {:?}",
                    t.family,
                    needed
                );
            }
        }
    }

    #[test]
    fn every_family_exposes_registrant_email_or_name() {
        let f = facts();
        for t in com_families() {
            let reg = t.render(&f).registrant_labels();
            assert!(
                !reg.is_empty(),
                "family {} has no registrant sub-block",
                t.family
            );
            let has_name = reg
                .lines
                .iter()
                .any(|l| l.label == whois_model::RegistrantLabel::Name);
            assert!(has_name, "family {} lacks registrant name", t.family);
        }
    }

    #[test]
    fn families_are_textually_distinct() {
        let f = facts();
        let mut rendered: Vec<String> =
            com_families().iter().map(|t| t.render(&f).text()).collect();
        let total = rendered.len();
        rendered.sort();
        rendered.dedup();
        assert_eq!(rendered.len(), total, "two families render identically");
    }

    #[test]
    fn family_lookup() {
        assert!(family_by_name("icann-standard").is_some());
        assert!(family_by_name("legacy-netsol").is_some());
        assert!(family_by_name("nope").is_none());
    }

    #[test]
    fn legacy_blocks_have_context_structure() {
        let t = family_by_name("legacy-netsol").unwrap();
        let r = t.render(&facts());
        let text = r.text();
        assert!(text.contains("Registrant:\n"));
        assert!(text.contains("Austin, TX 73301"));
        assert!(text.contains("Record created on"));
    }

    #[test]
    fn ground_truth_line_counts_match_chunker() {
        // The rendered ground truth must agree with what
        // `non_empty_lines` will extract from the raw text.
        let f = facts();
        for t in com_families() {
            let r = t.render(&f);
            let raw = r.to_raw();
            assert_eq!(
                raw.lines().len(),
                r.block_labels().len(),
                "family {} chunker/ground-truth mismatch",
                t.family
            );
        }
    }
}
