//! Synthetic domain blacklist (DBL) with the paper's abuse skew.
//!
//! §6.4 examines WHOIS features of `.com` domains on the Spamhaus DBL,
//! finding that registrants from Japan, China, and Vietnam — and
//! registrars eNom, GoDaddy, and GMO — are strongly over-represented
//! relative to the overall population (Tables 8–9). [`DblSampler`]
//! reproduces that skew: a domain's listing probability is the base rate
//! multiplied by a country boost and a registrar boost derived from the
//! paper's ratios.

use crate::corpus::GeneratedDomain;
use rand::Rng;
use std::collections::HashSet;

/// Country listing boost: Table 8's share over Table 3's 2014 share.
///
/// JP: 25.1% of the DBL vs 2.1% of 2014 registrations → ~12×.
fn country_boost(code: &str) -> f64 {
    match code {
        "JP" => 12.0,
        "CN" => 0.9,
        "VN" => 0.9,
        "US" => 1.05,
        "TR" => 0.45,
        "IN" => 0.4,
        "CA" => 0.5,
        "FR" => 0.45,
        "GB" => 0.3,
        "RU" => 0.45,
        "" => 0.9, // unknown-country records do appear on the DBL
        _ => 0.35,
    }
}

/// Registrar listing boost: Table 9's share over Table 5's 2014 share.
fn registrar_boost(abuse_weight: f64, share_2014: f64) -> f64 {
    if share_2014 <= 0.0 {
        1.0
    } else {
        (abuse_weight / share_2014).clamp(0.05, 15.0)
    }
}

/// Samples DBL membership for generated domains.
#[derive(Clone, Debug)]
pub struct DblSampler {
    /// Baseline listing probability for an un-boosted 2014 domain.
    pub base_rate: f64,
}

impl DblSampler {
    /// The paper's aggregate rate: 87K listed out of 25.9M 2014-created
    /// `.com` domains ≈ 0.34%. Tests use higher rates for statistical
    /// power.
    pub fn paper_rate() -> Self {
        DblSampler { base_rate: 0.0034 }
    }

    /// Custom base rate.
    pub fn with_rate(base_rate: f64) -> Self {
        DblSampler { base_rate }
    }

    /// Listing probability for one domain.
    ///
    /// Only 2014-created domains are eligible (the paper's §6.4 filters to
    /// 2014 to minimize expiration effects; 58.8% of listed `com` domains
    /// were created that year).
    pub fn listing_probability(&self, d: &GeneratedDomain) -> f64 {
        if d.facts.created.y != 2014 {
            return 0.0;
        }
        // The two boosts overlap (Japan's DBL presence *is* largely GMO),
        // so their product double-counts; capping the combined boost keeps
        // Table 8/9's proportions instead of overshooting them.
        let boost = (country_boost(d.true_country)
            * registrar_boost(d.registrar.abuse_weight, d.registrar.share_2014))
        .clamp(0.02, 8.0);
        (self.base_rate * boost).min(1.0)
    }

    /// Sample membership.
    pub fn is_listed<R: Rng + ?Sized>(&self, d: &GeneratedDomain, rng: &mut R) -> bool {
        let p = self.listing_probability(d);
        p > 0.0 && rng.random_bool(p)
    }

    /// Build the blacklist for a whole corpus.
    pub fn build<R: Rng + ?Sized>(
        &self,
        corpus: &[GeneratedDomain],
        rng: &mut R,
    ) -> HashSet<String> {
        corpus
            .iter()
            .filter(|d| self.is_listed(d, rng))
            .map(|d| d.facts.domain.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_corpus, GenConfig};
    use rand::SeedableRng;

    #[test]
    fn only_2014_domains_are_listed() {
        let corpus = generate_corpus(GenConfig::new(31, 2000));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let dbl = DblSampler::with_rate(0.5).build(&corpus, &mut rng);
        assert!(!dbl.is_empty());
        for d in &corpus {
            if dbl.contains(&d.facts.domain) {
                assert_eq!(d.facts.created.y, 2014);
            }
        }
    }

    #[test]
    fn japanese_registrants_are_overrepresented() {
        let corpus = generate_corpus(GenConfig::new(37, 30000));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let sampler = DblSampler::with_rate(0.05);
        let dbl = sampler.build(&corpus, &mut rng);
        let of_2014: Vec<_> = corpus
            .iter()
            .filter(|d| d.facts.created.y == 2014)
            .collect();
        let jp_all =
            of_2014.iter().filter(|d| d.true_country == "JP").count() as f64 / of_2014.len() as f64;
        let listed: Vec<_> = of_2014
            .iter()
            .filter(|d| dbl.contains(&d.facts.domain))
            .collect();
        assert!(listed.len() > 50, "need listings: {}", listed.len());
        let jp_listed =
            listed.iter().filter(|d| d.true_country == "JP").count() as f64 / listed.len() as f64;
        assert!(
            jp_listed > jp_all * 3.0,
            "JP share on DBL {jp_listed:.3} should far exceed base {jp_all:.3}"
        );
    }

    #[test]
    fn probability_respects_base_rate_bounds() {
        let corpus = generate_corpus(GenConfig::new(41, 200));
        let s = DblSampler::paper_rate();
        for d in &corpus {
            let p = s.listing_probability(d);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn boosts_match_paper_ratios() {
        assert!(country_boost("JP") > 10.0);
        assert!(country_boost("GB") < 0.5);
        assert!(registrar_boost(0.205, 0.024) > 8.0, "GMO boost");
        assert!(registrar_boost(0.208, 0.344) < 1.0, "GoDaddy under");
    }
}
