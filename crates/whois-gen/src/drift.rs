//! Schema-drift mutators.
//!
//! The paper observed "one large registrar modifying their schema
//! significantly during the four months of WHOIS measurements" and showed
//! that template parsers break under such drift while the statistical
//! parser adapts with a handful of labeled examples (§2.3, §5.3).
//! [`mutate`] derives a drifted variant of a template: field titles are
//! re-worded, the separator changes, block order shifts, and a new banner
//! appears — the kinds of changes registrars actually make.

use crate::style::{Element, Template};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Title-word substitutions applied by the retitle mutation.
const SYNONYMS: &[(&str, &str)] = &[
    ("Registrant", "Holder"),
    ("REGISTRANT", "HOLDER"),
    ("Owner", "Registrant"),
    ("OWNER", "REGISTRANT"),
    ("Creation Date", "Created On"),
    ("Created", "Registered"),
    ("CREATED", "REGISTERED"),
    ("Updated Date", "Last Modified"),
    ("Expiration", "Expiry"),
    ("EXPIRATION", "EXPIRY"),
    ("Expires", "Valid Until"),
    ("Email", "E-mail"),
    ("EMAIL", "E-MAIL"),
    ("Postal Code", "ZIP"),
    ("Phone", "Telephone"),
    ("PHONE", "TELEPHONE"),
    ("Organization", "Organisation"),
    ("Street", "Address Line"),
    ("Name Server", "Nameserver"),
    ("Domain Status", "Status"),
];

fn retitle(text: &str) -> String {
    for (from, to) in SYNONYMS {
        if text.contains(from) {
            return text.replace(from, to);
        }
    }
    text.to_string()
}

/// Derive a drifted variant of `base`, deterministically from `seed`.
///
/// The variant keeps the same fields and ground-truth labels (it is the
/// same *information*, re-formatted), renamed to `"{family}+drift"`.
pub fn mutate(base: &Template, seed: u64) -> Template {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ base.family.len() as u64);
    let mut elements: Vec<Element> = base.elements.clone();

    // 1. Retitle a majority of titled fields.
    for el in elements.iter_mut() {
        if let Element::Titled { title, .. } = el {
            if rng.random_bool(0.8) {
                *title = retitle(title);
            }
        }
        if let Element::Header { text, .. } = el {
            if rng.random_bool(0.8) {
                *text = retitle(text);
            }
        }
    }

    // 2. Change the separator on every titled field (pick one new style).
    let new_sep = match rng.random_range(0..3) {
        0 => " : ",
        1 => ":   ",
        _ => ": ",
    };
    for el in elements.iter_mut() {
        if let Element::Titled { sep, .. } = el {
            if sep.trim() == ":" {
                *sep = new_sep.to_string();
            }
        }
    }

    // 3. Rotate the leading run of titled fields (field reordering).
    let lead = elements
        .iter()
        .take_while(|e| matches!(e, Element::Titled { .. } | Element::Banner(_)))
        .count();
    if lead >= 3 {
        let k = rng.random_range(1..lead);
        elements[..lead].rotate_left(k);
    }

    // 4. Prepend a new banner.
    elements.insert(
        0,
        Element::Banner(format!(
            "WHOIS lookup service v{}.{}",
            rng.random_range(2..6),
            rng.random_range(0..10)
        )),
    );

    Template {
        family: format!("{}+drift", base.family),
        dates: base.dates,
        elements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::family_by_name;
    use crate::style::fixtures::sample_facts;

    #[test]
    fn mutate_is_deterministic() {
        let base = family_by_name("icann-standard").unwrap();
        let a = mutate(&base, 99);
        let b = mutate(&base, 99);
        assert_eq!(a, b);
        let c = mutate(&base, 100);
        assert_ne!(a, c, "different seeds drift differently");
    }

    #[test]
    fn drifted_template_renders_different_text_same_labels() {
        let base = family_by_name("icann-standard").unwrap();
        let drifted = mutate(&base, 5);
        let facts = sample_facts();
        let r0 = base.render(&facts);
        let r1 = drifted.render(&facts);
        assert_ne!(r0.text(), r1.text(), "format must change");
        // Same multiset of block labels (information preserved), modulo the
        // one extra null banner.
        let mut l0: Vec<_> = r0.block_labels().labels();
        let mut l1: Vec<_> = r1.block_labels().labels();
        l0.sort_by_key(|l| format!("{l:?}"));
        l1.sort_by_key(|l| format!("{l:?}"));
        assert_eq!(l1.len(), l0.len() + 1, "one banner added");
    }

    #[test]
    fn retitle_changes_known_words() {
        assert_eq!(retitle("Registrant Name"), "Holder Name");
        assert_eq!(retitle("Creation Date"), "Created On");
        assert_eq!(retitle("Unrelated Title"), "Unrelated Title");
    }

    #[test]
    fn drift_of_every_family_still_aligns_with_chunker() {
        let facts = sample_facts();
        for base in crate::families::com_families() {
            let drifted = mutate(&base, 1234);
            let r = drifted.render(&facts);
            assert_eq!(
                r.to_raw().lines().len(),
                r.block_labels().len(),
                "family {} drift misaligns",
                drifted.family
            );
            assert!(drifted.family.ends_with("+drift"));
        }
    }
}
