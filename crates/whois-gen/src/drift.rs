//! Schema-drift mutators.
//!
//! The paper observed "one large registrar modifying their schema
//! significantly during the four months of WHOIS measurements" and showed
//! that template parsers break under such drift while the statistical
//! parser adapts with a handful of labeled examples (§2.3, §5.3).
//! [`mutate`] derives a drifted variant of a template: field titles are
//! re-worded, the separator changes, block order shifts, the date format
//! flips (`2015-01-02` → `02-Jan-2015`), adjacent fields merge onto one
//! line, and a new banner appears — the kinds of changes registrars
//! actually make.

use crate::style::{DateStyle, Element, Field, Template};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use whois_model::ContactKind;

/// All date styles the generator knows, for the date-format mutation.
const DATE_STYLES: &[DateStyle] = &[
    DateStyle::Iso,
    DateStyle::IsoT,
    DateStyle::DayMonYear,
    DateStyle::Slash,
    DateStyle::Dot,
    DateStyle::IsoSpace,
];

/// Title-word substitutions applied by the retitle mutation.
const SYNONYMS: &[(&str, &str)] = &[
    ("Registrant", "Holder"),
    ("REGISTRANT", "HOLDER"),
    ("Owner", "Registrant"),
    ("OWNER", "REGISTRANT"),
    ("Creation Date", "Created On"),
    ("Created", "Registered"),
    ("CREATED", "REGISTERED"),
    ("Updated Date", "Last Modified"),
    ("Expiration", "Expiry"),
    ("EXPIRATION", "EXPIRY"),
    ("Expires", "Valid Until"),
    ("Email", "E-mail"),
    ("EMAIL", "E-MAIL"),
    ("Postal Code", "ZIP"),
    ("Phone", "Telephone"),
    ("PHONE", "TELEPHONE"),
    ("Organization", "Organisation"),
    ("Street", "Address Line"),
    ("Name Server", "Nameserver"),
    ("Domain Status", "Status"),
];

fn retitle(text: &str) -> String {
    for (from, to) in SYNONYMS {
        if text.contains(from) {
            return text.replace(from, to);
        }
    }
    text.to_string()
}

/// Derive a drifted variant of `base`, deterministically from `seed`.
///
/// The variant keeps the same fields and ground-truth labels (it is the
/// same *information*, re-formatted), renamed to `"{family}+drift"`.
pub fn mutate(base: &Template, seed: u64) -> Template {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ base.family.len() as u64);
    let mut elements: Vec<Element> = base.elements.clone();

    // 1. Retitle a majority of titled fields.
    for el in elements.iter_mut() {
        if let Element::Titled { title, .. } = el {
            if rng.random_bool(0.8) {
                *title = retitle(title);
            }
        }
        if let Element::Header { text, .. } = el {
            if rng.random_bool(0.8) {
                *text = retitle(text);
            }
        }
    }

    // 2. Change the separator on every titled field (pick one new style).
    let new_sep = match rng.random_range(0..3) {
        0 => " : ",
        1 => ":   ",
        _ => ": ",
    };
    for el in elements.iter_mut() {
        if let Element::Titled { sep, .. } = el {
            if sep.trim() == ":" {
                *sep = new_sep.to_string();
            }
        }
    }

    // 3. Rotate the leading run of titled fields (field reordering).
    let lead = elements
        .iter()
        .take_while(|e| matches!(e, Element::Titled { .. } | Element::Banner(_)))
        .count();
    if lead >= 3 {
        let k = rng.random_range(1..lead);
        elements[..lead].rotate_left(k);
    }

    // 4. Change the date format (§2.3: e.g. `2015-01-02` → `02-Jan-2015`).
    // Always drawn so every seed's variant stays deterministic; applied
    // with p=0.7.
    let new_dates = DATE_STYLES[rng.random_range(0..DATE_STYLES.len())];
    let dates = if rng.random_bool(0.7) && new_dates != base.dates {
        new_dates
    } else {
        base.dates
    };

    // 5. Merge one adjacent pair of same-label titled fields onto a
    // single line (p=0.6) — registrars collapse related fields like
    // creation/expiry dates.
    if rng.random_bool(0.6) {
        if let Some(at) = pick_merge_site(&elements, &mut rng) {
            let second = elements.remove(at + 1);
            let first = std::mem::replace(&mut elements[at], Element::Blank);
            if let (
                Element::Titled {
                    title,
                    sep,
                    field,
                    indent,
                },
                Element::Titled {
                    title: second_title,
                    field: second_field,
                    ..
                },
            ) = (first, second)
            {
                elements[at] = Element::Merged {
                    title,
                    sep,
                    first: field,
                    second_title,
                    second: second_field,
                    indent,
                };
            }
        }
    }

    // 6. Prepend a new banner.
    elements.insert(
        0,
        Element::Banner(format!(
            "WHOIS lookup service v{}.{}",
            rng.random_range(2..6),
            rng.random_range(0..10)
        )),
    );

    // 7. Flip titled contact blocks into a context header followed by
    // bare value lines (p=0.7) — the "large registrar modifying their
    // schema significantly" of §2.3: key/value contact fields replaced
    // wholesale by a legacy-style address block. Ground truth is
    // preserved (headers carry their block's label, bare lines keep the
    // field's), but every title word the model learned disappears.
    if rng.random_bool(0.7) {
        flip_contact_blocks(&mut elements);
    }

    Template {
        family: format!("{}+drift", base.family),
        dates,
        elements,
    }
}

/// Header text introducing a flipped contact block; the wording matches
/// what real registrars use (and what the rule base's contextual-header
/// rules recognize).
fn contact_header(kind: ContactKind) -> &'static str {
    match kind {
        ContactKind::Registrant => "Registrant:",
        ContactKind::Admin => "Administrative Contact:",
        ContactKind::Tech => "Technical Contact:",
        ContactKind::Billing => "Billing Contact:",
    }
}

/// Replace every run of two or more adjacent `Titled` contact fields of
/// the same [`ContactKind`] with a context header plus bare value lines.
/// A header is not inserted when the run already follows one for the
/// same contact (contextual formats keep their existing header).
fn flip_contact_blocks(elements: &mut Vec<Element>) {
    let mut out: Vec<Element> = Vec::with_capacity(elements.len() + 4);
    let mut i = 0;
    while i < elements.len() {
        let kind = match &elements[i] {
            Element::Titled {
                field: Field::Contact(kind, _),
                ..
            } => Some(*kind),
            _ => None,
        };
        let run = match kind {
            Some(kind) => elements[i..]
                .iter()
                .take_while(|e| {
                    matches!(
                        e,
                        Element::Titled { field: Field::Contact(k, _), .. } if *k == kind
                    )
                })
                .count(),
            None => 0,
        };
        if run >= 2 {
            let kind = kind.unwrap();
            let preceded_by_header =
                matches!(out.last(), Some(Element::Header { of, .. }) if *of == kind);
            if !preceded_by_header {
                out.push(Element::Header {
                    text: contact_header(kind).to_string(),
                    of: kind,
                });
            }
            for el in &elements[i..i + run] {
                if let Element::Titled { field, .. } = el {
                    out.push(Element::Bare {
                        field: field.clone(),
                        indent: 4,
                    });
                }
            }
            i += run;
        } else {
            out.push(elements[i].clone());
            i += 1;
        }
    }
    *elements = out;
}

/// Index of the first element of a randomly chosen adjacent `Titled`
/// pair whose fields share a block label (merging across labels would
/// make the line's ground truth ambiguous). `None` when no such pair
/// exists.
fn pick_merge_site(elements: &[Element], rng: &mut ChaCha8Rng) -> Option<usize> {
    let candidates: Vec<usize> = elements
        .windows(2)
        .enumerate()
        .filter_map(|(i, pair)| match (&pair[0], &pair[1]) {
            (Element::Titled { field: a, .. }, Element::Titled { field: b, .. })
                if a.block_label() == b.block_label() =>
            {
                Some(i)
            }
            _ => None,
        })
        .collect();
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.random_range(0..candidates.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::family_by_name;
    use crate::style::fixtures::sample_facts;

    #[test]
    fn mutate_is_deterministic() {
        let base = family_by_name("icann-standard").unwrap();
        let a = mutate(&base, 99);
        let b = mutate(&base, 99);
        assert_eq!(a, b);
        let c = mutate(&base, 100);
        assert_ne!(a, c, "different seeds drift differently");
    }

    #[test]
    fn drifted_template_renders_different_text_same_labels() {
        let base = family_by_name("icann-standard").unwrap();
        let drifted = mutate(&base, 5);
        let facts = sample_facts();
        let r0 = base.render(&facts);
        let r1 = drifted.render(&facts);
        assert_ne!(r0.text(), r1.text(), "format must change");
        // The drift adds one null banner, may collapse one adjacent
        // field pair onto a single line, and a contact-block flip adds
        // at most one header line per contact block (four kinds); no
        // other label is gained or lost.
        let l0 = r0.block_labels().labels();
        let l1 = r1.block_labels().labels();
        assert!(
            (l0.len() - 1..=l0.len() + 5).contains(&l1.len()),
            "banner +1, flip headers +<=4, a merge -<=1: {} -> {}",
            l0.len(),
            l1.len()
        );
    }

    #[test]
    fn mutate_is_deterministic_for_every_family_and_seed() {
        // Satellite: same seed → bit-identical drifted template, across
        // the whole family set and a spread of seeds (the retrain-loop
        // harness depends on replayable drift).
        let facts = sample_facts();
        for base in crate::families::com_families() {
            for seed in [0u64, 1, 7, 99, 0xDEAD_BEEF] {
                let a = mutate(&base, seed);
                let b = mutate(&base, seed);
                assert_eq!(a, b, "{} seed {seed} not deterministic", base.family);
                assert_eq!(a.render(&facts).text(), b.render(&facts).text());
            }
        }
    }

    #[test]
    fn some_seed_changes_the_date_format() {
        let base = family_by_name("icann-standard").unwrap();
        let changed = (0..32u64).any(|seed| mutate(&base, seed).dates != base.dates);
        assert!(changed, "date-format mutation never fired in 32 seeds");
    }

    #[test]
    fn some_seed_flips_a_contact_block_to_bare_lines() {
        let base = family_by_name("icann-standard").unwrap();
        let flipped = (0..32u64).any(|seed| {
            mutate(&base, seed)
                .elements
                .iter()
                .any(|e| matches!(e, Element::Bare { .. }))
        });
        assert!(flipped, "contact-block flip never fired in 32 seeds");
    }

    #[test]
    fn flipped_contact_block_keeps_header_context_and_labels() {
        // When the flip fires, the bare lines are introduced by a header
        // of the matching contact kind, and the rendered record still
        // aligns line-for-line with its ground truth.
        let base = family_by_name("icann-standard").unwrap();
        let facts = sample_facts();
        let seed = (0..64u64)
            .find(|&s| {
                mutate(&base, s)
                    .elements
                    .iter()
                    .any(|e| matches!(e, Element::Bare { .. }))
            })
            .expect("some seed flips");
        let drifted = mutate(&base, seed);
        let mut kinds = Vec::new();
        for el in &drifted.elements {
            match el {
                Element::Header { of, .. } => kinds.push(*of),
                Element::Bare { field, .. } => {
                    let Field::Contact(kind, _) = field else {
                        panic!("flip only produces contact bares");
                    };
                    assert_eq!(Some(kind), kinds.last(), "bare line under wrong header");
                }
                _ => {}
            }
        }
        let r = drifted.render(&facts);
        assert_eq!(r.to_raw().lines().len(), r.block_labels().len());
    }

    #[test]
    fn some_seed_merges_adjacent_fields() {
        let base = family_by_name("icann-standard").unwrap();
        let merged = (0..32u64).any(|seed| {
            mutate(&base, seed)
                .elements
                .iter()
                .any(|e| matches!(e, Element::Merged { .. }))
        });
        assert!(merged, "adjacent-field merge never fired in 32 seeds");
    }

    #[test]
    fn every_mutation_preserves_label_alignment() {
        // Satellite: label preservation — whatever combination of
        // mutations fires, every rendered line still has exactly one
        // ground-truth label (the chunker invariant) and registrant
        // lines keep their second-level labels.
        let facts = sample_facts();
        for base in crate::families::com_families() {
            for seed in 0..16u64 {
                let drifted = mutate(&base, seed);
                let r = drifted.render(&facts);
                assert_eq!(
                    r.to_raw().lines().len(),
                    r.block_labels().len(),
                    "family {} seed {seed} misaligns",
                    drifted.family
                );
                let reg = r.registrant_labels();
                let reg_lines = r
                    .lines
                    .iter()
                    .filter(|l| l.block == Some(whois_model::BlockLabel::Registrant))
                    .count();
                assert_eq!(
                    reg.len(),
                    reg_lines,
                    "family {} seed {seed}: registrant sub-labels misalign",
                    drifted.family
                );
            }
        }
    }

    #[test]
    fn retitle_changes_known_words() {
        assert_eq!(retitle("Registrant Name"), "Holder Name");
        assert_eq!(retitle("Creation Date"), "Created On");
        assert_eq!(retitle("Unrelated Title"), "Unrelated Title");
    }

    #[test]
    fn drift_of_every_family_still_aligns_with_chunker() {
        let facts = sample_facts();
        for base in crate::families::com_families() {
            let drifted = mutate(&base, 1234);
            let r = drifted.render(&facts);
            assert_eq!(
                r.to_raw().lines().len(),
                r.block_labels().len(),
                "family {} drift misaligns",
                drifted.family
            );
            assert!(drifted.family.ends_with("+drift"));
        }
    }
}
