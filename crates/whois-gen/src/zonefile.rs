//! A minimal `.com`-style zone-file snapshot.
//!
//! The paper's crawl input was "the list of domains found in the com zone
//! file in February of 2015". This module renders a corpus into a
//! simplified master-file format (one `NS` record per delegated name
//! server, upper-case owner names, `$ORIGIN COM.` header — the shape of
//! the real com zone) and parses the registered-domain list back out,
//! which is exactly what a crawler wants from a zone snapshot.

use crate::corpus::GeneratedDomain;
use std::collections::BTreeSet;

/// Render a zone-file snapshot for `domains`.
pub fn render(domains: &[GeneratedDomain]) -> String {
    let mut s = String::new();
    s.push_str("$ORIGIN COM.\n$TTL 172800\n");
    s.push_str("; com zone snapshot (synthetic)\n");
    for d in domains {
        let owner = d
            .facts
            .domain
            .strip_suffix(".com")
            .unwrap_or(&d.facts.domain)
            .to_uppercase();
        for ns in &d.facts.name_servers {
            s.push_str(&format!("{owner} NS {}.\n", ns.to_uppercase()));
        }
    }
    s
}

/// Parse the set of registered second-level domains out of a zone file.
///
/// Tolerates comments (`;`), directives (`$...`), and blank lines;
/// deduplicates the one-owner-many-NS expansion. Returns lower-case
/// fully-qualified names under the `$ORIGIN` (default `com`).
pub fn registered_domains(zone: &str) -> Vec<String> {
    let mut origin = "com".to_string();
    let mut out = BTreeSet::new();
    for line in zone.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("$ORIGIN") {
            let o = rest.trim().trim_end_matches('.').to_lowercase();
            if !o.is_empty() {
                origin = o;
            }
            continue;
        }
        if line.starts_with('$') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(owner), Some(rtype)) = (parts.next(), parts.next()) else {
            continue;
        };
        if !rtype.eq_ignore_ascii_case("NS") {
            continue;
        }
        let owner = owner.trim_end_matches('.').to_lowercase();
        if owner.is_empty() || owner == "@" {
            continue;
        }
        let fqdn = if owner.ends_with(&format!(".{origin}")) || owner == origin {
            owner
        } else {
            format!("{owner}.{origin}")
        };
        out.insert(fqdn);
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_corpus, GenConfig};

    #[test]
    fn render_parse_roundtrip() {
        let corpus = generate_corpus(GenConfig::new(71, 50));
        let zone = render(&corpus);
        assert!(zone.starts_with("$ORIGIN COM.\n"));
        let domains = registered_domains(&zone);
        let mut expected: Vec<String> = corpus.iter().map(|d| d.facts.domain.clone()).collect();
        expected.sort();
        assert_eq!(domains, expected);
    }

    #[test]
    fn parser_tolerates_noise() {
        let zone = "; comment\n$TTL 900\n$ORIGIN COM.\n\nEXAMPLE NS NS1.EXAMPLE.COM.\nEXAMPLE NS NS2.EXAMPLE.COM.\nOTHER A 1.2.3.4\nWEIRD. NS X.Y.\n";
        let domains = registered_domains(zone);
        assert_eq!(domains, vec!["example.com", "weird.com"]);
    }

    #[test]
    fn origin_directive_is_respected() {
        let zone = "$ORIGIN NET.\nFOO NS NS1.BAR.NET.\n";
        assert_eq!(registered_domains(zone), vec!["foo.net"]);
    }

    #[test]
    fn empty_zone_is_empty() {
        assert!(registered_domains("").is_empty());
        assert!(registered_domains("; nothing\n$TTL 1\n").is_empty());
    }
}
