//! # whois-gen
//!
//! A synthetic WHOIS **corpus generator** — the workspace's stand-in for
//! the paper's 102M-record `.com` crawl and 86K-record labeled ground
//! truth.
//!
//! The paper's learning problem is "map heterogeneous per-registrar line
//! formats to labels". This crate reproduces the *structure* of that
//! heterogeneity while giving exact ground truth at any corpus size:
//!
//! * [`entity`] — deterministic generators for people, organizations,
//!   addresses, phones, e-mails across countries.
//! * [`style`] — a data-driven template language: a registrar's record
//!   format is a list of [`style::Element`]s (banner, titled field,
//!   contact block, boilerplate, ...) rendered with a per-family
//!   [`style::FormatStyle`] (separator, casing, indentation, blank-line
//!   policy). Every rendered line carries its gold [`BlockLabel`] (and
//!   [`RegistrantLabel`] inside registrant blocks).
//! * [`families`] — 40+ concrete `.com` registrar template families built
//!   on the style language, from modern ICANN-uniform layouts to legacy
//!   label-free blocks.
//! * [`tlds`] — single-template formats for the 12 "new TLD" examples of
//!   the paper's Table 2.
//! * [`distributions`] — marginal distributions (registrar share,
//!   registrant country by year, privacy adoption, creation-date
//!   histogram) calibrated to the paper's Tables 3–7 and Figure 4.
//! * [`corpus`] — the top-level [`corpus::CorpusGenerator`]: an iterator
//!   of [`corpus::GeneratedDomain`]s combining all of the above, with
//!   matching thin records for the crawler.
//! * [`drift`] — schema-drift mutators (retitle, reorder, reseparate)
//!   used by the maintainability experiments (§5.3).
//! * [`blacklist`] — a synthetic DBL with the country/registrar skew of
//!   Tables 8–9.
//!
//! Everything is seeded: the same [`corpus::GenConfig`] always yields the
//! same corpus.

#![allow(clippy::needless_range_loop)]
// The explicit derefs clippy flags here pin type inference on
// `weighted_choice`'s generic return; removing them fails to compile.
#![allow(clippy::explicit_auto_deref, clippy::type_complexity)]

pub mod blacklist;
pub mod corpus;
pub mod distributions;
pub mod drift;
pub mod entity;
pub mod families;
pub mod registrars;
pub mod style;
pub mod tlds;
pub mod zonefile;

pub use corpus::{CorpusGenerator, GenConfig, GeneratedDomain};
pub use registrars::{Registrar, RegistrarDirectory};
