//! The registrar directory: market shares, template assignments, country
//! mixes, privacy services — calibrated to Tables 5–7 and Figure 5 of the
//! paper.

/// A registrar as the generator models it.
#[derive(Clone, Debug)]
pub struct Registrar {
    /// Display name as written in WHOIS records.
    pub name: &'static str,
    /// Host name of the registrar's thick WHOIS server.
    pub whois_server: &'static str,
    /// IANA ID.
    pub iana_id: u32,
    /// Public URL.
    pub url: &'static str,
    /// Template family used for thick records.
    pub family: &'static str,
    /// Market share over all time (fraction; Table 5 left).
    pub share_all: f64,
    /// Market share among 2014 creations (Table 5 right).
    pub share_2014: f64,
    /// Registrant-country mix `(ISO code, weight)`; an empty code means
    /// "country field missing" (Figure 5's `[]` bucket for HiChina).
    pub country_mix: &'static [(&'static str, f64)],
    /// How strongly this registrar's own mix (vs. the global per-year
    /// distribution) determines a registrant's country. National
    /// registrars (HiChina, GMO, ...) are sticky; generic US registrars
    /// track the global market.
    pub mix_weight: f64,
    /// Fraction of this registrar's domains using privacy protection.
    pub privacy_rate: f64,
    /// Privacy services offered `(service name, weight)`.
    pub privacy_services: &'static [(&'static str, f64)],
    /// Relative weight in the synthetic DBL blacklist (Table 9 skew).
    pub abuse_weight: f64,
}

/// Mostly-US mix with a global tail.
const MIX_US: &[(&str, f64)] = &[
    ("US", 0.66),
    ("CN", 0.02),
    ("GB", 0.06),
    ("CA", 0.05),
    ("AU", 0.03),
    ("IN", 0.03),
    ("DE", 0.03),
    ("FR", 0.03),
    ("ES", 0.02),
    ("JP", 0.02),
    ("TR", 0.02),
    ("BR", 0.02),
    ("NL", 0.02),
    ("RU", 0.01),
];

/// eNom's mix per Figure 5: US, GB, CA on top.
const MIX_ENOM: &[(&str, f64)] = &[
    ("US", 0.55),
    ("GB", 0.12),
    ("CA", 0.09),
    ("AU", 0.05),
    ("IN", 0.05),
    ("DE", 0.04),
    ("FR", 0.03),
    ("JP", 0.03),
    ("TR", 0.02),
    ("VN", 0.02),
];

/// Chinese registrars: CN dominant, a visible missing-country bucket, HK.
const MIX_CN: &[(&str, f64)] = &[
    ("CN", 0.75),
    ("", 0.14),
    ("HK", 0.05),
    ("US", 0.04),
    ("JP", 0.02),
    ("VN", 0.01),
];

/// GMO per Figure 5: overwhelmingly Japanese.
const MIX_JP: &[(&str, f64)] = &[
    ("JP", 0.82),
    ("US", 0.08),
    ("VN", 0.04),
    ("CN", 0.03),
    ("", 0.03),
];

/// Melbourne IT per Figure 5: US first, then AU, then JP.
const MIX_MELBOURNE: &[(&str, f64)] = &[
    ("US", 0.45),
    ("AU", 0.27),
    ("JP", 0.12),
    ("GB", 0.08),
    ("NZ", 0.04),
    ("CA", 0.04),
];

/// European registrars.
const MIX_EU: &[(&str, f64)] = &[
    ("DE", 0.30),
    ("FR", 0.20),
    ("GB", 0.15),
    ("ES", 0.10),
    ("NL", 0.07),
    ("US", 0.08),
    ("IT", 0.05),
    ("CH", 0.05),
];

/// Turkey/RU-leaning reseller mix.
const MIX_EMERGING: &[(&str, f64)] = &[
    ("TR", 0.30),
    ("RU", 0.20),
    ("IN", 0.15),
    ("US", 0.12),
    ("VN", 0.10),
    ("CN", 0.08),
    ("", 0.05),
];

/// The registrar directory.
///
/// Shares follow Table 5; they need not sum to 1 — the remainder becomes
/// the long tail, which the generator spreads over the `(Other)` entries
/// at the bottom of the list.
pub const REGISTRARS: &[Registrar] = &[
    Registrar {
        name: "GoDaddy.com, LLC",
        whois_server: "whois.godaddy.com",
        mix_weight: 0.40,
        iana_id: 146,
        url: "http://www.godaddy.com",
        family: "icann-standard",
        share_all: 0.342,
        share_2014: 0.344,
        country_mix: MIX_US,
        privacy_rate: 0.19,
        privacy_services: &[("Domains By Proxy, LLC", 1.0)],
        abuse_weight: 0.208,
    },
    Registrar {
        name: "eNom, Inc.",
        whois_server: "whois.enom.com",
        mix_weight: 0.45,
        iana_id: 48,
        url: "http://www.enom.com",
        family: "icann-compact",
        share_all: 0.087,
        share_2014: 0.077,
        country_mix: MIX_ENOM,
        privacy_rate: 0.28,
        privacy_services: &[("WhoisGuard", 0.6), ("Whois Privacy Protect", 0.4)],
        abuse_weight: 0.251,
    },
    Registrar {
        name: "Network Solutions, LLC",
        whois_server: "whois.networksolutions.com",
        mix_weight: 0.40,
        iana_id: 2,
        url: "http://www.networksolutions.com",
        family: "legacy-netsol",
        share_all: 0.050,
        share_2014: 0.043,
        country_mix: MIX_US,
        privacy_rate: 0.08,
        privacy_services: &[("Perfect Privacy, LLC", 1.0)],
        abuse_weight: 0.036,
    },
    Registrar {
        name: "1&1 Internet AG",
        whois_server: "whois.1and1.com",
        mix_weight: 0.85,
        iana_id: 83,
        url: "http://1and1.com",
        family: "icann-de",
        share_all: 0.030,
        share_2014: 0.021,
        country_mix: MIX_EU,
        privacy_rate: 0.17,
        privacy_services: &[("1&1 Internet Inc.", 1.0)],
        abuse_weight: 0.01,
    },
    Registrar {
        name: "Wild West Domains, LLC",
        whois_server: "whois.wildwestdomains.com",
        mix_weight: 0.40,
        iana_id: 440,
        url: "http://www.wildwestdomains.com",
        family: "icann-reseller",
        share_all: 0.026,
        share_2014: 0.024,
        country_mix: MIX_US,
        privacy_rate: 0.22,
        privacy_services: &[("Domains By Proxy, LLC", 1.0)],
        abuse_weight: 0.012,
    },
    Registrar {
        name: "HiChina Zhicheng Technology Ltd.",
        whois_server: "whois.hichina.com",
        mix_weight: 0.85,
        iana_id: 420,
        url: "http://www.net.cn",
        family: "icann-cn",
        share_all: 0.021,
        share_2014: 0.037,
        country_mix: MIX_CN,
        privacy_rate: 0.25,
        privacy_services: &[("Aliyun", 1.0)],
        abuse_weight: 0.015,
    },
    Registrar {
        name: "PDR Ltd. d/b/a PublicDomainRegistry.com",
        whois_server: "whois.publicdomainregistry.com",
        mix_weight: 0.70,
        iana_id: 303,
        url: "http://www.publicdomainregistry.com",
        family: "dots-pdr",
        share_all: 0.021,
        share_2014: 0.030,
        country_mix: MIX_EMERGING,
        privacy_rate: 0.21,
        privacy_services: &[("PrivacyProtect.org", 1.0)],
        abuse_weight: 0.025,
    },
    Registrar {
        name: "Register.com, Inc.",
        whois_server: "whois.register.com",
        mix_weight: 0.40,
        iana_id: 9,
        url: "http://www.register.com",
        family: "legacy-register",
        share_all: 0.020,
        share_2014: 0.021,
        country_mix: MIX_US,
        privacy_rate: 0.20,
        privacy_services: &[("FBO REGISTRANT", 1.0)],
        abuse_weight: 0.045,
    },
    Registrar {
        name: "FastDomain Inc.",
        whois_server: "whois.fastdomain.com",
        mix_weight: 0.40,
        iana_id: 1154,
        url: "http://www.fastdomain.com",
        family: "legacy-fastdomain",
        share_all: 0.019,
        share_2014: 0.015,
        country_mix: MIX_US,
        privacy_rate: 0.21,
        privacy_services: &[("FastDomain Inc. Privacy", 1.0)],
        abuse_weight: 0.008,
    },
    Registrar {
        name: "GMO Internet, Inc. d/b/a Onamae.com",
        whois_server: "whois.discount-domain.com",
        mix_weight: 0.88,
        iana_id: 49,
        url: "http://www.onamae.com",
        family: "bracket-gmo",
        share_all: 0.018,
        share_2014: 0.024,
        country_mix: MIX_JP,
        privacy_rate: 0.37,
        privacy_services: &[
            ("MuuMuuDomain", 0.45),
            ("Happy DreamHost", 0.0),
            ("Whois Privacy Protection Service by onamae.com", 0.55),
        ],
        abuse_weight: 0.205,
    },
    Registrar {
        name: "Xin Net Technology Corporation",
        whois_server: "whois.paycenter.com.cn",
        mix_weight: 0.85,
        iana_id: 120,
        url: "http://www.xinnet.com",
        family: "icann-space",
        share_all: 0.012,
        share_2014: 0.033,
        country_mix: MIX_CN,
        privacy_rate: 0.10,
        privacy_services: &[("Xin Net Privacy", 1.0)],
        abuse_weight: 0.027,
    },
    Registrar {
        name: "Melbourne IT Ltd",
        whois_server: "whois.melbourneit.com",
        mix_weight: 0.85,
        iana_id: 13,
        url: "http://www.melbourneit.com.au",
        family: "caps-melbourne",
        share_all: 0.012,
        share_2014: 0.008,
        country_mix: MIX_MELBOURNE,
        privacy_rate: 0.05,
        privacy_services: &[("Melbourne IT Privacy", 1.0)],
        abuse_weight: 0.004,
    },
    Registrar {
        name: "DreamHost, LLC",
        whois_server: "whois.dreamhost.com",
        mix_weight: 0.40,
        iana_id: 431,
        url: "http://www.dreamhost.com",
        family: "ctx-registrant",
        share_all: 0.010,
        share_2014: 0.011,
        country_mix: MIX_US,
        privacy_rate: 0.45,
        privacy_services: &[("Happy DreamHost", 1.0)],
        abuse_weight: 0.006,
    },
    Registrar {
        name: "Moniker Online Services LLC",
        whois_server: "whois.moniker.com",
        mix_weight: 0.40,
        iana_id: 228,
        url: "http://www.moniker.com",
        family: "icann-owner",
        share_all: 0.008,
        share_2014: 0.006,
        country_mix: MIX_US,
        privacy_rate: 0.30,
        privacy_services: &[("Moniker Privacy Services", 1.0)],
        abuse_weight: 0.038,
    },
    Registrar {
        name: "Name.com, Inc.",
        whois_server: "whois.name.com",
        mix_weight: 0.40,
        iana_id: 625,
        url: "http://www.name.com",
        family: "icann-min",
        share_all: 0.008,
        share_2014: 0.009,
        country_mix: MIX_US,
        privacy_rate: 0.26,
        privacy_services: &[("Whois Privacy Protect", 1.0)],
        abuse_weight: 0.022,
    },
    Registrar {
        name: "Bizcn.com, Inc.",
        whois_server: "whois.bizcn.com",
        mix_weight: 0.85,
        iana_id: 471,
        url: "http://www.bizcn.com",
        family: "icann-cn",
        share_all: 0.006,
        share_2014: 0.009,
        country_mix: MIX_CN,
        privacy_rate: 0.12,
        privacy_services: &[("Bizcn Whois Protect", 1.0)],
        abuse_weight: 0.023,
    },
    Registrar {
        name: "Tucows Domains Inc.",
        whois_server: "whois.tucows.com",
        mix_weight: 0.40,
        iana_id: 69,
        url: "http://www.tucows.com",
        family: "ctx-owner",
        share_all: 0.014,
        share_2014: 0.012,
        country_mix: MIX_US,
        privacy_rate: 0.24,
        privacy_services: &[("Contact Privacy Inc.", 1.0)],
        abuse_weight: 0.01,
    },
    Registrar {
        name: "OVH SAS",
        whois_server: "whois.ovh.com",
        mix_weight: 0.85,
        iana_id: 433,
        url: "http://www.ovh.com",
        family: "eq-ovh",
        share_all: 0.007,
        share_2014: 0.008,
        country_mix: MIX_EU,
        privacy_rate: 0.33,
        privacy_services: &[("OVH OwO Privacy", 1.0)],
        abuse_weight: 0.005,
    },
    Registrar {
        name: "Key-Systems GmbH",
        whois_server: "whois.rrpproxy.net",
        mix_weight: 0.85,
        iana_id: 269,
        url: "http://www.key-systems.net",
        family: "tab-eu",
        share_all: 0.006,
        share_2014: 0.006,
        country_mix: MIX_EU,
        privacy_rate: 0.15,
        privacy_services: &[("WhoisProxy.com", 1.0)],
        abuse_weight: 0.008,
    },
    Registrar {
        name: "Launchpad.com Inc.",
        whois_server: "whois.launchpad.com",
        mix_weight: 0.40,
        iana_id: 955,
        url: "http://www.launchpad.com",
        family: "icann-holder",
        share_all: 0.006,
        share_2014: 0.007,
        country_mix: MIX_US,
        privacy_rate: 0.20,
        privacy_services: &[("Whois Privacy Protect", 1.0)],
        abuse_weight: 0.005,
    },
    // Long-tail registrars that absorb the remaining share.
    Registrar {
        name: "NameSilo, LLC",
        whois_server: "whois.namesilo.com",
        mix_weight: 0.40,
        iana_id: 1479,
        url: "http://www.namesilo.com",
        family: "icann-dmy",
        share_all: 0.005,
        share_2014: 0.007,
        country_mix: MIX_US,
        privacy_rate: 0.40,
        privacy_services: &[("PrivacyGuardian.org", 1.0)],
        abuse_weight: 0.012,
    },
    Registrar {
        name: "Gandi SAS",
        whois_server: "whois.gandi.net",
        mix_weight: 0.85,
        iana_id: 81,
        url: "http://www.gandi.net",
        family: "ctx-holder",
        share_all: 0.005,
        share_2014: 0.005,
        country_mix: MIX_EU,
        privacy_rate: 0.18,
        privacy_services: &[("Gandi Privacy", 1.0)],
        abuse_weight: 0.003,
    },
    Registrar {
        name: "Alantron Bilisim Ltd.",
        whois_server: "whois.alantron.com",
        mix_weight: 0.85,
        iana_id: 1163,
        url: "http://www.alantron.com",
        family: "caps-reseller",
        share_all: 0.004,
        share_2014: 0.006,
        country_mix: MIX_EMERGING,
        privacy_rate: 0.09,
        privacy_services: &[("Alantron Gizlilik", 1.0)],
        abuse_weight: 0.015,
    },
    Registrar {
        name: "Todaynic.com, Inc.",
        whois_server: "whois.todaynic.com",
        mix_weight: 0.85,
        iana_id: 697,
        url: "http://www.todaynic.com",
        family: "dots-directi",
        share_all: 0.004,
        share_2014: 0.006,
        country_mix: MIX_CN,
        privacy_rate: 0.11,
        privacy_services: &[("Todaynic Privacy", 1.0)],
        abuse_weight: 0.012,
    },
    Registrar {
        name: "Joker.com GmbH",
        whois_server: "whois.joker.com",
        mix_weight: 0.85,
        iana_id: 113,
        url: "http://www.joker.com",
        family: "tab-joker",
        share_all: 0.004,
        share_2014: 0.003,
        country_mix: MIX_EU,
        privacy_rate: 0.14,
        privacy_services: &[("Joker Privacy Services", 1.0)],
        abuse_weight: 0.004,
    },
    Registrar {
        name: "Interlink Co., Ltd.",
        whois_server: "whois.interlink.co.jp",
        mix_weight: 0.88,
        iana_id: 1479,
        url: "http://www.interlink.or.jp",
        family: "bracket-jp2",
        share_all: 0.003,
        share_2014: 0.004,
        country_mix: MIX_JP,
        privacy_rate: 0.30,
        privacy_services: &[("MuuMuuDomain", 1.0)],
        abuse_weight: 0.01,
    },
    Registrar {
        name: "Nordreg AB",
        whois_server: "whois.nordreg.se",
        mix_weight: 0.85,
        iana_id: 638,
        url: "http://www.nordreg.se",
        family: "eq-nordic",
        share_all: 0.003,
        share_2014: 0.003,
        country_mix: MIX_EU,
        privacy_rate: 0.12,
        privacy_services: &[("Nordreg Privacy", 1.0)],
        abuse_weight: 0.002,
    },
    Registrar {
        name: "Vista.com Registrar LLC",
        whois_server: "whois.vistaregistrar.com",
        mix_weight: 0.40,
        iana_id: 1600,
        url: "http://www.vistaregistrar.com",
        family: "ctx-wide",
        share_all: 0.003,
        share_2014: 0.004,
        country_mix: MIX_US,
        privacy_rate: 0.16,
        privacy_services: &[("Private Registration", 1.0)],
        abuse_weight: 0.004,
    },
    Registrar {
        name: "Dot Holding Inc.",
        whois_server: "whois.dotholding.net",
        mix_weight: 0.70,
        iana_id: 1601,
        url: "http://www.dotholding.net",
        family: "icann-dot-dates",
        share_all: 0.003,
        share_2014: 0.004,
        country_mix: MIX_EMERGING,
        privacy_rate: 0.13,
        privacy_services: &[("Hidden by Whois Privacy Protection Service", 1.0)],
        abuse_weight: 0.01,
    },
    Registrar {
        name: "Webfusion Ltd.",
        whois_server: "whois.123-reg.co.uk",
        mix_weight: 0.85,
        iana_id: 1515,
        url: "http://www.123-reg.co.uk",
        family: "icann-wide-sep",
        share_all: 0.004,
        share_2014: 0.004,
        country_mix: &[
            ("GB", 0.70),
            ("US", 0.10),
            ("IE", 0.05),
            ("FR", 0.05),
            ("DE", 0.05),
            ("ES", 0.05),
        ],
        privacy_rate: 0.15,
        privacy_services: &[("Identity Protection Service", 1.0)],
        abuse_weight: 0.004,
    },
    Registrar {
        name: "Universal Registrar Co.",
        whois_server: "whois.universalregistrar.example",
        mix_weight: 0.40,
        iana_id: 1700,
        url: "http://www.universalregistrar.example",
        family: "icann-privacy-heavy",
        share_all: 0.004,
        share_2014: 0.005,
        country_mix: MIX_US,
        privacy_rate: 0.55,
        privacy_services: &[
            ("Private Registration", 0.5),
            ("Whois Privacy Protect", 0.5),
        ],
        abuse_weight: 0.006,
    },
    Registrar {
        name: "Atlantic Domains LLC",
        whois_server: "whois.atlanticdomains.example",
        mix_weight: 0.40,
        iana_id: 1701,
        url: "http://www.atlanticdomains.example",
        family: "icann-slash",
        share_all: 0.004,
        share_2014: 0.004,
        country_mix: MIX_US,
        privacy_rate: 0.18,
        privacy_services: &[("Perfect Privacy, LLC", 1.0)],
        abuse_weight: 0.004,
    },
    Registrar {
        name: "Numbered Names LLC",
        whois_server: "whois.numberednames.example",
        mix_weight: 0.40,
        iana_id: 1703,
        url: "http://www.numberednames.example",
        family: "numbered-reseller",
        share_all: 0.003,
        share_2014: 0.004,
        country_mix: MIX_US,
        privacy_rate: 0.20,
        privacy_services: &[("Whois Privacy Protect", 1.0)],
        abuse_weight: 0.006,
    },
    Registrar {
        name: "Pacific Rim Domains Co.",
        whois_server: "whois.pacificrim.example",
        mix_weight: 0.80,
        iana_id: 1704,
        url: "http://www.pacificrim.example",
        family: "numbered-asia",
        share_all: 0.003,
        share_2014: 0.004,
        country_mix: MIX_CN,
        privacy_rate: 0.12,
        privacy_services: &[("Aliyun", 1.0)],
        abuse_weight: 0.008,
    },
    Registrar {
        name: "Hybrid Hosting Registrar",
        whois_server: "whois.hybridhosting.example",
        mix_weight: 0.40,
        iana_id: 1705,
        url: "http://www.hybridhosting.example",
        family: "thinlike-hybrid",
        share_all: 0.003,
        share_2014: 0.003,
        country_mix: MIX_US,
        privacy_rate: 0.15,
        privacy_services: &[("Private Registration", 1.0)],
        abuse_weight: 0.004,
    },
    Registrar {
        name: "Istanbul Web Services",
        whois_server: "whois.istanbulweb.example",
        mix_weight: 0.85,
        iana_id: 1706,
        url: "http://www.istanbulweb.example",
        family: "dots-long",
        share_all: 0.003,
        share_2014: 0.004,
        country_mix: MIX_EMERGING,
        privacy_rate: 0.10,
        privacy_services: &[("PrivacyProtect.org", 1.0)],
        abuse_weight: 0.010,
    },
    Registrar {
        name: "Compact Registry Services",
        whois_server: "whois.compactregistry.example",
        mix_weight: 0.70,
        iana_id: 1707,
        url: "http://www.compactregistry.example",
        family: "tab-compact",
        share_all: 0.002,
        share_2014: 0.003,
        country_mix: MIX_EU,
        privacy_rate: 0.14,
        privacy_services: &[("Identity Protection Service", 1.0)],
        abuse_weight: 0.003,
    },
    Registrar {
        name: "Mixed Bracket Networks KK",
        whois_server: "whois.mixedbracket.example",
        mix_weight: 0.85,
        iana_id: 1708,
        url: "http://www.mixedbracket.example",
        family: "bracket-mixed",
        share_all: 0.002,
        share_2014: 0.003,
        country_mix: MIX_JP,
        privacy_rate: 0.28,
        privacy_services: &[("MuuMuuDomain", 1.0)],
        abuse_weight: 0.010,
    },
    Registrar {
        name: "Equals Hosting AB",
        whois_server: "whois.equalshosting.example",
        mix_weight: 0.85,
        iana_id: 1709,
        url: "http://www.equalshosting.example",
        family: "eq-min",
        share_all: 0.002,
        share_2014: 0.002,
        country_mix: MIX_EU,
        privacy_rate: 0.12,
        privacy_services: &[("Nordreg Privacy", 1.0)],
        abuse_weight: 0.002,
    },
    Registrar {
        name: "Capital Caps Registrar Inc.",
        whois_server: "whois.capitalcaps.example",
        mix_weight: 0.40,
        iana_id: 1710,
        url: "http://www.capitalcaps.example",
        family: "caps-min",
        share_all: 0.002,
        share_2014: 0.002,
        country_mix: MIX_US,
        privacy_rate: 0.18,
        privacy_services: &[("Perfect Privacy, LLC", 1.0)],
        abuse_weight: 0.003,
    },
    Registrar {
        name: "Tail Hybrid Domains",
        whois_server: "whois.tailhybrid.example",
        mix_weight: 0.40,
        iana_id: 1711,
        url: "http://www.tailhybrid.example",
        family: "thinlike-hybrid2",
        share_all: 0.002,
        share_2014: 0.002,
        country_mix: MIX_US,
        privacy_rate: 0.16,
        privacy_services: &[("FBO REGISTRANT", 1.0)],
        abuse_weight: 0.003,
    },
    Registrar {
        name: "Legacy Registrations Inc.",
        whois_server: "whois.legacyregistrations.example",
        mix_weight: 0.40,
        iana_id: 1702,
        url: "http://www.legacyregistrations.example",
        family: "legacy-noorg",
        share_all: 0.004,
        share_2014: 0.002,
        country_mix: MIX_US,
        privacy_rate: 0.05,
        privacy_services: &[("FBO REGISTRANT", 1.0)],
        abuse_weight: 0.003,
    },
];

/// Directory with share-based sampling helpers.
#[derive(Clone, Copy, Debug, Default)]
pub struct RegistrarDirectory;

impl RegistrarDirectory {
    /// Construct the directory.
    pub fn new() -> Self {
        RegistrarDirectory
    }

    /// All registrars.
    pub fn all(&self) -> &'static [Registrar] {
        REGISTRARS
    }

    /// Look up by display name.
    pub fn by_name(&self, name: &str) -> Option<&'static Registrar> {
        REGISTRARS.iter().find(|r| r.name == name)
    }

    /// Sample a registrar for a domain created in `year`, given a uniform
    /// draw `u ∈ [0, 1)`.
    ///
    /// Shares interpolate linearly from the all-time to the 2014
    /// distribution between 2008 and 2014 (the market shifted toward
    /// Chinese registrars late in the paper's window). Draws past the
    /// explicit shares land uniformly on the long-tail registrars (the
    /// bottom third of the directory), standing in for `(Other)`.
    pub fn sample(&self, year: i32, u: f64) -> &'static Registrar {
        let w2014 = ((year - 2008) as f64 / 6.0).clamp(0.0, 1.0);
        let mut acc = 0.0;
        for r in REGISTRARS.iter() {
            acc += r.share_all * (1.0 - w2014) + r.share_2014 * w2014;
            if u < acc {
                return r;
            }
        }
        // Long tail: hash the draw into the bottom third deterministically.
        let tail_start = REGISTRARS.len() * 2 / 3;
        let tail = &REGISTRARS[tail_start..];
        let idx = ((u * 1e9) as usize) % tail.len();
        &tail[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::family_by_name;

    #[test]
    fn every_registrar_references_an_existing_family() {
        for r in REGISTRARS {
            assert!(
                family_by_name(r.family).is_some(),
                "registrar {} references unknown family {}",
                r.name,
                r.family
            );
        }
    }

    #[test]
    fn registrar_names_and_servers_are_unique() {
        let names: std::collections::HashSet<_> = REGISTRARS.iter().map(|r| r.name).collect();
        assert_eq!(names.len(), REGISTRARS.len());
        let servers: std::collections::HashSet<_> =
            REGISTRARS.iter().map(|r| r.whois_server).collect();
        assert_eq!(servers.len(), REGISTRARS.len());
    }

    #[test]
    fn country_mixes_are_normalizable() {
        for r in REGISTRARS {
            let sum: f64 = r.country_mix.iter().map(|(_, w)| w).sum();
            assert!(
                (0.5..=1.5).contains(&sum),
                "{} country mix sums to {}",
                r.name,
                sum
            );
            assert!(!r.country_mix.is_empty());
        }
    }

    #[test]
    fn shares_leave_room_for_the_long_tail() {
        let total: f64 = REGISTRARS.iter().map(|r| r.share_all).sum();
        assert!(total < 1.0, "explicit shares {total} must leave a tail");
        assert!(total > 0.5, "top registrars dominate: {total}");
    }

    #[test]
    fn sampling_respects_shares_roughly() {
        let dir = RegistrarDirectory::new();
        let n = 20000;
        let mut godaddy = 0;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            if dir.sample(2005, u).name == "GoDaddy.com, LLC" {
                godaddy += 1;
            }
        }
        let share = godaddy as f64 / n as f64;
        assert!(
            (share - 0.342).abs() < 0.02,
            "GoDaddy share sampled at {share}"
        );
    }

    #[test]
    fn sampling_shifts_toward_2014_shares() {
        let dir = RegistrarDirectory::new();
        let n = 20000;
        let count = |year| {
            (0..n)
                .filter(|&i| {
                    let u = (i as f64 + 0.5) / n as f64;
                    dir.sample(year, u).name.starts_with("Xin Net")
                })
                .count() as f64
                / n as f64
        };
        let early = count(2000);
        let late = count(2014);
        assert!(
            late > early * 2.0,
            "Xin Net grows: early {early}, late {late}"
        );
    }

    #[test]
    fn long_tail_draws_return_tail_registrars() {
        let dir = RegistrarDirectory::new();
        let r = dir.sample(2010, 0.999999);
        let tail_start = REGISTRARS.len() * 2 / 3;
        assert!(
            REGISTRARS[tail_start..].iter().any(|t| t.name == r.name),
            "draw near 1.0 must land in the tail, got {}",
            r.name
        );
    }

    #[test]
    fn lookup_by_name() {
        let dir = RegistrarDirectory::new();
        assert!(dir.by_name("eNom, Inc.").is_some());
        assert!(dir.by_name("Nonexistent").is_none());
    }
}
