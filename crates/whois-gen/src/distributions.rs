//! Calibrated marginal distributions for the synthetic corpus.
//!
//! These reproduce the paper's published aggregates:
//!
//! * **Creation-date histogram** (Figure 4a): exponential-ish growth from
//!   1995 through 2014, with the dot-com bump around 2000.
//! * **Registrant country by creation year** (Table 3 + Figure 4b): the US
//!   share declines over time while China grows sharply; the all-time
//!   aggregate approximates Table 3 (US 47.6%, CN 9.6%, GB 4.7%, ...).
//! * **Privacy-protection adoption by year** (Figure 4b): rising past 20%
//!   by 2014, with Table 7's service mix.
//! * **Unknown-country rate**: ~3.4% of records lack a country (Table 3's
//!   "(Unknown)" row).

use rand::Rng;

/// Relative number of `.com` creations per year, 1995–2014 (Figure 4a's
/// shape: growth, dot-com bump in 2000, dip, then accelerating growth to
/// ~25M in 2014).
pub const YEAR_WEIGHTS: &[(i32, f64)] = &[
    (1995, 0.2),
    (1996, 0.5),
    (1997, 0.9),
    (1998, 1.4),
    (1999, 2.8),
    (2000, 4.6),
    (2001, 2.6),
    (2002, 2.2),
    (2003, 2.6),
    (2004, 3.4),
    (2005, 4.4),
    (2006, 6.0),
    (2007, 7.4),
    (2008, 8.2),
    (2009, 8.8),
    (2010, 10.2),
    (2011, 11.8),
    (2012, 13.6),
    (2013, 15.8),
    (2014, 25.9),
];

/// Country distribution for early (pre-2008) registrations. Chosen so the
/// all-time mixture approximates Table 3's left column.
const COUNTRY_EARLY: &[(&str, f64)] = &[
    ("US", 0.515),
    ("GB", 0.0544),
    ("DE", 0.0450),
    ("FR", 0.0355),
    ("CA", 0.0331),
    ("CN", 0.0415),
    ("ES", 0.0234),
    ("AU", 0.0167),
    ("JP", 0.0144),
    ("IN", 0.0103),
    ("TR", 0.0120),
    ("VN", 0.0070),
    ("RU", 0.0210),
    ("NL", 0.0330),
    ("IT", 0.0300),
    ("BR", 0.0230),
    ("HK", 0.0330),
    ("", 0.0371), // unknown
];

/// Country distribution for 2014 registrations (Table 3's right column).
const COUNTRY_2014: &[(&str, f64)] = &[
    ("US", 0.411),
    ("CN", 0.182),
    ("GB", 0.035),
    ("FR", 0.029),
    ("CA", 0.025),
    ("IN", 0.025),
    ("JP", 0.021),
    ("DE", 0.019),
    ("ES", 0.017),
    ("TR", 0.017),
    ("NL", 0.025),
    ("IT", 0.020),
    ("BR", 0.025),
    ("RU", 0.025),
    ("VN", 0.020),
    ("AU", 0.020),
    ("HK", 0.030),
    ("", 0.029), // unknown
];

/// Privacy-service market shares (Table 7).
pub const PRIVACY_SERVICES: &[(&str, f64)] = &[
    ("Domains By Proxy, LLC", 0.357),
    ("WhoisGuard", 0.069),
    ("Whois Privacy Protect", 0.068),
    ("FBO REGISTRANT", 0.049),
    ("PrivacyProtect.org", 0.042),
    ("Aliyun", 0.039),
    ("Perfect Privacy, LLC", 0.034),
    ("Happy DreamHost", 0.028),
    ("MuuMuuDomain", 0.022),
    ("1&1 Internet Inc.", 0.020),
    ("Private Registration", 0.08),
    ("Hidden by Whois Privacy Protection Service", 0.06),
];

/// Brand companies and their approximate `.com` portfolio sizes
/// (Table 4), expressed per million generated domains.
pub const BRAND_COMPANIES: &[(&str, f64)] = &[
    ("Amazon Technologies, Inc.", 202.0),
    ("AOL Inc.", 168.0),
    ("Microsoft Corporation", 164.0),
    ("21st Century Fox America, Inc.", 140.0),
    ("Warner Bros. Entertainment Inc.", 134.0),
    ("Yahoo! Inc.", 103.0),
    ("Disney Enterprises, Inc.", 101.0),
    ("Google Inc.", 65.0),
    ("AT&T Services, Inc.", 39.0),
    ("eBay Inc.", 25.0),
    ("Nike, Inc.", 25.0),
];

/// Sample from a weighted table given a uniform draw in `[0, 1)`;
/// weights need not be normalized.
pub fn weighted_choice<T>(table: &[(T, f64)], u: f64) -> &T {
    let total: f64 = table.iter().map(|(_, w)| w).sum();
    let mut acc = 0.0;
    let target = u * total;
    for (item, w) in table {
        acc += w;
        if target < acc {
            return item;
        }
    }
    &table[table.len() - 1].0
}

/// Sample a creation year per Figure 4a.
pub fn sample_year<R: Rng + ?Sized>(rng: &mut R) -> i32 {
    *weighted_choice(YEAR_WEIGHTS, rng.random())
}

/// Interpolation weight toward the 2014 country distribution: 0 before
/// 2008, 1 at 2014.
fn year_blend(year: i32) -> f64 {
    ((year - 2008) as f64 / 6.0).clamp(0.0, 1.0)
}

/// Sample a registrant country code for `year` (empty string = country
/// unknown / missing from the record).
pub fn sample_country<R: Rng + ?Sized>(rng: &mut R, year: i32) -> &'static str {
    let w = year_blend(year);
    // Blend by choosing which table to sample from.
    let table = if rng.random_bool(w) {
        COUNTRY_2014
    } else {
        COUNTRY_EARLY
    };
    *weighted_choice(table, rng.random::<f64>())
}

/// Privacy-protection adoption rate for domains created in `year`
/// (Figure 4b: negligible in the 1990s, passing 20% in 2014).
pub fn privacy_rate(year: i32) -> f64 {
    match year {
        i32::MIN..=1999 => 0.005,
        2000..=2004 => 0.02 + 0.01 * (year - 2000) as f64,
        2005..=2009 => 0.07 + 0.02 * (year - 2005) as f64,
        2010..=2013 => 0.15 + 0.02 * (year - 2010) as f64,
        _ => 0.22,
    }
}

/// Sample a privacy service (Table 7 mix).
pub fn sample_privacy_service<R: Rng + ?Sized>(rng: &mut R) -> &'static str {
    *weighted_choice(PRIVACY_SERVICES, rng.random::<f64>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(1)
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let table = [("a", 1.0), ("b", 3.0)];
        assert_eq!(*weighted_choice(&table, 0.0), "a");
        assert_eq!(*weighted_choice(&table, 0.2), "a");
        assert_eq!(*weighted_choice(&table, 0.3), "b");
        assert_eq!(*weighted_choice(&table, 0.99), "b");
    }

    #[test]
    fn year_histogram_shape() {
        let mut r = rng();
        let mut counts = std::collections::HashMap::new();
        for _ in 0..100_000 {
            *counts.entry(sample_year(&mut r)).or_insert(0usize) += 1;
        }
        // 2014 is the largest year; 2000 bump exceeds 2001-2002.
        let c = |y: i32| *counts.get(&y).unwrap_or(&0);
        assert!(c(2014) > c(2013));
        assert!(c(2000) > c(2001));
        assert!(c(2000) > c(2002));
        assert!(c(1995) < c(2005));
        // All years present.
        for (y, _) in YEAR_WEIGHTS {
            assert!(c(*y) > 0, "year {y} never sampled");
        }
    }

    #[test]
    fn country_all_time_aggregate_matches_table3() {
        // Sample (year, country) jointly and check the aggregate marginals.
        let mut r = rng();
        let n = 200_000;
        let mut us = 0usize;
        let mut cn = 0usize;
        let mut unknown = 0usize;
        for _ in 0..n {
            let year = sample_year(&mut r);
            match sample_country(&mut r, year) {
                "US" => us += 1,
                "CN" => cn += 1,
                "" => unknown += 1,
                _ => {}
            }
        }
        let us_share = us as f64 / n as f64;
        let cn_share = cn as f64 / n as f64;
        let unk_share = unknown as f64 / n as f64;
        assert!((us_share - 0.476).abs() < 0.04, "US share {us_share}");
        assert!((cn_share - 0.096).abs() < 0.03, "CN share {cn_share}");
        assert!(
            (unk_share - 0.034).abs() < 0.015,
            "unknown share {unk_share}"
        );
    }

    #[test]
    fn country_2014_matches_right_column() {
        let mut r = rng();
        let n = 100_000;
        let mut cn = 0usize;
        for _ in 0..n {
            if sample_country(&mut r, 2014) == "CN" {
                cn += 1;
            }
        }
        let share = cn as f64 / n as f64;
        assert!((share - 0.182).abs() < 0.01, "CN 2014 share {share}");
    }

    #[test]
    fn privacy_rate_increases_and_passes_20_percent() {
        assert!(privacy_rate(1996) < 0.01);
        assert!(privacy_rate(2005) < privacy_rate(2010));
        assert!(privacy_rate(2010) < privacy_rate(2014));
        assert!(privacy_rate(2014) > 0.20);
    }

    #[test]
    fn privacy_service_mix_has_dbp_on_top() {
        let mut r = rng();
        let mut dbp = 0usize;
        let n = 50_000;
        for _ in 0..n {
            if sample_privacy_service(&mut r).starts_with("Domains By Proxy") {
                dbp += 1;
            }
        }
        let share = dbp as f64 / n as f64;
        assert!((share - 0.357 / 0.878).abs() < 0.03, "DBP share {share}");
    }

    #[test]
    fn brand_companies_table_present() {
        assert_eq!(BRAND_COMPANIES.len(), 11);
        assert!(BRAND_COMPANIES[0].1 > BRAND_COMPANIES[10].1, "sorted desc");
    }
}
