//! # whois-templates
//!
//! The **template-based** baseline parser of §2.3 (the deft-whois / Ruby
//! whois approach): one exact per-registrar template learned from labeled
//! examples, a crisp failure signal when no template matches, and the
//! fragility the paper documents — "changing a single word in the schema
//! or reordering field elements can easily lead to parsing failure."
//!
//! A [`LineMatcher`] abstracts one template line: titled lines match by
//! their exact title (values vary per domain); label-free lines match any
//! text and are labeled by position. Matching tolerates *omitted* lines
//! (real records skip absent fields like fax) by allowing the template
//! cursor to skip forward a bounded number of entries — but it does not
//! tolerate retitled or reordered lines, which is exactly the failure
//! mode measured in the paper's deft-whois experiment.

use std::collections::HashMap;
use whois_model::{BlockLabel, ErrorStats};
use whois_tokenize::split_title_value;

/// How far the matcher may skip forward over omitted template lines
/// (whole optional contact blocks can be absent).
const MAX_SKIP: usize = 30;

/// How many record lines with no matching template entry are tolerated
/// per record (a registrar occasionally emits a field the template's
/// source example lacked). Such lines inherit the previous line's label —
/// the same guessing a hand-written template does. Anything beyond this
/// budget is a parse failure, which keeps the parser fragile to real
/// schema drift (where most titles change).
const MAX_UNMATCHED_LINES: usize = 2;

/// One line of a learned template.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LineMatcher {
    /// A `title: value` line — matches any line with exactly this
    /// (trimmed, lower-cased) title.
    Titled {
        /// The exact title text.
        title: String,
        /// The label every matching line receives.
        label: BlockLabel,
    },
    /// A line with no separator — matches any separator-free line and
    /// labels it by template position.
    Bare {
        /// The label for this position.
        label: BlockLabel,
    },
}

impl LineMatcher {
    fn matches(&self, line: &str) -> Option<BlockLabel> {
        let split = effective_split(line);
        match (self, split) {
            (LineMatcher::Titled { title, label }, Some((t, _))) => (t == *title).then_some(*label),
            (LineMatcher::Bare { label }, None) => Some(*label),
            _ => None,
        }
    }
}

/// Title side of a line under the template parser's separator model
/// (colon/tab/ellipsis/equals plus the bracket convention), lower-cased.
fn effective_split(line: &str) -> Option<(String, String)> {
    let trimmed = line.trim_start();
    if let Some(rest) = trimmed.strip_prefix('[') {
        if let Some(close) = rest.find(']') {
            return Some((
                format!("[{}]", rest[..close].trim().to_lowercase()),
                rest[close + 1..].trim().to_string(),
            ));
        }
    }
    split_title_value(line).map(|(t, v, _)| (t.trim().to_lowercase(), v.trim().to_string()))
}

/// A learned per-registrar template.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Template {
    /// The registrar key this template was learned for.
    pub registrar: String,
    matchers: Vec<LineMatcher>,
}

impl Template {
    /// Learn a template from one labeled record.
    pub fn learn(registrar: &str, lines: &[&str], labels: &[BlockLabel]) -> Self {
        assert_eq!(lines.len(), labels.len(), "labels must align with lines");
        let matchers = lines
            .iter()
            .zip(labels)
            .map(|(&line, &label)| match effective_split(line) {
                Some((title, _)) => LineMatcher::Titled { title, label },
                None => LineMatcher::Bare { label },
            })
            .collect();
        Template {
            registrar: registrar.to_string(),
            matchers,
        }
    }

    /// Try to label `lines` with this template. Returns `None` — the
    /// crisp failure signal — when any line fails to match within the
    /// skip budget.
    pub fn apply(&self, lines: &[&str]) -> Option<Vec<BlockLabel>> {
        let mut out = Vec::with_capacity(lines.len());
        let mut cursor = 0usize;
        let mut unmatched = 0usize;
        for &line in lines {
            // Repeated fields (a second `Domain Status:` or `Name Server:`
            // line) re-match the previous titled matcher.
            if cursor > 0 {
                if let m @ LineMatcher::Titled { .. } = &self.matchers[cursor - 1] {
                    if let Some(label) = m.matches(line) {
                        out.push(label);
                        continue;
                    }
                }
            }
            let mut matched = None;
            // Templates tolerate omitted lines: advance the cursor up to
            // MAX_SKIP entries to find a match.
            for skip in 0..=MAX_SKIP {
                let idx = cursor + skip;
                if idx >= self.matchers.len() {
                    break;
                }
                if let Some(label) = self.matchers[idx].matches(line) {
                    matched = Some((idx, label));
                    break;
                }
            }
            match matched {
                Some((idx, label)) => {
                    out.push(label);
                    cursor = idx + 1;
                }
                None => {
                    // An unknown extra line: within budget, inherit the
                    // previous label; beyond it, crisp failure.
                    if unmatched >= MAX_UNMATCHED_LINES {
                        return None;
                    }
                    unmatched += 1;
                    out.push(out.last().copied().unwrap_or(BlockLabel::Null));
                }
            }
        }
        Some(out)
    }

    /// Number of line matchers.
    pub fn len(&self) -> usize {
        self.matchers.len()
    }

    /// True when the template is empty.
    pub fn is_empty(&self) -> bool {
        self.matchers.is_empty()
    }
}

/// Outcome statistics for a template-parser evaluation (the coverage /
/// success accounting of §2.3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoverageStats {
    /// Records whose registrar had at least one template.
    pub covered: usize,
    /// Records parsed successfully (a template matched every line).
    pub parsed: usize,
    /// Records where templates existed but none matched (fragility).
    pub failed: usize,
    /// Records from registrars with no template at all.
    pub uncovered: usize,
}

impl CoverageStats {
    /// Total records seen.
    pub fn total(&self) -> usize {
        self.covered + self.uncovered
    }

    /// Fraction of records with template coverage (the paper found 94%
    /// for deft-whois on `com`).
    pub fn coverage_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.covered as f64 / self.total() as f64
        }
    }

    /// Fraction of records successfully parsed.
    pub fn success_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.parsed as f64 / self.total() as f64
        }
    }
}

/// The template-based parser: a registrar-keyed template store.
#[derive(Clone, Debug, Default)]
pub struct TemplateParser {
    templates: HashMap<String, Vec<Template>>,
}

impl TemplateParser {
    /// Empty parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Learn a template from one labeled record, deduplicating identical
    /// templates per registrar.
    pub fn add_example(&mut self, registrar: &str, lines: &[&str], labels: &[BlockLabel]) {
        let t = Template::learn(registrar, lines, labels);
        let entry = self.templates.entry(registrar.to_string()).or_default();
        if !entry.contains(&t) {
            entry.push(t);
        }
    }

    /// Number of registrars with templates.
    pub fn registrars(&self) -> usize {
        self.templates.len()
    }

    /// Total learned templates.
    pub fn template_count(&self) -> usize {
        self.templates.values().map(Vec::len).sum()
    }

    /// Whether a registrar is covered.
    pub fn covers(&self, registrar: &str) -> bool {
        self.templates.contains_key(registrar)
    }

    /// Label a record's lines; `None` is the crisp failure signal (no
    /// template for the registrar, or none of its templates matched).
    pub fn label_blocks(&self, registrar: &str, lines: &[&str]) -> Option<Vec<BlockLabel>> {
        self.templates
            .get(registrar)?
            .iter()
            .find_map(|t| t.apply(lines))
    }

    /// Evaluate over `(registrar, text, gold)` examples, producing both
    /// coverage accounting and line/document error statistics. Failed or
    /// uncovered records count every line as an error (the parser
    /// produced nothing for them).
    pub fn evaluate(
        &self,
        examples: &[(String, String, Vec<BlockLabel>)],
    ) -> (CoverageStats, ErrorStats) {
        let mut cov = CoverageStats::default();
        let mut err = ErrorStats::default();
        for (registrar, text, gold) in examples {
            let lines = whois_model::non_empty_lines(text);
            assert_eq!(lines.len(), gold.len(), "gold labels misaligned");
            if !self.covers(registrar) {
                cov.uncovered += 1;
                err.record(gold.len(), gold.len());
                continue;
            }
            cov.covered += 1;
            match self.label_blocks(registrar, &lines) {
                Some(pred) => {
                    cov.parsed += 1;
                    let errors = pred.iter().zip(gold).filter(|(p, g)| p != g).count();
                    err.record(gold.len(), errors);
                }
                None => {
                    cov.failed += 1;
                    err.record(gold.len(), gold.len());
                }
            }
        }
        (cov, err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whois_gen::corpus::{generate_corpus, GenConfig};

    fn corpus_examples(seed: u64, n: usize, drift: f64) -> Vec<(String, String, Vec<BlockLabel>)> {
        generate_corpus(GenConfig {
            drift_fraction: drift,
            ..GenConfig::new(seed, n)
        })
        .into_iter()
        .map(|d| {
            (
                d.registrar.name.to_string(),
                d.rendered.text(),
                d.block_labels().labels(),
            )
        })
        .collect()
    }

    fn train_parser(examples: &[(String, String, Vec<BlockLabel>)]) -> TemplateParser {
        let mut p = TemplateParser::new();
        for (reg, text, gold) in examples {
            let lines = whois_model::non_empty_lines(text);
            p.add_example(reg, &lines, gold);
        }
        p
    }

    #[test]
    fn template_learn_apply_roundtrip() {
        let lines = vec!["Domain Name: X.COM", "Registrar: GoDaddy", "John Smith"];
        use BlockLabel::*;
        let labels = vec![Domain, Registrar, Registrant];
        let t = Template::learn("gd", &lines, &labels);
        assert_eq!(t.len(), 3);
        // Same titles, different values.
        let other = vec!["Domain Name: Y.NET", "Registrar: eNom", "Jane Roe"];
        assert_eq!(t.apply(&other), Some(labels.clone()));
    }

    #[test]
    fn retitled_lines_break_the_template() {
        use BlockLabel::*;
        let lines = vec![
            "Domain Name: X.COM",
            "Registrar: GoDaddy",
            "Creation Date: 2014-01-01",
            "Registrant Name: J",
            "Registrant Email: j@x.org",
        ];
        let t = Template::learn(
            "gd",
            &lines,
            &[Domain, Registrar, Date, Registrant, Registrant],
        );
        // A drifted schema retitles several fields ⇒ crisp failure once
        // the unknown-line budget is exceeded.
        assert_eq!(
            t.apply(&[
                "Domain Name: Y.COM",
                "Sponsor: GoDaddy",
                "Registered On: 2014-01-01",
                "Holder Name: K",
                "Holder Email: k@x.org",
            ]),
            None
        );
        // A single unknown line squeaks by, but with a *wrong* inherited
        // label — the quiet mislabeling the paper warns about.
        let labels = t
            .apply(&[
                "Domain Name: Y.COM",
                "Sponsor: GoDaddy",
                "Creation Date: 2014-01-01",
                "Registrant Name: K",
                "Registrant Email: k@x.org",
            ])
            .unwrap();
        assert_eq!(labels[1], Domain, "inherited from the previous line");
    }

    #[test]
    fn omitted_lines_are_tolerated() {
        use BlockLabel::*;
        let lines = vec![
            "Registrant Name: J",
            "Registrant Fax: +1.5550100",
            "Registrant Email: j@x.org",
        ];
        let t = Template::learn("r", &lines, &[Registrant, Registrant, Registrant]);
        // Record without the fax line still parses.
        let pred = t.apply(&["Registrant Name: K", "Registrant Email: k@x.org"]);
        assert_eq!(pred, Some(vec![Registrant, Registrant]));
    }

    #[test]
    fn reordering_beyond_skip_budget_fails() {
        use BlockLabel::*;
        let lines: Vec<String> = (0..12).map(|i| format!("Field{i}: v")).collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let t = Template::learn("r", &refs, &[Null; 12]);
        let mut reordered: Vec<&str> = refs.clone();
        reordered.swap(0, 11); // moves a late line first: needs skip > MAX_SKIP
        assert_eq!(t.apply(&reordered), None);
    }

    #[test]
    fn parser_is_perfect_on_its_training_registrars() {
        let examples = corpus_examples(61, 150, 0.0);
        let parser = train_parser(&examples);
        let (cov, err) = parser.evaluate(&examples);
        assert_eq!(cov.uncovered, 0);
        assert_eq!(cov.failed, 0);
        assert_eq!(
            err.line_errors, 0,
            "templates trained on these exact records"
        );
    }

    #[test]
    fn parser_generalizes_within_registrar_but_not_across() {
        let train = corpus_examples(63, 200, 0.0);
        let test = corpus_examples(65, 200, 0.0);
        let parser = train_parser(&train);
        let (cov, _) = parser.evaluate(&test);
        // Same registrar population ⇒ high coverage; success tracks
        // coverage because formats are stable without drift.
        assert!(
            cov.coverage_rate() > 0.9,
            "coverage {}",
            cov.coverage_rate()
        );
        assert!(
            cov.parsed as f64 / cov.covered.max(1) as f64 > 0.9,
            "within-format success should be high: {:?}",
            cov
        );
    }

    #[test]
    fn drift_breaks_templates() {
        let train = corpus_examples(67, 200, 0.0);
        let parser = train_parser(&train);
        // Same seeds but every record drifted.
        let drifted = corpus_examples(67, 200, 1.0);
        let (cov, err) = parser.evaluate(&drifted);
        assert!(cov.covered > 150, "registrars are still known");
        assert!(
            (cov.failed as f64) / (cov.covered as f64) > 0.8,
            "drift must break most templates: {:?}",
            cov
        );
        assert!(err.line_error_rate() > 0.5);
    }

    #[test]
    fn uncovered_registrar_is_a_crisp_failure() {
        let parser = train_parser(&corpus_examples(69, 20, 0.0));
        assert!(!parser.covers("Totally Unknown Registrar"));
        assert_eq!(
            parser.label_blocks("Totally Unknown Registrar", &["x: y"]),
            None
        );
    }

    #[test]
    fn coverage_stats_rates() {
        let s = CoverageStats {
            covered: 94,
            parsed: 40,
            failed: 54,
            uncovered: 6,
        };
        assert_eq!(s.total(), 100);
        assert!((s.coverage_rate() - 0.94).abs() < 1e-9);
        assert!((s.success_rate() - 0.40).abs() < 1e-9);
        assert_eq!(CoverageStats::default().coverage_rate(), 0.0);
    }

    #[test]
    fn duplicate_templates_are_deduplicated() {
        let mut p = TemplateParser::new();
        use BlockLabel::*;
        p.add_example("r", &["A: 1"], &[Null]);
        p.add_example("r", &["A: 2"], &[Null]);
        assert_eq!(p.template_count(), 1, "same title structure dedupes");
        p.add_example("r", &["B: 1"], &[Null]);
        assert_eq!(p.template_count(), 2);
    }
}
