//! Push-based feature emission.
//!
//! The original annotation API materialized every line's feature bag as a
//! `Vec<String>`, which each consumer then immediately re-processed
//! (counted into a dictionary builder, or mapped to dense ids and
//! dropped). [`FeatureSink`] inverts that flow: annotation *pushes* each
//! feature string — composed in a reusable buffer and borrowed for the
//! duration of the call — into a sink, and the sink interns it in place.
//! Steady-state encoding therefore allocates no `String`s at all; the
//! only string allocations happen the first time a feature is ever seen
//! (inside [`crate::annotate::AnnotateScratch`]'s dedup interner or a
//! [`crate::dictionary::DictionaryBuilder`]'s count table).
//!
//! The classic `Vec<LineObservation>` API survives as a thin wrapper over
//! [`CollectSink`].

use crate::annotate::LineObservation;

/// Receiver for streamed per-line feature bags.
///
/// The annotator calls `begin_line` once per labelable line, then
/// `feature` once per *deduplicated* feature occurrence, then
/// `end_line`. Feature strings are only valid for the duration of the
/// `feature` call — sinks that need to keep them must intern or copy.
pub trait FeatureSink {
    /// A new labelable line begins; `text` is its verbatim content.
    fn begin_line(&mut self, text: &str) {
        let _ = text;
    }

    /// One feature-string occurrence (already deduplicated within the
    /// line, before any ablation transform).
    fn feature(&mut self, feature: &str);

    /// The current line's feature bag is complete.
    fn end_line(&mut self) {}
}

/// Forward through a mutable reference so sinks can be passed down
/// without giving up ownership.
impl<S: FeatureSink + ?Sized> FeatureSink for &mut S {
    fn begin_line(&mut self, text: &str) {
        (**self).begin_line(text);
    }

    fn feature(&mut self, feature: &str) {
        (**self).feature(feature);
    }

    fn end_line(&mut self) {
        (**self).end_line();
    }
}

/// Sink that materializes the classic [`LineObservation`] vector.
#[derive(Default, Debug)]
pub struct CollectSink {
    out: Vec<LineObservation>,
}

impl CollectSink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected observations, one per line.
    pub fn into_observations(self) -> Vec<LineObservation> {
        self.out
    }
}

impl FeatureSink for CollectSink {
    fn begin_line(&mut self, text: &str) {
        self.out.push(LineObservation {
            text: text.to_string(),
            features: Vec::with_capacity(16),
        });
    }

    fn feature(&mut self, feature: &str) {
        self.out
            .last_mut()
            .expect("feature() before begin_line()")
            .features
            .push(feature.to_string());
    }
}

/// Sink that counts lines and feature occurrences — useful for tests and
/// cheap corpus statistics.
#[derive(Default, Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountingSink {
    /// Lines seen (`begin_line` calls).
    pub lines: usize,
    /// Deduplicated feature occurrences seen (`feature` calls).
    pub features: usize,
}

impl FeatureSink for CountingSink {
    fn begin_line(&mut self, _text: &str) {
        self.lines += 1;
    }

    fn feature(&mut self, _feature: &str) {
        self.features += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<S: FeatureSink>(mut sink: S) -> S {
        sink.begin_line("a: b");
        sink.feature("m:SEP");
        sink.feature("w:a@T");
        sink.end_line();
        sink.begin_line("c");
        sink.feature("w:c@V");
        sink.end_line();
        sink
    }

    #[test]
    fn collect_sink_materializes_observations() {
        let obs = drive(CollectSink::new()).into_observations();
        assert_eq!(obs.len(), 2);
        assert_eq!(obs[0].text, "a: b");
        assert_eq!(obs[0].features, vec!["m:SEP", "w:a@T"]);
        assert_eq!(obs[1].features, vec!["w:c@V"]);
    }

    #[test]
    fn counting_sink_counts() {
        let c = drive(CountingSink::default());
        assert_eq!((c.lines, c.features), (2, 3));
    }

    #[test]
    fn mut_ref_forwarding() {
        let mut inner = CountingSink::default();
        drive(&mut inner);
        assert_eq!(inner.lines, 2);
    }
}
