//! Per-line context keys: the hashable identity of a line's feature bag.
//!
//! A labelable line's features (see [`crate::annotate`]) are a pure
//! function of three inputs:
//!
//! 1. **its own text** — words, classes, separator and symbol markers;
//! 2. **whether a blank gap precedes it** — the `m:NL` marker;
//! 3. **the previous labelable line's text** — the `m:SHL`/`m:SHR`
//!    indentation markers compare against `indent_of(prev)`, and the
//!    capped `p:` window echoes the previous line's first
//!    `MAX_PREV_FEATURES` word features, both of which `prev`'s text
//!    fully determines.
//!
//! [`context_hash`] folds exactly those three inputs into a 64-bit FNV-1a
//! key, and [`context_lines`] walks a record yielding each labelable line
//! together with its key and layout context. Two lines with equal keys
//! therefore produce identical feature bags (up to the astronomically
//! unlikely 64-bit collision), which is what makes cross-record line
//! memoization (`whois-parser`'s `LineCache`) sound: the key
//! over-approximates — it may treat equal bags as distinct when only the
//! irrelevant tail of the previous line differs — but never conflates
//! distinct bags.
//!
//! [`annotate_record_into`](crate::annotate::annotate_record_into) is
//! itself implemented over this walker, so the record walk used for
//! memoization can never drift from the one used for full annotation.

use crate::markers::indent_of;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a hash of a line's verbatim text.
#[inline]
pub fn line_hash(line: &str) -> u64 {
    fnv_bytes(FNV_OFFSET, line.as_bytes())
}

/// Whether the annotator attaches a label to this line (the paper labels
/// lines containing at least one alphanumeric character; blank and
/// symbol-only lines only shape the following line's markers).
#[inline]
pub fn is_labelable(line: &str) -> bool {
    // ASCII fast path; only consult the Unicode tables when the line has
    // non-ASCII bytes and no ASCII alphanumerics.
    line.bytes().any(|b| b.is_ascii_alphanumeric())
        || (!line.is_ascii() && line.chars().any(|c| c.is_alphanumeric()))
}

/// The 64-bit context key of a labelable line: a function of its own
/// text hash, the preceding blank gap, and the previous labelable line's
/// text hash (`None` for the record's first labelable line, encoded
/// distinctly from every real hash).
pub fn context_hash(line_hash: u64, preceded_by_blank: bool, prev_hash: Option<u64>) -> u64 {
    let mut h = FNV_OFFSET;
    match prev_hash {
        Some(p) => {
            h = fnv_bytes(h, &[1]);
            h = fnv_bytes(h, &p.to_le_bytes());
        }
        None => h = fnv_bytes(h, &[0]),
    }
    h = fnv_bytes(h, &[preceded_by_blank as u8]);
    fnv_bytes(h, &line_hash.to_le_bytes())
}

/// One labelable line with the layout context the annotator would give
/// it, plus its memoization key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContextLine<'a> {
    /// The verbatim line text.
    pub text: &'a str,
    /// Whether a blank (or symbol-only) gap precedes this line.
    pub preceded_by_blank: bool,
    /// Indentation of the previous labelable line, if any.
    pub prev_indent: Option<usize>,
    /// [`context_hash`] of this line.
    pub context_hash: u64,
}

/// Iterator over the labelable lines of a record, in the exact walk
/// order of [`annotate_record_into`](crate::annotate::annotate_record_into).
#[derive(Debug)]
pub struct ContextLines<'a> {
    lines: std::str::Lines<'a>,
    preceded_by_blank: bool,
    prev: Option<(u64, usize)>,
}

/// Walk the labelable lines of `text` with their layout context and
/// memoization keys.
pub fn context_lines(text: &str) -> ContextLines<'_> {
    ContextLines {
        lines: text.lines(),
        preceded_by_blank: false,
        prev: None,
    }
}

impl<'a> Iterator for ContextLines<'a> {
    type Item = ContextLine<'a>;

    fn next(&mut self) -> Option<ContextLine<'a>> {
        for line in self.lines.by_ref() {
            if !is_labelable(line) {
                self.preceded_by_blank = true;
                continue;
            }
            let hash = line_hash(line);
            let out = ContextLine {
                text: line,
                preceded_by_blank: self.preceded_by_blank,
                prev_indent: self.prev.map(|(_, indent)| indent),
                context_hash: context_hash(hash, self.preceded_by_blank, self.prev.map(|(h, _)| h)),
            };
            self.prev = Some((hash, indent_of(line)));
            self.preceded_by_blank = false;
            return Some(out);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_matches_annotator_line_filter() {
        let text = "Domain: X.COM\n\nRegistrant:\n   John Smith\n%%%%\nUS";
        let walked: Vec<_> = context_lines(text).collect();
        let texts: Vec<&str> = walked.iter().map(|c| c.text).collect();
        assert_eq!(
            texts,
            vec!["Domain: X.COM", "Registrant:", "   John Smith", "US"]
        );
        assert!(!walked[0].preceded_by_blank);
        assert!(walked[1].preceded_by_blank, "blank line gap");
        assert!(!walked[2].preceded_by_blank);
        assert!(
            walked[3].preceded_by_blank,
            "symbol-only line counts as gap"
        );
        assert_eq!(walked[0].prev_indent, None);
        assert_eq!(walked[2].prev_indent, Some(0));
        assert_eq!(walked[3].prev_indent, Some(3));
    }

    #[test]
    fn key_depends_on_text_gap_and_previous_line() {
        let h = line_hash("Name: John");
        let base = context_hash(h, false, Some(line_hash("Registrant:")));
        // Different own text.
        assert_ne!(
            base,
            context_hash(
                line_hash("Name: Jane"),
                false,
                Some(line_hash("Registrant:"))
            )
        );
        // Different blank-gap flag.
        assert_ne!(base, context_hash(h, true, Some(line_hash("Registrant:"))));
        // Different previous line.
        assert_ne!(base, context_hash(h, false, Some(line_hash("Admin:"))));
        // Missing previous line is distinct from any real previous line.
        assert_ne!(base, context_hash(h, false, None));
        // Same inputs, same key.
        assert_eq!(base, context_hash(h, false, Some(line_hash("Registrant:"))));
    }

    #[test]
    fn identical_context_across_records_yields_identical_keys() {
        let a: Vec<_> = context_lines("Registrar: X\nlegal text\nmore legal text").collect();
        let b: Vec<_> = context_lines("Registrar: Y\nlegal text\nmore legal text").collect();
        // First lines differ, so the second lines' keys differ (prev text
        // is part of the context)...
        assert_ne!(a[1].context_hash, b[1].context_hash);
        // ...but the third lines share (text, gap, prev text): same key.
        assert_eq!(a[2].context_hash, b[2].context_hash);
    }

    #[test]
    fn empty_and_unlabelable_records_yield_nothing() {
        assert_eq!(context_lines("").count(), 0);
        assert_eq!(context_lines("\n\n%%%\n---\n").count(), 0);
    }
}
