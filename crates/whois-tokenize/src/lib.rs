//! # whois-tokenize
//!
//! The feature-extraction front end of the statistical WHOIS parser
//! (§3.3 of *"Who is .com?"*, IMC 2015).
//!
//! Given the raw text of a WHOIS record, this crate produces, for each
//! non-empty line, a bag of **feature strings** that the CRF in
//! `whois-crf` turns into binary indicator features:
//!
//! * **Words with title/value suffixes** — each word left of the line's
//!   first separator (colon, tab, ellipsis, `=`) is emitted as `word@T`,
//!   each word to the right (or every word, when there is no separator) as
//!   `word@V`. This preserves the "title: value" structure the paper found
//!   essential.
//! * **Layout markers** — `NL` when the line is preceded by one or more
//!   blank lines, `SHL`/`SHR` when its indentation shifts left/right
//!   relative to the previous non-empty line, `SYM` when it starts with a
//!   symbol such as `#` or `%`, `SEP` when it contains a separator, and
//!   `TAB` when it contains a tab.
//! * **Word classes** — generalizations such as `FIVEDIGIT` (candidate ZIP
//!   code), `EMAIL`, `PHONE`, `URL`, `DATE`, `YEAR`, `IPADDR`, `COUNTRY`,
//!   `NUMERIC` and `ALLCAPS`, each also suffixed `@T`/`@V` by which side of
//!   the separator they occur on.
//!
//! A frequency-trimmed [`Dictionary`] interns feature strings into dense
//! `u32` ids for the CRF.

pub mod annotate;
pub mod classes;
pub mod context;
pub mod dictionary;
pub mod lexicon;
pub mod markers;
pub mod separator;
pub mod sink;
pub mod words;

pub use annotate::{
    annotate_record, annotate_record_into, annotate_record_lines, annotate_record_lines_into,
    AnnotateScratch, LineObservation,
};
pub use classes::{word_classes, word_classes_into, WordClass};
pub use context::{
    context_hash, context_lines, is_labelable, line_hash, ContextLine, ContextLines,
};
pub use dictionary::{Dictionary, DictionaryBuilder, EncodeSink, FitSink};
pub use markers::{line_markers, Markers};
pub use separator::{split_title_value, Separator};
pub use sink::{CollectSink, CountingSink, FeatureSink};
pub use words::{for_each_word, words_of};
