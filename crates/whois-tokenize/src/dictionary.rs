//! Frequency-trimmed feature dictionary.
//!
//! The paper compiles "a list of all the words (ignoring capitalization)
//! that appear in the training set" and trims very infrequent words, ending
//! with tens of thousands of entries. [`Dictionary`] does the same for our
//! feature strings: it is built by counting occurrences over a training
//! corpus, trimming entries below a minimum count, and freezing the
//! survivors into dense `u32` ids.
//!
//! Marker (`m:`) and class (`c:`) features are never trimmed — they are a
//! small closed set and the paper's generalization power depends on them
//! surviving even when rare in a small training sample.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::sink::FeatureSink;

/// An immutable mapping from feature strings to dense ids.
///
/// Serialization stores only the id-ordered name list, so the JSON form
/// is deterministic; the reverse index is rebuilt on load.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
#[serde(from = "DictionaryRepr", into = "DictionaryRepr")]
pub struct Dictionary {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

/// Wire format: names in id order.
#[derive(Serialize, Deserialize)]
struct DictionaryRepr {
    names: Vec<String>,
}

impl From<DictionaryRepr> for Dictionary {
    fn from(repr: DictionaryRepr) -> Self {
        let ids = repr
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
        Dictionary {
            ids,
            names: repr.names,
        }
    }
}

impl From<Dictionary> for DictionaryRepr {
    fn from(d: Dictionary) -> Self {
        DictionaryRepr { names: d.names }
    }
}

/// Builder that counts feature occurrences before trimming.
#[derive(Clone, Debug, Default)]
pub struct DictionaryBuilder {
    counts: HashMap<String, u32>,
}

impl DictionaryBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one occurrence of `feature`. Allocates only the first time
    /// a given feature string is seen; repeat observations intern against
    /// the existing key.
    pub fn observe(&mut self, feature: &str) {
        match self.counts.get_mut(feature) {
            Some(count) => *count += 1,
            None => {
                self.counts.insert(feature.to_string(), 1);
            }
        }
    }

    /// View this builder as a [`FeatureSink`], so annotation can stream
    /// features straight into the count table (the fit path).
    pub fn as_sink(&mut self) -> FitSink<'_> {
        FitSink { builder: self }
    }

    /// Count every feature of an iterator (e.g. one line's bag).
    pub fn observe_all<'a>(&mut self, features: impl IntoIterator<Item = &'a str>) {
        for f in features {
            self.observe(f);
        }
    }

    /// Freeze into a [`Dictionary`], dropping open-class (`w:` and `p:`)
    /// features seen fewer than `min_count` times. Ids are assigned in sorted name
    /// order so dictionary construction is deterministic.
    pub fn build(self, min_count: u32) -> Dictionary {
        let mut names: Vec<String> = self
            .counts
            .into_iter()
            .filter(|(name, count)| {
                let open_class = name.starts_with("w:") || name.starts_with("p:");
                !open_class || *count >= min_count
            })
            .map(|(name, _)| name)
            .collect();
        names.sort_unstable();
        let ids = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
        Dictionary { ids, names }
    }
}

impl Dictionary {
    /// Build directly from an iterator of feature bags with a trim
    /// threshold.
    pub fn from_bags<'a, I, B>(bags: I, min_count: u32) -> Self
    where
        I: IntoIterator<Item = B>,
        B: IntoIterator<Item = &'a str>,
    {
        let mut b = DictionaryBuilder::new();
        for bag in bags {
            b.observe_all(bag);
        }
        b.build(min_count)
    }

    /// Number of interned features.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Dense id of `feature`, if it survived trimming.
    pub fn id(&self, feature: &str) -> Option<u32> {
        self.ids.get(feature).copied()
    }

    /// Feature string for a dense id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Map a feature bag to its sorted, deduplicated id set, silently
    /// dropping unknown features (out-of-vocabulary words at parse time).
    pub fn encode<'a>(&self, features: impl IntoIterator<Item = &'a str>) -> Vec<u32> {
        let mut ids: Vec<u32> = features.into_iter().filter_map(|f| self.id(f)).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Iterate over `(id, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }

    /// A [`FeatureSink`] that interns streamed features against this
    /// dictionary, producing one sorted, deduplicated id row per line —
    /// the allocation-free encode path.
    pub fn encode_sink(&self) -> EncodeSink<'_> {
        self.encode_sink_with(Vec::new())
    }

    /// Like [`encode_sink`](Self::encode_sink), seeded with spent row
    /// buffers (from [`EncodeSink::recycle`]) so steady-state encoding
    /// reuses their capacity.
    pub fn encode_sink_with(&self, free: Vec<Vec<u32>>) -> EncodeSink<'_> {
        EncodeSink {
            dict: self,
            rows: Vec::new(),
            free,
        }
    }
}

/// Streams features into a [`DictionaryBuilder`]'s count table.
///
/// Created by [`DictionaryBuilder::as_sink`].
#[derive(Debug)]
pub struct FitSink<'b> {
    builder: &'b mut DictionaryBuilder,
}

impl FeatureSink for FitSink<'_> {
    fn feature(&mut self, feature: &str) {
        self.builder.observe(feature);
    }
}

/// Interns streamed features against a frozen [`Dictionary`].
///
/// Each line becomes one sorted, deduplicated `Vec<u32>` id row;
/// out-of-vocabulary features are dropped, exactly like
/// [`Dictionary::encode`]. Within-line raw-string dedup upstream is not
/// required: duplicate ids collapse in the end-of-line `sort`/`dedup`.
#[derive(Debug)]
pub struct EncodeSink<'d> {
    dict: &'d Dictionary,
    rows: Vec<Vec<u32>>,
    free: Vec<Vec<u32>>,
}

impl EncodeSink<'_> {
    /// The encoded rows so far, one per line.
    pub fn rows(&self) -> &[Vec<u32>] {
        &self.rows
    }

    /// Move the encoded rows out, leaving the sink ready for the next
    /// record.
    pub fn take_rows(&mut self) -> Vec<Vec<u32>> {
        std::mem::take(&mut self.rows)
    }

    /// Return spent row buffers so later lines reuse their capacity.
    pub fn recycle(&mut self, rows: impl IntoIterator<Item = Vec<u32>>) {
        self.free.extend(rows);
    }

    /// Tear down the sink, handing back every buffer it holds (for
    /// storage in a caller's scratch between records).
    pub fn into_buffers(mut self) -> Vec<Vec<u32>> {
        self.free.append(&mut self.rows);
        self.free
    }
}

impl FeatureSink for EncodeSink<'_> {
    fn begin_line(&mut self, _text: &str) {
        let mut row = self.free.pop().unwrap_or_default();
        row.clear();
        self.rows.push(row);
    }

    fn feature(&mut self, feature: &str) {
        if let Some(id) = self.dict.id(feature) {
            self.rows
                .last_mut()
                .expect("feature() before begin_line()")
                .push(id);
        }
    }

    fn end_line(&mut self) {
        let row = self
            .rows
            .last_mut()
            .expect("end_line() before begin_line()");
        row.sort_unstable();
        row.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dictionary {
        let bags: Vec<Vec<&str>> = vec![
            vec!["w:registrant@T", "w:name@T", "w:john@V", "m:SEP"],
            vec!["w:registrant@T", "w:email@T", "c:EMAIL@V", "m:SEP"],
            vec!["w:registrant@T", "m:NL"],
        ];
        Dictionary::from_bags(bags.iter().map(|b| b.iter().copied()), 2)
    }

    #[test]
    fn trimming_drops_rare_words_only() {
        let d = sample();
        assert!(d.id("w:registrant@T").is_some(), "frequent word kept");
        assert!(d.id("w:john@V").is_none(), "rare word trimmed");
        assert!(d.id("c:EMAIL@V").is_some(), "class features never trimmed");
        assert!(d.id("m:NL").is_some(), "marker features never trimmed");
    }

    #[test]
    fn ids_are_dense_and_deterministic() {
        let d1 = sample();
        let d2 = sample();
        assert_eq!(d1.len(), d2.len());
        for (id, name) in d1.iter() {
            assert_eq!(d2.id(name), Some(id), "construction is deterministic");
            assert_eq!(d1.name(id), name);
        }
        let mut ids: Vec<u32> = d1.iter().map(|(i, _)| i).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..d1.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn encode_sorts_dedups_and_drops_oov() {
        let d = sample();
        let ids = d.encode(
            ["w:registrant@T", "m:SEP", "w:registrant@T", "w:unseen@V"]
                .iter()
                .copied(),
        );
        assert_eq!(ids.len(), 2);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn serde_roundtrip() {
        let d = sample();
        let json = serde_json::to_string(&d).unwrap();
        let back: Dictionary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), d.len());
        for (id, name) in d.iter() {
            assert_eq!(back.id(name), Some(id));
        }
    }

    #[test]
    fn empty_dictionary() {
        let d = DictionaryBuilder::new().build(1);
        assert!(d.is_empty());
        assert_eq!(d.encode(["w:x@V"].iter().copied()), Vec::<u32>::new());
    }

    #[test]
    fn fit_sink_counts_like_observe() {
        let mut by_hand = DictionaryBuilder::new();
        by_hand.observe("w:a@T");
        by_hand.observe("w:a@T");
        by_hand.observe("m:SEP");

        let mut via_sink = DictionaryBuilder::new();
        {
            let mut sink = via_sink.as_sink();
            sink.begin_line("ignored");
            sink.feature("w:a@T");
            sink.feature("m:SEP");
            sink.end_line();
            sink.begin_line("ignored");
            sink.feature("w:a@T");
            sink.end_line();
        }
        let (a, b) = (by_hand.build(2), via_sink.build(2));
        assert_eq!(a.len(), b.len());
        for (id, name) in a.iter() {
            assert_eq!(b.id(name), Some(id));
        }
    }

    #[test]
    fn encode_sink_matches_encode() {
        let d = sample();
        let mut sink = d.encode_sink();
        sink.begin_line("x");
        for f in ["w:registrant@T", "m:SEP", "w:registrant@T", "w:unseen@V"] {
            sink.feature(f);
        }
        sink.end_line();
        sink.begin_line("y");
        sink.feature("m:NL");
        sink.end_line();
        assert_eq!(
            sink.rows(),
            &[
                d.encode(
                    ["w:registrant@T", "m:SEP", "w:registrant@T", "w:unseen@V"]
                        .iter()
                        .copied()
                ),
                d.encode(["m:NL"].iter().copied()),
            ]
        );
        // Rows cycle back through the free list without reallocating.
        let rows = sink.take_rows();
        let caps: Vec<usize> = rows.iter().map(Vec::capacity).collect();
        sink.recycle(rows);
        sink.begin_line("z");
        sink.feature("m:SEP");
        sink.end_line();
        assert!(caps.contains(&sink.rows()[0].capacity()));
    }

    #[test]
    fn min_count_one_keeps_everything() {
        let bags = [vec!["w:once@V"]];
        let d = Dictionary::from_bags(bags.iter().map(|b| b.iter().copied()), 1);
        assert_eq!(d.len(), 1);
    }
}
