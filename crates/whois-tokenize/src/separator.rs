//! Title/value separator detection.
//!
//! Many WHOIS lines have the shape `Registrant Name: John Smith`: a field
//! title, a separator, and a value. The paper appends `@T` to the words
//! left of the **first-appearing** separator and `@V` to the words right of
//! it (§3.3). This module finds that separator.
//!
//! Recognized separators, in the spirit of the paper's "colons, tabs, or
//! ellipses": `:` (not part of a URL scheme like `http://`), a tab, an
//! ellipsis of two or more dots, and `=`.

/// The kind of separator found on a line.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Separator {
    /// A colon (`Registrant Name: ...`). Colons that are immediately
    /// followed by `//` (URL schemes) do not count.
    Colon,
    /// A horizontal tab between title and value.
    Tab,
    /// A run of two or more dots (`Expires on..............2016-01-01`).
    Ellipsis,
    /// An equals sign (`domain = example.com`).
    Equals,
}

impl Separator {
    /// Short stable name used when emitting separator-kind features.
    pub fn name(self) -> &'static str {
        match self {
            Separator::Colon => "colon",
            Separator::Tab => "tab",
            Separator::Ellipsis => "ellipsis",
            Separator::Equals => "equals",
        }
    }
}

/// Find the first separator on `line` and split the line around it.
///
/// Returns `(title, value, separator)` where `title` is everything strictly
/// before the separator and `value` everything strictly after it. Returns
/// `None` when the line has no separator — in that case the paper treats
/// the whole line as value text.
///
/// A colon is only a separator if it is not part of `://` and if there is
/// at least one character before it on the line (a line *starting* with a
/// colon has no title). The *first* qualifying separator wins, matching the
/// paper's "first-appearing separator" rule.
pub fn split_title_value(line: &str) -> Option<(&str, &str, Separator)> {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b':' => {
                // Skip URL schemes: "http://", "https://", "rsync://" ...
                if bytes.get(i + 1) == Some(&b'/') && bytes.get(i + 2) == Some(&b'/') {
                    i += 3;
                    continue;
                }
                if line[..i].trim().is_empty() {
                    i += 1;
                    continue;
                }
                return Some((&line[..i], &line[i + 1..], Separator::Colon));
            }
            b'\t' => {
                if line[..i].trim().is_empty() {
                    i += 1;
                    continue;
                }
                return Some((&line[..i], &line[i + 1..], Separator::Tab));
            }
            b'=' => {
                if line[..i].trim().is_empty() {
                    i += 1;
                    continue;
                }
                return Some((&line[..i], &line[i + 1..], Separator::Equals));
            }
            b'.' => {
                // An ellipsis is a run of >= 2 dots. Single dots appear in
                // domain names and sentences and are not separators.
                let start = i;
                while i < bytes.len() && bytes[i] == b'.' {
                    i += 1;
                }
                if i - start >= 2 && !line[..start].trim().is_empty() {
                    return Some((&line[..start], &line[i..], Separator::Ellipsis));
                }
            }
            _ => i += 1,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colon_separator() {
        let (t, v, s) = split_title_value("Registrant Name: John Smith").unwrap();
        assert_eq!(t, "Registrant Name");
        assert_eq!(v, " John Smith");
        assert_eq!(s, Separator::Colon);
    }

    #[test]
    fn url_scheme_colon_is_not_a_separator() {
        // The colon after "URL" is the separator; the one inside the URL is
        // not.
        let (t, v, s) = split_title_value("Registrar URL: http://www.godaddy.com").unwrap();
        assert_eq!(t, "Registrar URL");
        assert_eq!(v.trim(), "http://www.godaddy.com");
        assert_eq!(s, Separator::Colon);
        // A line that is only a URL has no separator at all.
        assert_eq!(split_title_value("http://www.example.com/legal"), None);
    }

    #[test]
    fn tab_separator() {
        let (t, v, s) = split_title_value("domain\texample.com").unwrap();
        assert_eq!(t, "domain");
        assert_eq!(v, "example.com");
        assert_eq!(s, Separator::Tab);
    }

    #[test]
    fn ellipsis_separator() {
        let (t, v, s) = split_title_value("Record expires on..........2016-05-01").unwrap();
        assert_eq!(t, "Record expires on");
        assert_eq!(v, "2016-05-01");
        assert_eq!(s, Separator::Ellipsis);
    }

    #[test]
    fn single_dot_is_not_a_separator() {
        assert_eq!(split_title_value("visit example.com for details"), None);
    }

    #[test]
    fn equals_separator() {
        let (t, v, s) = split_title_value("domain = example.com").unwrap();
        assert_eq!(t.trim(), "domain");
        assert_eq!(v.trim(), "example.com");
        assert_eq!(s, Separator::Equals);
    }

    #[test]
    fn first_separator_wins() {
        let (t, _, s) = split_title_value("Phone: +1.8005551212").unwrap();
        assert_eq!(t, "Phone");
        assert_eq!(s, Separator::Colon);
    }

    #[test]
    fn no_separator() {
        assert_eq!(split_title_value("John Smith"), None);
        assert_eq!(split_title_value(""), None);
    }

    #[test]
    fn leading_separator_has_no_title() {
        // A line starting with a colon cannot have a title before it; fall
        // through to later separators or none.
        assert_eq!(split_title_value(": just a value"), None);
        let (t, _, _) = split_title_value(":first Name: J").unwrap();
        assert_eq!(t, ":first Name");
    }

    #[test]
    fn separator_names() {
        assert_eq!(Separator::Colon.name(), "colon");
        assert_eq!(Separator::Ellipsis.name(), "ellipsis");
    }
}
