//! Per-line feature-string generation.
//!
//! This is the top of the tokenization pipeline: it walks the raw record
//! text, tracks inter-line layout (blank gaps, indentation), and streams
//! the complete bag of feature strings described in §3.3 of the paper
//! into a [`FeatureSink`] — one `begin_line`/`feature`.../`end_line`
//! burst per labelable line. The classic [`LineObservation`] API is a
//! wrapper over a collecting sink.
//!
//! Feature-string namespaces:
//!
//! | prefix | meaning | example |
//! |---|---|---|
//! | `w:` | word with `@T`/`@V` side suffix | `w:organization@T` |
//! | `c:` | word class with side suffix | `c:FIVEDIGIT@V` |
//! | `m:` | layout marker | `m:NL`, `m:SHL`, `m:SYM` |
//! | `m:SEP` | line has a title/value separator (plus kind) | `m:SEP:colon` |
//! | `p:` | previous line's word feature | `p:registrant@T` |

use std::collections::HashMap;

use crate::classes::{word_classes_into, WordClass};
use crate::context::context_lines;
use crate::markers::{indent_of, line_markers};
use crate::separator::split_title_value;
use crate::sink::{CollectSink, FeatureSink};
use crate::words::for_each_word;

/// One labelable line together with its extracted feature strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LineObservation {
    /// The verbatim line text.
    pub text: String,
    /// The bag of feature strings (deduplicated, order-stable).
    pub features: Vec<String>,
}

/// How many of the previous line's features are echoed into the current
/// line as `p:` context features.
const MAX_PREV_FEATURES: usize = 12;

/// Reusable working state for streaming annotation.
///
/// Owns every buffer the annotator needs: the feature-composition
/// `String`, the word-composition `String`, the dedup interner (feature
/// string → dense id, grown only the first time a feature is ever seen),
/// the per-line generation stamps that make within-line dedup O(1) per
/// feature, and the capped previous-line word-feature ring for `p:`
/// context. After the interner has seen a workload's feature vocabulary,
/// annotating further records allocates no `String`s at all.
#[derive(Default, Debug)]
pub struct AnnotateScratch {
    /// Composition buffer for the feature currently being emitted.
    feat: String,
    /// Composition buffer for lower-cased words.
    word: String,
    /// Every distinct feature string ever emitted, mapped to a dense id.
    interner: HashMap<String, u32>,
    /// `seen[id]` = generation of the last line that emitted `id`.
    seen: Vec<u64>,
    /// Current line generation (monotonic across records).
    line_gen: u64,
    /// Previous line's first `MAX_PREV_FEATURES` word features.
    prev_w: Vec<String>,
    prev_w_len: usize,
    /// Current line's word features, captured as they are emitted.
    cur_w: Vec<String>,
    cur_w_len: usize,
    /// Reusable word-class detection buffer.
    classes: Vec<WordClass>,
}

impl AnnotateScratch {
    /// New empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct feature strings interned so far — the only
    /// source of `String` allocation on the annotation path, so a stable
    /// value across records certifies allocation-free steady state.
    pub fn distinct_features(&self) -> usize {
        self.interner.len()
    }

    fn start_record(&mut self) {
        self.prev_w_len = 0;
        self.cur_w_len = 0;
    }

    /// Clear the cross-line context (the `p:` word window), as at the
    /// start of a record. Callers that drive the line walk themselves
    /// (the memoized parse path) must call this before the first
    /// [`annotate_line_into`](Self::annotate_line_into) of a record.
    pub fn reset_context(&mut self) {
        self.start_record();
    }

    /// Annotate one labelable line given its layout context: emits the
    /// line's own features plus the `p:` context features from the
    /// current previous-line window, then rotates the window.
    ///
    /// This is one step of [`annotate_record_into`]; external callers
    /// own the record walk (see [`crate::context::context_lines`]) and
    /// the window state ([`reset_context`](Self::reset_context) /
    /// [`set_prev_window`](Self::set_prev_window)).
    pub fn annotate_line_into<S: FeatureSink>(
        &mut self,
        sink: &mut S,
        line: &str,
        preceded_by_blank: bool,
        prev_indent: Option<usize>,
    ) {
        self.line_features(sink, line, preceded_by_blank, prev_indent);
        self.finish_line(sink);
    }

    /// The previous-line word window as it stands: after
    /// [`annotate_line_into`](Self::annotate_line_into) this is the
    /// just-annotated line's first captured `w:` features — what the
    /// *next* line's `p:` context will echo.
    pub fn prev_window(&self) -> &[String] {
        &self.prev_w[..self.prev_w_len]
    }

    /// Replace the previous-line word window — used when the previous
    /// line's annotation was skipped (a memoized cache hit) but its
    /// window is known, so a following uncached line still receives the
    /// correct `p:` features. Reuses the window's `String` slots; at
    /// steady state this allocates nothing.
    pub fn set_prev_window<I>(&mut self, window: I)
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        self.prev_w_len = 0;
        for w in window.into_iter().take(MAX_PREV_FEATURES) {
            if self.prev_w_len == self.prev_w.len() {
                self.prev_w.push(String::new());
            }
            let slot = &mut self.prev_w[self.prev_w_len];
            slot.clear();
            slot.push_str(w.as_ref());
            self.prev_w_len += 1;
        }
    }

    /// Dedup `self.feat` against the current line and forward it to the
    /// sink if it is new; word features are additionally captured for the
    /// next line's `p:` context. Returns whether the feature was emitted.
    fn flush<S: FeatureSink>(&mut self, sink: &mut S) -> bool {
        let id = match self.interner.get(self.feat.as_str()) {
            Some(&id) => id,
            None => {
                let id = self.seen.len() as u32;
                self.interner.insert(self.feat.clone(), id);
                self.seen.push(0);
                id
            }
        };
        let stamp = &mut self.seen[id as usize];
        if *stamp == self.line_gen {
            return false;
        }
        *stamp = self.line_gen;
        sink.feature(&self.feat);
        if self.feat.starts_with("w:") && self.cur_w_len < MAX_PREV_FEATURES {
            if self.cur_w_len == self.cur_w.len() {
                self.cur_w.push(String::new());
            }
            let slot = &mut self.cur_w[self.cur_w_len];
            slot.clear();
            slot.push_str(&self.feat);
            self.cur_w_len += 1;
        }
        true
    }

    /// Compose a feature from `parts` and [`flush`](Self::flush) it.
    fn emit<S: FeatureSink>(&mut self, sink: &mut S, parts: &[&str]) -> bool {
        self.feat.clear();
        for p in parts {
            self.feat.push_str(p);
        }
        self.flush(sink)
    }

    /// Emit the current line's own features (everything except `p:`).
    fn line_features<S: FeatureSink>(
        &mut self,
        sink: &mut S,
        line: &str,
        preceded_by_blank: bool,
        prev_indent: Option<usize>,
    ) {
        self.line_gen += 1;
        self.cur_w_len = 0;
        sink.begin_line(line);

        // Layout markers.
        let markers = line_markers(line, preceded_by_blank, prev_indent);
        let mut marker_names = [""; 6];
        let mut n_markers = 0;
        markers.for_each_feature(|m| {
            marker_names[n_markers] = m;
            n_markers += 1;
        });
        for m in &marker_names[..n_markers] {
            self.emit(sink, &["m:", m]);
        }

        // Title/value split and word features.
        let (title, value) = match split_title_value(line) {
            Some((t, v, kind)) => {
                self.emit(sink, &["m:SEP"]);
                self.emit(sink, &["m:SEP:", kind.name()]);
                (t, v)
            }
            None => ("", line),
        };
        let mut word = std::mem::take(&mut self.word);
        for (text, side) in [(title, "@T"), (value, "@V")] {
            for_each_word(text, &mut word, |w| {
                self.emit(sink, &["w:", w, side]);
            });
        }
        self.word = word;

        // Word classes, on each side of the separator.
        let mut classes = std::mem::take(&mut self.classes);
        for (text, side) in [(title, "@T"), (value, "@V")] {
            word_classes_into(text, &mut classes);
            for &c in &classes {
                self.emit(sink, &["c:", c.name(), side]);
            }
        }
        self.classes = classes;
    }

    /// Emit the `p:` context features from the previous line, close the
    /// line, and rotate the word-feature buffers.
    ///
    /// The paper's layout markers (`NL`, `SHL`) already condition a line
    /// on its surroundings; `p:` features extend the same idea to the
    /// previous line's *words*, which is what lets the CRF carry a block
    /// discriminator like `Contact Type: registrant` onto the following
    /// generically-titled lines (the `.coop` registry-dump shape of
    /// Table 2).
    fn finish_line<S: FeatureSink>(&mut self, sink: &mut S) {
        for i in 0..self.prev_w_len {
            self.feat.clear();
            self.feat.push_str("p:");
            self.feat.push_str(&self.prev_w[i][2..]);
            self.flush(sink);
        }
        sink.end_line();
        std::mem::swap(&mut self.prev_w, &mut self.cur_w);
        self.prev_w_len = self.cur_w_len;
    }
}

/// Stream the features of every labelable line of a raw record into
/// `sink`, reusing `scratch`'s buffers.
///
/// Blank lines and lines with no alphanumeric characters are not
/// labelable (the paper does not attach labels to them) but still
/// influence the markers of the following line.
pub fn annotate_record_into<S: FeatureSink>(
    text: &str,
    scratch: &mut AnnotateScratch,
    sink: &mut S,
) {
    // Implemented over the context walker so the memoized parse path
    // (which keys on `ContextLine::context_hash`) can never disagree
    // with full annotation about which lines are labelable or what
    // layout context they see.
    scratch.start_record();
    for cl in context_lines(text) {
        scratch.line_features(sink, cl.text, cl.preceded_by_blank, cl.prev_indent);
        scratch.finish_line(sink);
    }
}

/// Stream an already-chunked sequence of labelable lines (used for
/// training data, where blank lines were dropped at labeling time).
///
/// Because the blank lines are gone, the `NL` marker is approximated as
/// absent; `SHL`/`SHR` still work from the retained indentation.
pub fn annotate_record_lines_into<T: AsRef<str>, S: FeatureSink>(
    lines: &[T],
    scratch: &mut AnnotateScratch,
    sink: &mut S,
) {
    scratch.start_record();
    let mut prev_indent: Option<usize> = None;
    for line in lines {
        let line = line.as_ref();
        scratch.line_features(sink, line, false, prev_indent);
        scratch.finish_line(sink);
        prev_indent = Some(indent_of(line));
    }
}

/// Annotate one line given its layout context.
pub fn annotate_line(
    line: &str,
    preceded_by_blank: bool,
    prev_indent: Option<usize>,
) -> LineObservation {
    let mut scratch = AnnotateScratch::new();
    let mut sink = CollectSink::new();
    scratch.line_features(&mut sink, line, preceded_by_blank, prev_indent);
    sink.end_line();
    sink.into_observations()
        .pop()
        .expect("line_features always begins a line")
}

/// Annotate every labelable line of a raw record text.
pub fn annotate_record(text: &str) -> Vec<LineObservation> {
    let mut scratch = AnnotateScratch::new();
    let mut sink = CollectSink::new();
    annotate_record_into(text, &mut scratch, &mut sink);
    sink.into_observations()
}

/// Annotate an already-chunked sequence of labelable lines.
pub fn annotate_record_lines<S: AsRef<str>>(lines: &[S]) -> Vec<LineObservation> {
    let mut scratch = AnnotateScratch::new();
    let mut sink = CollectSink::new();
    annotate_record_lines_into(lines, &mut scratch, &mut sink);
    sink.into_observations()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feats(line: &str) -> Vec<String> {
        annotate_line(line, false, None).features
    }

    #[test]
    fn title_value_word_features() {
        let f = feats("Registrant Name: John Smith");
        assert!(f.contains(&"w:registrant@T".to_string()));
        assert!(f.contains(&"w:name@T".to_string()));
        assert!(f.contains(&"w:john@V".to_string()));
        assert!(f.contains(&"w:smith@V".to_string()));
        assert!(f.contains(&"m:SEP".to_string()));
        assert!(f.contains(&"m:SEP:colon".to_string()));
    }

    #[test]
    fn line_without_separator_is_all_value() {
        let f = feats("John Smith");
        assert!(f.contains(&"w:john@V".to_string()));
        assert!(!f.iter().any(|x| x.ends_with("@T")));
        assert!(!f.contains(&"m:SEP".to_string()));
    }

    #[test]
    fn class_features_carry_side() {
        let f = feats("Registrant Postal Code: 92093");
        assert!(f.contains(&"c:FIVEDIGIT@V".to_string()));
        assert!(!f.contains(&"c:FIVEDIGIT@T".to_string()));
        let f = feats("Email: j@example.com");
        assert!(f.contains(&"c:EMAIL@V".to_string()));
    }

    #[test]
    fn features_deduplicated() {
        let f = feats("name name name: value value");
        assert_eq!(f.iter().filter(|x| *x == "w:name@T").count(), 1);
        assert_eq!(f.iter().filter(|x| *x == "w:value@V").count(), 1);
    }

    #[test]
    fn record_annotation_tracks_blank_lines() {
        let text = "Domain: X.COM\n\nRegistrant:\n   John Smith\nUS";
        let obs = annotate_record(text);
        assert_eq!(obs.len(), 4);
        assert!(!obs[0].features.contains(&"m:NL".to_string()));
        assert!(obs[1].features.contains(&"m:NL".to_string()));
        assert!(obs[2].features.contains(&"m:SHR".to_string()));
        assert!(obs[3].features.contains(&"m:SHL".to_string()));
    }

    #[test]
    fn symbol_only_lines_count_as_blank_gap() {
        let text = "a: 1\n%%%%%%\nb: 2";
        let obs = annotate_record(text);
        assert_eq!(obs.len(), 2);
        assert!(obs[1].features.contains(&"m:NL".to_string()));
    }

    #[test]
    fn symbol_start_marker_emitted() {
        let obs = annotate_record("% NOTICE: legal text");
        assert!(obs[0].features.contains(&"m:SYM".to_string()));
    }

    #[test]
    fn chunked_annotation_matches_count() {
        let lines = vec!["Domain: X", "  ns1.x.com", "ns2.x.com"];
        let obs = annotate_record_lines(&lines);
        assert_eq!(obs.len(), 3);
        assert!(obs[1].features.contains(&"m:SHR".to_string()));
        assert!(obs[2].features.contains(&"m:SHL".to_string()));
    }

    #[test]
    fn observation_keeps_verbatim_text() {
        let obs = annotate_record("  Name: J  ");
        assert_eq!(obs[0].text, "  Name: J  ");
    }

    #[test]
    fn prev_line_features_echo_previous_words() {
        let obs = annotate_record("Contact Type: registrant\nName: John");
        assert!(obs[1].features.contains(&"p:contact@T".to_string()));
        assert!(obs[1].features.contains(&"p:registrant@V".to_string()));
        assert!(!obs[0].features.iter().any(|f| f.starts_with("p:")));
    }

    #[test]
    fn prev_line_features_are_capped() {
        let long = (0..30).map(|i| format!("word{i}")).collect::<Vec<_>>();
        let text = format!("{}\nnext line", long.join(" "));
        let obs = annotate_record(&text);
        let p = obs[1]
            .features
            .iter()
            .filter(|f| f.starts_with("p:"))
            .count();
        assert_eq!(p, MAX_PREV_FEATURES);
    }

    #[test]
    fn scratch_reuse_matches_fresh_annotation() {
        let texts = [
            "Domain: X.COM\n\nRegistrant Name: John",
            "a: 1\n%%%%\nb: 2",
            "Domain: X.COM\n\nRegistrant Name: John",
        ];
        let mut scratch = AnnotateScratch::new();
        for text in texts {
            let mut sink = CollectSink::new();
            annotate_record_into(text, &mut scratch, &mut sink);
            assert_eq!(sink.into_observations(), annotate_record(text));
        }
    }

    #[test]
    fn line_by_line_walk_with_window_restore_matches_record_annotation() {
        // Drive the annotator one line at a time through the public
        // single-line API, restoring the window from a captured copy as
        // the memoized parse path does on a cache hit, and compare with
        // whole-record annotation.
        let text = "Contact Type: registrant\nName: John\n\nAddress: 1 Main St\nUS";
        let want = annotate_record(text);

        let mut scratch = AnnotateScratch::new();
        let mut got = Vec::new();
        scratch.reset_context();
        for cl in crate::context::context_lines(text) {
            let mut sink = CollectSink::new();
            scratch.annotate_line_into(&mut sink, cl.text, cl.preceded_by_blank, cl.prev_indent);
            // Round-trip the window through an owned copy, as a cache
            // entry would store it.
            let window: Vec<String> = scratch.prev_window().to_vec();
            scratch.set_prev_window(&window);
            got.extend(sink.into_observations());
        }
        assert_eq!(got, want);
    }

    #[test]
    fn prev_window_captures_the_capped_word_features() {
        let mut scratch = AnnotateScratch::new();
        let mut sink = CollectSink::new();
        scratch.reset_context();
        scratch.annotate_line_into(&mut sink, "Contact Type: registrant", false, None);
        assert_eq!(
            scratch.prev_window(),
            ["w:contact@T", "w:type@T", "w:registrant@V"]
        );
        let long = (0..30)
            .map(|i| format!("word{i}"))
            .collect::<Vec<_>>()
            .join(" ");
        scratch.annotate_line_into(&mut sink, &long, false, Some(0));
        assert_eq!(scratch.prev_window().len(), MAX_PREV_FEATURES);
    }

    #[test]
    fn steady_state_interns_nothing_new() {
        let text = "Domain: X.COM\n\nRegistrant Name: John Smith\nRegistrant Postal Code: 92093";
        let mut scratch = AnnotateScratch::new();
        let mut sink = crate::sink::CountingSink::default();
        annotate_record_into(text, &mut scratch, &mut sink);
        let vocab = scratch.distinct_features();
        assert!(vocab > 0);
        let first = sink;
        // Re-annotating the same record must not allocate a single new
        // feature string: the interner is the only String producer.
        let mut sink = crate::sink::CountingSink::default();
        annotate_record_into(text, &mut scratch, &mut sink);
        assert_eq!(scratch.distinct_features(), vocab);
        assert_eq!(sink, first);
    }
}
