//! Per-line feature-string generation.
//!
//! This is the top of the tokenization pipeline: it walks the raw record
//! text, tracks inter-line layout (blank gaps, indentation), and emits one
//! [`LineObservation`] per labelable line containing the complete bag of
//! feature strings described in §3.3 of the paper.
//!
//! Feature-string namespaces:
//!
//! | prefix | meaning | example |
//! |---|---|---|
//! | `w:` | word with `@T`/`@V` side suffix | `w:organization@T` |
//! | `c:` | word class with side suffix | `c:FIVEDIGIT@V` |
//! | `m:` | layout marker | `m:NL`, `m:SHL`, `m:SYM` |
//! | `m:SEP` | line has a title/value separator (plus kind) | `m:SEP:colon` |

use crate::classes::word_classes;
use crate::markers::{indent_of, line_markers};
use crate::separator::split_title_value;
use crate::words::words_of;

/// One labelable line together with its extracted feature strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LineObservation {
    /// The verbatim line text.
    pub text: String,
    /// The bag of feature strings (deduplicated, order-stable).
    pub features: Vec<String>,
}

fn push_unique(features: &mut Vec<String>, f: String) {
    if !features.iter().any(|x| x == &f) {
        features.push(f);
    }
}

/// Annotate one line given its layout context.
pub fn annotate_line(
    line: &str,
    preceded_by_blank: bool,
    prev_indent: Option<usize>,
) -> LineObservation {
    let mut features = Vec::with_capacity(16);

    // Layout markers.
    let markers = line_markers(line, preceded_by_blank, prev_indent);
    for m in markers.feature_strings() {
        features.push(format!("m:{m}"));
    }

    // Title/value split and word features.
    let (title, value) = match split_title_value(line) {
        Some((t, v, kind)) => {
            features.push("m:SEP".to_string());
            features.push(format!("m:SEP:{}", kind.name()));
            (t, v)
        }
        None => ("", line),
    };
    for w in words_of(title) {
        push_unique(&mut features, format!("w:{w}@T"));
    }
    for w in words_of(value) {
        push_unique(&mut features, format!("w:{w}@V"));
    }

    // Word classes, on each side of the separator.
    for c in word_classes(title) {
        push_unique(&mut features, format!("c:{}@T", c.name()));
    }
    for c in word_classes(value) {
        push_unique(&mut features, format!("c:{}@V", c.name()));
    }

    LineObservation {
        text: line.to_string(),
        features,
    }
}

/// How many of the previous line's features are echoed into the current
/// line as `p:` context features.
const MAX_PREV_FEATURES: usize = 12;

/// Append previous-line context features.
///
/// The paper's layout markers (`NL`, `SHL`) already condition a line on
/// its surroundings; `p:` features extend the same idea to the previous
/// line's *words*, which is what lets the CRF carry a block discriminator
/// like `Contact Type: registrant` onto the following generically-titled
/// lines (the `.coop` registry-dump shape of Table 2).
fn add_prev_features(out: &mut [LineObservation]) {
    for t in (1..out.len()).rev() {
        let prev: Vec<String> = out[t - 1]
            .features
            .iter()
            .filter(|f| f.starts_with("w:"))
            .take(MAX_PREV_FEATURES)
            .map(|f| format!("p:{}", &f[2..]))
            .collect();
        out[t].features.extend(prev);
    }
}

/// Annotate every labelable line of a raw record text.
///
/// Blank lines and lines with no alphanumeric characters are not labelable
/// (the paper does not attach labels to them) but still influence the
/// markers of the following line.
pub fn annotate_record(text: &str) -> Vec<LineObservation> {
    let mut out = Vec::new();
    let mut preceded_by_blank = false;
    let mut prev_indent: Option<usize> = None;
    for line in text.lines() {
        if line.chars().any(|c| c.is_alphanumeric()) {
            out.push(annotate_line(line, preceded_by_blank, prev_indent));
            prev_indent = Some(indent_of(line));
            preceded_by_blank = false;
        } else {
            preceded_by_blank = true;
        }
    }
    add_prev_features(&mut out);
    out
}

/// Annotate an already-chunked sequence of labelable lines (used for
/// training data, where blank lines were dropped at labeling time).
///
/// Because the blank lines are gone, the `NL` marker is approximated as
/// absent; `SHL`/`SHR` still work from the retained indentation.
pub fn annotate_record_lines<S: AsRef<str>>(lines: &[S]) -> Vec<LineObservation> {
    let mut out = Vec::with_capacity(lines.len());
    let mut prev_indent: Option<usize> = None;
    for line in lines {
        let line = line.as_ref();
        out.push(annotate_line(line, false, prev_indent));
        prev_indent = Some(indent_of(line));
    }
    add_prev_features(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feats(line: &str) -> Vec<String> {
        annotate_line(line, false, None).features
    }

    #[test]
    fn title_value_word_features() {
        let f = feats("Registrant Name: John Smith");
        assert!(f.contains(&"w:registrant@T".to_string()));
        assert!(f.contains(&"w:name@T".to_string()));
        assert!(f.contains(&"w:john@V".to_string()));
        assert!(f.contains(&"w:smith@V".to_string()));
        assert!(f.contains(&"m:SEP".to_string()));
        assert!(f.contains(&"m:SEP:colon".to_string()));
    }

    #[test]
    fn line_without_separator_is_all_value() {
        let f = feats("John Smith");
        assert!(f.contains(&"w:john@V".to_string()));
        assert!(!f.iter().any(|x| x.ends_with("@T")));
        assert!(!f.contains(&"m:SEP".to_string()));
    }

    #[test]
    fn class_features_carry_side() {
        let f = feats("Registrant Postal Code: 92093");
        assert!(f.contains(&"c:FIVEDIGIT@V".to_string()));
        assert!(!f.contains(&"c:FIVEDIGIT@T".to_string()));
        let f = feats("Email: j@example.com");
        assert!(f.contains(&"c:EMAIL@V".to_string()));
    }

    #[test]
    fn features_deduplicated() {
        let f = feats("name name name: value value");
        assert_eq!(f.iter().filter(|x| *x == "w:name@T").count(), 1);
        assert_eq!(f.iter().filter(|x| *x == "w:value@V").count(), 1);
    }

    #[test]
    fn record_annotation_tracks_blank_lines() {
        let text = "Domain: X.COM\n\nRegistrant:\n   John Smith\nUS";
        let obs = annotate_record(text);
        assert_eq!(obs.len(), 4);
        assert!(!obs[0].features.contains(&"m:NL".to_string()));
        assert!(obs[1].features.contains(&"m:NL".to_string()));
        assert!(obs[2].features.contains(&"m:SHR".to_string()));
        assert!(obs[3].features.contains(&"m:SHL".to_string()));
    }

    #[test]
    fn symbol_only_lines_count_as_blank_gap() {
        let text = "a: 1\n%%%%%%\nb: 2";
        let obs = annotate_record(text);
        assert_eq!(obs.len(), 2);
        assert!(obs[1].features.contains(&"m:NL".to_string()));
    }

    #[test]
    fn symbol_start_marker_emitted() {
        let obs = annotate_record("% NOTICE: legal text");
        assert!(obs[0].features.contains(&"m:SYM".to_string()));
    }

    #[test]
    fn chunked_annotation_matches_count() {
        let lines = vec!["Domain: X", "  ns1.x.com", "ns2.x.com"];
        let obs = annotate_record_lines(&lines);
        assert_eq!(obs.len(), 3);
        assert!(obs[1].features.contains(&"m:SHR".to_string()));
        assert!(obs[2].features.contains(&"m:SHL".to_string()));
    }

    #[test]
    fn observation_keeps_verbatim_text() {
        let obs = annotate_record("  Name: J  ");
        assert_eq!(obs[0].text, "  Name: J  ");
    }
}
