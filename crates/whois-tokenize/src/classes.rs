//! Word-class detectors.
//!
//! Besides individual word features, the paper generates features that
//! "test for the appearance of more general classes of words" — its example
//! is a feature firing when a line contains a five-digit number and the
//! label is `zipcode` (eq. 7). These detectors recognize such classes in
//! the whitespace-separated segments of a line. No regex crate is used;
//! each detector is a small hand-rolled scanner, which keeps the hot path
//! allocation-free.

use crate::lexicon;

/// Classes of text segments with predictive power for WHOIS labels.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WordClass {
    /// Exactly five ASCII digits — a candidate US ZIP code.
    FiveDigit,
    /// A plausible e-mail address (`local@dom.tld`).
    Email,
    /// A plausible phone/fax number (`+1.8585550100`, `(858) 555-0100`).
    Phone,
    /// A URL (`http://...`, `https://...`, `www....`).
    Url,
    /// A calendar date (`2015-02-28`, `28-Feb-2015`, `2015/02/28`,
    /// `2015.02.28`).
    Date,
    /// A bare four-digit year 1980..=2100.
    Year,
    /// An IPv4 dotted quad.
    IpAddr,
    /// A known country name or ISO code.
    Country,
    /// A segment made entirely of digits (any length).
    Numeric,
    /// An alphabetic segment of length >= 2 in ALL CAPS.
    AllCaps,
    /// A plausible domain name (`example.com`).
    DomainName,
    /// A postal-code shaped mix of letters and digits (`SW1A 1AA`, `90210-1234`).
    PostcodeLike,
}

impl WordClass {
    /// Stable feature-string name.
    pub fn name(self) -> &'static str {
        match self {
            WordClass::FiveDigit => "FIVEDIGIT",
            WordClass::Email => "EMAIL",
            WordClass::Phone => "PHONE",
            WordClass::Url => "URL",
            WordClass::Date => "DATE",
            WordClass::Year => "YEAR",
            WordClass::IpAddr => "IPADDR",
            WordClass::Country => "COUNTRY",
            WordClass::Numeric => "NUMERIC",
            WordClass::AllCaps => "ALLCAPS",
            WordClass::DomainName => "DOMAIN",
            WordClass::PostcodeLike => "POSTCODE",
        }
    }
}

fn is_all_digits(s: &str) -> bool {
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit())
}

fn keep_in_segment(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'+'
}

fn strip_punct(s: &str) -> &str {
    // Byte-wise trim with a fallback to the Unicode predicate the moment
    // a non-ASCII byte shows up at either end (a non-ASCII alphanumeric
    // must not be trimmed, and that can't be judged from one byte).
    let b = s.as_bytes();
    let (mut i, mut j) = (0, b.len());
    while i < j {
        if keep_in_segment(b[i]) {
            break;
        }
        if !b[i].is_ascii() {
            return strip_punct_slow(s);
        }
        i += 1;
    }
    while j > i {
        if keep_in_segment(b[j - 1]) {
            break;
        }
        if !b[j - 1].is_ascii() {
            return strip_punct_slow(s);
        }
        j -= 1;
    }
    &s[i..j]
}

fn strip_punct_slow(s: &str) -> &str {
    s.trim_matches(|c: char| !c.is_alphanumeric() && c != '+')
}

fn is_email(s: &str) -> bool {
    let Some((local, domain)) = s.split_once('@') else {
        return false;
    };
    if local.is_empty() || domain.len() < 3 {
        return false;
    }
    let Some((host, tld)) = domain.rsplit_once('.') else {
        return false;
    };
    !host.is_empty() && tld.len() >= 2 && tld.chars().all(|c| c.is_ascii_alphabetic())
}

fn has_prefix_ignore_case(s: &str, prefix: &[u8]) -> bool {
    s.len() >= prefix.len() && s.as_bytes()[..prefix.len()].eq_ignore_ascii_case(prefix)
}

fn is_url(s: &str) -> bool {
    has_prefix_ignore_case(s, b"http://")
        || has_prefix_ignore_case(s, b"https://")
        || (has_prefix_ignore_case(s, b"www.") && s.len() > 6)
}

fn is_ipv4(s: &str) -> bool {
    let mut octets = 0;
    for part in s.split('.') {
        if part.is_empty() || part.len() > 3 || !is_all_digits(part) {
            return false;
        }
        if part.parse::<u16>().map_or(true, |v| v > 255) {
            return false;
        }
        octets += 1;
    }
    octets == 4
}

fn is_domain_name(s: &str) -> bool {
    if s.contains('@') || is_ipv4(s) {
        return false;
    }
    let mut labels = 0;
    for label in s.split('.') {
        if label.is_empty() || !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
            return false;
        }
        labels += 1;
    }
    if labels < 2 {
        return false;
    }
    // Final label must look like a TLD: alphabetic, >= 2 chars.
    let tld = s.rsplit('.').next().unwrap();
    tld.len() >= 2 && tld.chars().all(|c| c.is_ascii_alphabetic())
}

/// Phone-ish: optional leading `+`, then at least 7 digits among digits,
/// dots, dashes, spaces-stripped parens.
fn is_phone(s: &str) -> bool {
    let body = s.strip_prefix('+').unwrap_or(s);
    if body.is_empty() {
        return false;
    }
    let mut digits = 0;
    for c in body.chars() {
        match c {
            '0'..='9' => digits += 1,
            '.' | '-' | '(' | ')' | ' ' | 'x' | 'X' => {}
            _ => return false,
        }
    }
    // 7 digits filters out dates (8 digits compact dates are rare in phone
    // position and acceptable as a collision: classes are soft evidence).
    digits >= 7 && (s.starts_with('+') || digits <= 15)
}

fn is_date(s: &str) -> bool {
    // yyyy-mm-dd / yyyy/mm/dd / yyyy.mm.dd and dd-mon-yyyy variants.
    for sep in ['-', '/', '.'] {
        let mut parts = s.split(sep);
        let (Some(a), Some(b), Some(c)) = (parts.next(), parts.next(), parts.next()) else {
            continue;
        };
        if parts.next().is_some() {
            continue;
        }
        let year_first = a.len() == 4 && is_all_digits(a);
        let year_last = c.len() == 4 && is_all_digits(c);
        let mid_ok = is_all_digits(b) && b.len() <= 2 || lexicon::is_month(b);
        if mid_ok && (year_first && is_part_ok(c) || year_last && is_part_ok(a)) {
            return true;
        }
    }
    false
}

fn is_part_ok(p: &str) -> bool {
    (is_all_digits(p) && (1..=2).contains(&p.len())) || lexicon::is_month(p)
}

fn is_year(s: &str) -> bool {
    s.len() == 4 && is_all_digits(s) && (1980..=2100).contains(&s.parse::<i32>().unwrap_or(0))
}

fn is_postcode_like(s: &str) -> bool {
    // Letter/digit mixes of length 4..=8 (e.g. "SW1A1AA") or digit groups
    // joined by a dash ("90210-1234").
    if let Some((a, b)) = s.split_once('-') {
        if is_all_digits(a) && is_all_digits(b) && a.len() == 5 && b.len() == 4 {
            return true;
        }
    }
    let len = s.chars().count();
    if !(4..=8).contains(&len) {
        return false;
    }
    let has_alpha = s.chars().any(|c| c.is_ascii_alphabetic());
    let has_digit = s.chars().any(|c| c.is_ascii_digit());
    has_alpha && has_digit && s.chars().all(|c| c.is_ascii_alphanumeric())
}

/// Every word class, in the `Ord` (= report) order.
const ALL_CLASSES: [WordClass; 12] = [
    WordClass::FiveDigit,
    WordClass::Email,
    WordClass::Phone,
    WordClass::Url,
    WordClass::Date,
    WordClass::Year,
    WordClass::IpAddr,
    WordClass::Country,
    WordClass::Numeric,
    WordClass::AllCaps,
    WordClass::DomainName,
    WordClass::PostcodeLike,
];

/// Detect every word class present in `text` (one side of a line).
///
/// Classes are detected per whitespace segment, except [`WordClass::Country`]
/// which also matches multi-word country names against the entire trimmed
/// text.
pub fn word_classes(text: &str) -> Vec<WordClass> {
    let mut out = Vec::new();
    word_classes_into(text, &mut out);
    out
}

/// [`word_classes`] into a caller-owned buffer — the allocation-free hot
/// path. `out` is cleared first; classes are appended deduplicated in
/// `Ord` order, exactly as [`word_classes`] reports them.
pub fn word_classes_into(text: &str, out: &mut Vec<WordClass>) {
    out.clear();
    let mut found = 0u16;
    let mut add = |c: WordClass| found |= 1 << c as u16;
    let trimmed = text.trim();
    if lexicon::is_country_name(trimmed) {
        add(WordClass::Country);
    }
    for raw in trimmed.split_whitespace() {
        let seg = strip_punct(raw);
        if seg.is_empty() {
            continue;
        }
        // One pass of byte statistics; every detector below is gated by
        // a cheap precondition derived from them, so the expensive
        // scanners only run on segments that could possibly match.
        let mut digits = 0usize;
        let mut alpha = 0usize;
        let mut upper = 0usize;
        let mut dots = 0usize;
        let mut ats = 0usize;
        let mut seps = 0usize; // '-', '/', '.' — date/ipv4 shapes
        let mut ascii = true;
        let mut alnum_dot_dash = true; // domain-name charset
        for &b in seg.as_bytes() {
            match b {
                b'0'..=b'9' => digits += 1,
                b'A'..=b'Z' => {
                    alpha += 1;
                    upper += 1;
                }
                b'a'..=b'z' => alpha += 1,
                b'.' => {
                    dots += 1;
                    seps += 1;
                }
                b'-' => seps += 1,
                b'/' => {
                    seps += 1;
                    alnum_dot_dash = false;
                }
                b'@' => {
                    ats += 1;
                    alnum_dot_dash = false;
                }
                _ => {
                    alnum_dot_dash = false;
                    if !b.is_ascii() {
                        ascii = false;
                    }
                }
            }
        }
        let len = seg.len();
        if digits == len {
            add(WordClass::Numeric);
            if len == 5 {
                add(WordClass::FiveDigit);
            }
            if is_year(seg) {
                add(WordClass::Year);
            }
        }
        if ats >= 1 && is_email(seg) {
            add(WordClass::Email);
        }
        if is_url(raw) || is_url(seg) {
            add(WordClass::Url);
        }
        let date = seps >= 2 && digits >= 4 && len >= 8 && is_date(seg);
        if date {
            add(WordClass::Date);
        }
        let ipv4 = dots == 3 && digits + dots == len && digits >= 4 && is_ipv4(seg);
        if ipv4 {
            add(WordClass::IpAddr);
        } else if !date
            && ascii
            && alnum_dot_dash
            && dots >= 1
            && alpha >= 2
            && ats == 0
            && is_domain_name(seg)
        {
            add(WordClass::DomainName);
        }
        if !date && !ipv4 && digits >= 7 && is_phone(seg) {
            add(WordClass::Phone);
        }
        if (len == 2 && alpha == 2 && lexicon::is_country_code(seg))
            || (alpha > 0 && lexicon::is_country_name(seg))
        {
            add(WordClass::Country);
        }
        if (((4..=8).contains(&len) && ascii) || seps == 1) && is_postcode_like(seg) {
            add(WordClass::PostcodeLike);
        }
        if len >= 2 && upper == len {
            add(WordClass::AllCaps);
        }
    }
    for c in ALL_CLASSES {
        if found & (1 << c as u16) != 0 {
            out.push(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn has(text: &str, c: WordClass) -> bool {
        word_classes(text).contains(&c)
    }

    #[test]
    fn five_digit_zip() {
        assert!(has("San Diego CA 92093", WordClass::FiveDigit));
        assert!(!has("9209", WordClass::FiveDigit));
        assert!(!has("920931", WordClass::FiveDigit));
    }

    #[test]
    fn email_detection() {
        assert!(has("jsmith@example.com", WordClass::Email));
        assert!(has("Email: j.smith@sub.example.co.uk", WordClass::Email));
        assert!(!has("not an email", WordClass::Email));
        assert!(!has("a@b", WordClass::Email));
    }

    #[test]
    fn phone_detection() {
        assert!(has("+1.8585550100", WordClass::Phone));
        assert!(has("(858) 555-0100", WordClass::Phone));
        assert!(has("+86.1065529988", WordClass::Phone));
        assert!(!has("12345", WordClass::Phone), "too few digits");
    }

    #[test]
    fn date_is_not_phone() {
        let classes = word_classes("2015-02-28");
        assert!(classes.contains(&WordClass::Date));
        assert!(!classes.contains(&WordClass::Phone));
    }

    #[test]
    fn url_detection() {
        assert!(has("http://www.godaddy.com", WordClass::Url));
        assert!(has("https://x.example/legal?q=1", WordClass::Url));
        assert!(has("www.enom.com", WordClass::Url));
        assert!(!has("example.com", WordClass::Url));
    }

    #[test]
    fn date_detection_variants() {
        assert!(has("2015-02-28", WordClass::Date));
        assert!(has("28-Feb-2015", WordClass::Date));
        assert!(has("2015/02/28", WordClass::Date));
        assert!(has("2015.02.28", WordClass::Date));
        assert!(!has("2015-13", WordClass::Date));
        assert!(!has("1.2.3.4", WordClass::Date));
    }

    #[test]
    fn year_detection() {
        assert!(has("created in 1997", WordClass::Year));
        assert!(!has("screwdriver 3000", WordClass::Year));
    }

    #[test]
    fn ipv4_detection() {
        assert!(has("ns1 at 192.168.0.1", WordClass::IpAddr));
        assert!(!has("999.1.1.1", WordClass::IpAddr));
        assert!(!has("1.2.3", WordClass::IpAddr));
    }

    #[test]
    fn country_detection() {
        assert!(has("United States", WordClass::Country));
        assert!(has("US", WordClass::Country));
        assert!(has("Country: CN", WordClass::Country));
        assert!(!has("Gondor", WordClass::Country));
    }

    #[test]
    fn domain_name_detection() {
        assert!(has("example.com", WordClass::DomainName));
        assert!(has("NS1.EXAMPLE.NET", WordClass::DomainName));
        assert!(!has("192.168.0.1", WordClass::DomainName));
        assert!(!has("hello", WordClass::DomainName));
    }

    #[test]
    fn postcode_like_detection() {
        assert!(has("SW1A1AA", WordClass::PostcodeLike));
        assert!(has("90210-1234", WordClass::PostcodeLike));
        assert!(!has("ABCDEFGH", WordClass::PostcodeLike));
    }

    #[test]
    fn allcaps_detection() {
        assert!(has("ACME CORP", WordClass::AllCaps));
        assert!(!has("Acme", WordClass::AllCaps));
        assert!(!has("A", WordClass::AllCaps), "single letters ignored");
    }

    #[test]
    fn classes_are_deduplicated_and_sorted() {
        let cs = word_classes("92093 92121");
        assert_eq!(
            cs,
            vec![WordClass::FiveDigit, WordClass::Numeric],
            "each class reported once"
        );
    }

    #[test]
    fn empty_text_has_no_classes() {
        assert!(word_classes("").is_empty());
        assert!(word_classes("   ").is_empty());
    }
}
