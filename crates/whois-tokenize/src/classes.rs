//! Word-class detectors.
//!
//! Besides individual word features, the paper generates features that
//! "test for the appearance of more general classes of words" — its example
//! is a feature firing when a line contains a five-digit number and the
//! label is `zipcode` (eq. 7). These detectors recognize such classes in
//! the whitespace-separated segments of a line. No regex crate is used;
//! each detector is a small hand-rolled scanner, which keeps the hot path
//! allocation-free.

use crate::lexicon;

/// Classes of text segments with predictive power for WHOIS labels.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WordClass {
    /// Exactly five ASCII digits — a candidate US ZIP code.
    FiveDigit,
    /// A plausible e-mail address (`local@dom.tld`).
    Email,
    /// A plausible phone/fax number (`+1.8585550100`, `(858) 555-0100`).
    Phone,
    /// A URL (`http://...`, `https://...`, `www....`).
    Url,
    /// A calendar date (`2015-02-28`, `28-Feb-2015`, `2015/02/28`,
    /// `2015.02.28`).
    Date,
    /// A bare four-digit year 1980..=2100.
    Year,
    /// An IPv4 dotted quad.
    IpAddr,
    /// A known country name or ISO code.
    Country,
    /// A segment made entirely of digits (any length).
    Numeric,
    /// An alphabetic segment of length >= 2 in ALL CAPS.
    AllCaps,
    /// A plausible domain name (`example.com`).
    DomainName,
    /// A postal-code shaped mix of letters and digits (`SW1A 1AA`, `90210-1234`).
    PostcodeLike,
}

impl WordClass {
    /// Stable feature-string name.
    pub fn name(self) -> &'static str {
        match self {
            WordClass::FiveDigit => "FIVEDIGIT",
            WordClass::Email => "EMAIL",
            WordClass::Phone => "PHONE",
            WordClass::Url => "URL",
            WordClass::Date => "DATE",
            WordClass::Year => "YEAR",
            WordClass::IpAddr => "IPADDR",
            WordClass::Country => "COUNTRY",
            WordClass::Numeric => "NUMERIC",
            WordClass::AllCaps => "ALLCAPS",
            WordClass::DomainName => "DOMAIN",
            WordClass::PostcodeLike => "POSTCODE",
        }
    }
}

fn is_all_digits(s: &str) -> bool {
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit())
}

fn strip_punct(s: &str) -> &str {
    s.trim_matches(|c: char| !c.is_alphanumeric() && c != '+')
}

fn is_email(s: &str) -> bool {
    let Some((local, domain)) = s.split_once('@') else {
        return false;
    };
    if local.is_empty() || domain.len() < 3 {
        return false;
    }
    let Some((host, tld)) = domain.rsplit_once('.') else {
        return false;
    };
    !host.is_empty() && tld.len() >= 2 && tld.chars().all(|c| c.is_ascii_alphabetic())
}

fn is_url(s: &str) -> bool {
    let lc = s.to_ascii_lowercase();
    lc.starts_with("http://")
        || lc.starts_with("https://")
        || (lc.starts_with("www.") && lc.len() > 6)
}

fn is_ipv4(s: &str) -> bool {
    let mut octets = 0;
    for part in s.split('.') {
        if part.is_empty() || part.len() > 3 || !is_all_digits(part) {
            return false;
        }
        if part.parse::<u16>().map_or(true, |v| v > 255) {
            return false;
        }
        octets += 1;
    }
    octets == 4
}

fn is_domain_name(s: &str) -> bool {
    if s.contains('@') || is_ipv4(s) {
        return false;
    }
    let mut labels = 0;
    for label in s.split('.') {
        if label.is_empty() || !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
            return false;
        }
        labels += 1;
    }
    if labels < 2 {
        return false;
    }
    // Final label must look like a TLD: alphabetic, >= 2 chars.
    let tld = s.rsplit('.').next().unwrap();
    tld.len() >= 2 && tld.chars().all(|c| c.is_ascii_alphabetic())
}

/// Phone-ish: optional leading `+`, then at least 7 digits among digits,
/// dots, dashes, spaces-stripped parens.
fn is_phone(s: &str) -> bool {
    let body = s.strip_prefix('+').unwrap_or(s);
    if body.is_empty() {
        return false;
    }
    let mut digits = 0;
    for c in body.chars() {
        match c {
            '0'..='9' => digits += 1,
            '.' | '-' | '(' | ')' | ' ' | 'x' | 'X' => {}
            _ => return false,
        }
    }
    // 7 digits filters out dates (8 digits compact dates are rare in phone
    // position and acceptable as a collision: classes are soft evidence).
    digits >= 7 && (s.starts_with('+') || digits <= 15)
}

fn is_date(s: &str) -> bool {
    // yyyy-mm-dd / yyyy/mm/dd / yyyy.mm.dd and dd-mon-yyyy variants.
    for sep in ['-', '/', '.'] {
        let parts: Vec<&str> = s.split(sep).collect();
        if parts.len() == 3 {
            let [a, b, c] = [parts[0], parts[1], parts[2]];
            let year_first = a.len() == 4 && is_all_digits(a);
            let year_last = c.len() == 4 && is_all_digits(c);
            let mid_ok = is_all_digits(b) && b.len() <= 2 || lexicon::is_month(b);
            if mid_ok && (year_first && is_part_ok(c) || year_last && is_part_ok(a)) {
                return true;
            }
        }
    }
    false
}

fn is_part_ok(p: &str) -> bool {
    (is_all_digits(p) && (1..=2).contains(&p.len())) || lexicon::is_month(p)
}

fn is_year(s: &str) -> bool {
    s.len() == 4 && is_all_digits(s) && (1980..=2100).contains(&s.parse::<i32>().unwrap_or(0))
}

fn is_postcode_like(s: &str) -> bool {
    // Letter/digit mixes of length 4..=8 (e.g. "SW1A1AA") or digit groups
    // joined by a dash ("90210-1234").
    if let Some((a, b)) = s.split_once('-') {
        if is_all_digits(a) && is_all_digits(b) && a.len() == 5 && b.len() == 4 {
            return true;
        }
    }
    let len = s.chars().count();
    if !(4..=8).contains(&len) {
        return false;
    }
    let has_alpha = s.chars().any(|c| c.is_ascii_alphabetic());
    let has_digit = s.chars().any(|c| c.is_ascii_digit());
    has_alpha && has_digit && s.chars().all(|c| c.is_ascii_alphanumeric())
}

/// Detect every word class present in `text` (one side of a line).
///
/// Classes are detected per whitespace segment, except [`WordClass::Country`]
/// which also matches multi-word country names against the entire trimmed
/// text.
pub fn word_classes(text: &str) -> Vec<WordClass> {
    let mut found = std::collections::BTreeSet::new();
    let trimmed = text.trim();
    if lexicon::is_country_name(trimmed) {
        found.insert(WordClass::Country);
    }
    for raw in trimmed.split_whitespace() {
        let seg = strip_punct(raw);
        if seg.is_empty() {
            continue;
        }
        if is_all_digits(seg) {
            found.insert(WordClass::Numeric);
            if seg.len() == 5 {
                found.insert(WordClass::FiveDigit);
            }
            if is_year(seg) {
                found.insert(WordClass::Year);
            }
        }
        if is_email(seg) {
            found.insert(WordClass::Email);
        }
        if is_url(raw) || is_url(seg) {
            found.insert(WordClass::Url);
        }
        if is_date(seg) {
            found.insert(WordClass::Date);
        }
        if is_ipv4(seg) {
            found.insert(WordClass::IpAddr);
        } else if is_domain_name(seg) && !is_date(seg) {
            found.insert(WordClass::DomainName);
        }
        if is_phone(seg) && !is_date(seg) && !is_ipv4(seg) {
            found.insert(WordClass::Phone);
        }
        if lexicon::is_country_code(seg) || lexicon::is_country_name(seg) {
            found.insert(WordClass::Country);
        }
        if is_postcode_like(seg) {
            found.insert(WordClass::PostcodeLike);
        }
        if seg.len() >= 2
            && seg.chars().all(|c| c.is_ascii_alphabetic())
            && seg.chars().all(|c| c.is_ascii_uppercase())
        {
            found.insert(WordClass::AllCaps);
        }
    }
    found.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn has(text: &str, c: WordClass) -> bool {
        word_classes(text).contains(&c)
    }

    #[test]
    fn five_digit_zip() {
        assert!(has("San Diego CA 92093", WordClass::FiveDigit));
        assert!(!has("9209", WordClass::FiveDigit));
        assert!(!has("920931", WordClass::FiveDigit));
    }

    #[test]
    fn email_detection() {
        assert!(has("jsmith@example.com", WordClass::Email));
        assert!(has("Email: j.smith@sub.example.co.uk", WordClass::Email));
        assert!(!has("not an email", WordClass::Email));
        assert!(!has("a@b", WordClass::Email));
    }

    #[test]
    fn phone_detection() {
        assert!(has("+1.8585550100", WordClass::Phone));
        assert!(has("(858) 555-0100", WordClass::Phone));
        assert!(has("+86.1065529988", WordClass::Phone));
        assert!(!has("12345", WordClass::Phone), "too few digits");
    }

    #[test]
    fn date_is_not_phone() {
        let classes = word_classes("2015-02-28");
        assert!(classes.contains(&WordClass::Date));
        assert!(!classes.contains(&WordClass::Phone));
    }

    #[test]
    fn url_detection() {
        assert!(has("http://www.godaddy.com", WordClass::Url));
        assert!(has("https://x.example/legal?q=1", WordClass::Url));
        assert!(has("www.enom.com", WordClass::Url));
        assert!(!has("example.com", WordClass::Url));
    }

    #[test]
    fn date_detection_variants() {
        assert!(has("2015-02-28", WordClass::Date));
        assert!(has("28-Feb-2015", WordClass::Date));
        assert!(has("2015/02/28", WordClass::Date));
        assert!(has("2015.02.28", WordClass::Date));
        assert!(!has("2015-13", WordClass::Date));
        assert!(!has("1.2.3.4", WordClass::Date));
    }

    #[test]
    fn year_detection() {
        assert!(has("created in 1997", WordClass::Year));
        assert!(!has("screwdriver 3000", WordClass::Year));
    }

    #[test]
    fn ipv4_detection() {
        assert!(has("ns1 at 192.168.0.1", WordClass::IpAddr));
        assert!(!has("999.1.1.1", WordClass::IpAddr));
        assert!(!has("1.2.3", WordClass::IpAddr));
    }

    #[test]
    fn country_detection() {
        assert!(has("United States", WordClass::Country));
        assert!(has("US", WordClass::Country));
        assert!(has("Country: CN", WordClass::Country));
        assert!(!has("Gondor", WordClass::Country));
    }

    #[test]
    fn domain_name_detection() {
        assert!(has("example.com", WordClass::DomainName));
        assert!(has("NS1.EXAMPLE.NET", WordClass::DomainName));
        assert!(!has("192.168.0.1", WordClass::DomainName));
        assert!(!has("hello", WordClass::DomainName));
    }

    #[test]
    fn postcode_like_detection() {
        assert!(has("SW1A1AA", WordClass::PostcodeLike));
        assert!(has("90210-1234", WordClass::PostcodeLike));
        assert!(!has("ABCDEFGH", WordClass::PostcodeLike));
    }

    #[test]
    fn allcaps_detection() {
        assert!(has("ACME CORP", WordClass::AllCaps));
        assert!(!has("Acme", WordClass::AllCaps));
        assert!(!has("A", WordClass::AllCaps), "single letters ignored");
    }

    #[test]
    fn classes_are_deduplicated_and_sorted() {
        let cs = word_classes("92093 92121");
        assert_eq!(
            cs,
            vec![WordClass::FiveDigit, WordClass::Numeric],
            "each class reported once"
        );
    }

    #[test]
    fn empty_text_has_no_classes() {
        assert!(word_classes("").is_empty());
        assert!(word_classes("   ").is_empty());
    }
}
