//! Layout markers.
//!
//! The paper marks revealing layout events on each line (§3.3): a preceding
//! blank line (`NL`), leading-whitespace shifts (`SHL`), and lines starting
//! with symbols such as `#` or `%` (`SYM`; see Figure 1's punctuation key).
//! These markers let the CRF learn, e.g., that blank lines often separate
//! blocks of information.

/// Layout markers for one line, computed relative to the previous
/// non-empty line.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Markers {
    /// The line is preceded by one or more blank (or non-alphanumeric)
    /// lines.
    pub newline_before: bool,
    /// Indentation decreased relative to the previous non-empty line
    /// ("shift left").
    pub shift_left: bool,
    /// Indentation increased relative to the previous non-empty line
    /// ("shift right").
    pub shift_right: bool,
    /// The first non-whitespace character is a symbol (`#`, `%`, `>`, `*`,
    /// `-`, ...).
    pub symbol_start: bool,
    /// The line contains a horizontal tab.
    pub has_tab: bool,
    /// The line is indented (starts with whitespace).
    pub indented: bool,
}

impl Markers {
    /// Emit the marker feature strings (`NL`, `SHL`, `SHR`, `SYM`, `TAB`,
    /// `IND`) for this line.
    pub fn feature_strings(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        self.for_each_feature(|m| out.push(m));
        out
    }

    /// Visit the marker feature strings without allocating, in
    /// [`feature_strings`](Self::feature_strings) order.
    pub fn for_each_feature(&self, mut f: impl FnMut(&'static str)) {
        if self.newline_before {
            f("NL");
        }
        if self.shift_left {
            f("SHL");
        }
        if self.shift_right {
            f("SHR");
        }
        if self.symbol_start {
            f("SYM");
        }
        if self.has_tab {
            f("TAB");
        }
        if self.indented {
            f("IND");
        }
    }
}

/// Indentation width of a line in columns (tab = 8 columns, the historical
/// WHOIS terminal convention).
pub fn indent_of(line: &str) -> usize {
    let mut col = 0;
    for c in line.chars() {
        match c {
            ' ' => col += 1,
            '\t' => col += 8 - (col % 8),
            _ => break,
        }
    }
    col
}

/// Compute the markers for `line`.
///
/// `preceded_by_blank` says whether at least one blank/non-alphanumeric
/// line occurred since the previous labelable line; `prev_indent` is the
/// indentation of that previous labelable line (`None` at the start of the
/// record).
pub fn line_markers(line: &str, preceded_by_blank: bool, prev_indent: Option<usize>) -> Markers {
    let indent = indent_of(line);
    let first = line.trim_start().chars().next();
    let symbol_start = first.is_some_and(|c| !c.is_alphanumeric());
    let (shift_left, shift_right) = match prev_indent {
        Some(p) => (indent < p, indent > p),
        None => (false, false),
    };
    Markers {
        newline_before: preceded_by_blank,
        shift_left,
        shift_right,
        symbol_start,
        has_tab: line.contains('\t'),
        indented: indent > 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indent_counts_spaces_and_tabs() {
        assert_eq!(indent_of("abc"), 0);
        assert_eq!(indent_of("   abc"), 3);
        assert_eq!(indent_of("\tabc"), 8);
        assert_eq!(indent_of("  \tabc"), 8, "tab advances to next stop");
        assert_eq!(indent_of("\t abc"), 9);
    }

    #[test]
    fn newline_marker() {
        let m = line_markers("Registrant:", true, None);
        assert!(m.newline_before);
        assert!(m.feature_strings().contains(&"NL"));
        let m = line_markers("Registrant:", false, None);
        assert!(!m.newline_before);
    }

    #[test]
    fn shifts_relative_to_previous_line() {
        let m = line_markers("unindented", false, Some(4));
        assert!(m.shift_left);
        assert!(!m.shift_right);
        let m = line_markers("    indented", false, Some(0));
        assert!(m.shift_right);
        assert!(!m.shift_left);
        let m = line_markers("    same", false, Some(4));
        assert!(!m.shift_left && !m.shift_right);
        let m = line_markers("first line", false, None);
        assert!(!m.shift_left && !m.shift_right);
    }

    #[test]
    fn symbol_start_marker() {
        assert!(line_markers("% NOTICE", false, None).symbol_start);
        assert!(line_markers("# comment", false, None).symbol_start);
        assert!(line_markers("   >>> banner", false, None).symbol_start);
        assert!(!line_markers("Domain: x", false, None).symbol_start);
    }

    #[test]
    fn tab_and_indent_markers() {
        let m = line_markers("name\tvalue", false, None);
        assert!(m.has_tab);
        assert!(!m.indented);
        let m = line_markers("  value", false, None);
        assert!(m.indented);
        assert_eq!(m.feature_strings(), vec!["IND"]);
    }

    #[test]
    fn feature_strings_complete() {
        let m = Markers {
            newline_before: true,
            shift_left: true,
            shift_right: false,
            symbol_start: true,
            has_tab: true,
            indented: true,
        };
        assert_eq!(m.feature_strings(), vec!["NL", "SHL", "SYM", "TAB", "IND"]);
    }
}
