//! Word extraction.
//!
//! Following the paper, a "word" is a maximal run of alphanumeric
//! characters (capitalization ignored). Punctuation is handled separately
//! by the marker and class detectors, so `J.Smith@example.com` yields the
//! words `j`, `smith`, `example`, `com` — while the class detector
//! separately recognizes the whole segment as an e-mail address.

/// Stream the lower-cased words of `text` into `f`, composing each word
/// in `buf` so a caller-owned buffer can be reused across lines instead
/// of allocating one `String` per word.
pub fn for_each_word(text: &str, buf: &mut String, mut f: impl FnMut(&str)) {
    buf.clear();
    for c in text.chars() {
        // ASCII fast path: skip the Unicode alphanumeric/lowercase
        // tables for the overwhelmingly common case. For ASCII the two
        // branches agree exactly (`to_lowercase` of an ASCII char is its
        // `to_ascii_lowercase`).
        if c.is_ascii() {
            if c.is_ascii_alphanumeric() {
                buf.push(c.to_ascii_lowercase());
            } else if !buf.is_empty() {
                f(buf);
                buf.clear();
            }
        } else if c.is_alphanumeric() {
            for lc in c.to_lowercase() {
                buf.push(lc);
            }
        } else if !buf.is_empty() {
            f(buf);
            buf.clear();
        }
    }
    if !buf.is_empty() {
        f(buf);
        buf.clear();
    }
}

/// Extract lower-cased words (maximal alphanumeric runs) from `text`.
pub fn words_of(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut buf = String::new();
    for_each_word(text, &mut buf, |w| out.push(w.to_string()));
    out
}

/// Extract whitespace-separated raw segments (used by the class detectors,
/// which need to see intact e-mail addresses, URLs, phone numbers, etc.).
pub fn segments_of(text: &str) -> Vec<&str> {
    text.split_whitespace().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_lowercase_and_split_on_punctuation() {
        assert_eq!(
            words_of("Registrant Name: John SMITH"),
            vec!["registrant", "name", "john", "smith"]
        );
    }

    #[test]
    fn words_split_email() {
        assert_eq!(
            words_of("j.smith@example.com"),
            vec!["j", "smith", "example", "com"]
        );
    }

    #[test]
    fn words_keep_digits() {
        assert_eq!(words_of("92093-0404"), vec!["92093", "0404"]);
        assert_eq!(words_of("1&1 Internet"), vec!["1", "1", "internet"]);
    }

    #[test]
    fn words_empty_input() {
        assert!(words_of("").is_empty());
        assert!(words_of("%% ** !!").is_empty());
    }

    #[test]
    fn words_handle_unicode() {
        assert_eq!(words_of("Köln ÅB"), vec!["köln", "åb"]);
    }

    #[test]
    fn segments_split_on_whitespace() {
        assert_eq!(
            segments_of("Phone:  +1.858.555.0100\tx42"),
            vec!["Phone:", "+1.858.555.0100", "x42"]
        );
    }
}
