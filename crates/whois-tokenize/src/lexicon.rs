//! Small static lexicons used by the word-class detectors.

/// Country names and common WHOIS spellings thereof, lower-case.
///
/// This is the detector lexicon (used for the `COUNTRY` word class), not a
/// complete ISO list: it covers the countries that dominate `.com`
/// registrations in the paper's Table 3 plus common extras seen in WHOIS
/// records.
pub const COUNTRY_NAMES: &[&str] = &[
    "united states",
    "china",
    "united kingdom",
    "germany",
    "france",
    "canada",
    "spain",
    "australia",
    "japan",
    "india",
    "turkey",
    "russia",
    "russian federation",
    "vietnam",
    "viet nam",
    "netherlands",
    "italy",
    "brazil",
    "south korea",
    "korea",
    "mexico",
    "sweden",
    "switzerland",
    "poland",
    "hong kong",
    "taiwan",
    "singapore",
    "indonesia",
    "denmark",
    "norway",
    "belgium",
    "austria",
    "ireland",
    "israel",
    "ukraine",
    "argentina",
    "portugal",
    "greece",
    "czech republic",
    "finland",
    "new zealand",
    "south africa",
    "thailand",
    "malaysia",
    "philippines",
    "pakistan",
    "egypt",
    "saudi arabia",
    "united arab emirates",
    "colombia",
    "chile",
    "romania",
    "hungary",
    "bulgaria",
];

/// Two-letter ISO 3166-1 alpha-2 codes commonly seen in WHOIS country
/// fields, upper-case.
pub const COUNTRY_CODES: &[&str] = &[
    "US", "CN", "GB", "UK", "DE", "FR", "CA", "ES", "AU", "JP", "IN", "TR", "RU", "VN", "NL", "IT",
    "BR", "KR", "MX", "SE", "CH", "PL", "HK", "TW", "SG", "ID", "DK", "NO", "BE", "AT", "IE", "IL",
    "UA", "AR", "PT", "GR", "CZ", "FI", "NZ", "ZA", "TH", "MY", "PH", "PK", "EG", "SA", "AE", "CO",
    "CL", "RO", "HU", "BG",
];

/// English and abbreviated month names, lower-case, for date detection.
pub const MONTHS: &[&str] = &[
    "jan",
    "feb",
    "mar",
    "apr",
    "may",
    "jun",
    "jul",
    "aug",
    "sep",
    "oct",
    "nov",
    "dec",
    "january",
    "february",
    "march",
    "april",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
];

/// True if `s` (case-insensitive) is a known country name.
pub fn is_country_name(s: &str) -> bool {
    let lc = s.trim().to_ascii_lowercase();
    COUNTRY_NAMES.contains(&lc.as_str())
}

/// True if `s` is a known two-letter country code (exact, upper-case or
/// lower-case).
pub fn is_country_code(s: &str) -> bool {
    let t = s.trim();
    t.len() == 2 && COUNTRY_CODES.contains(&t.to_ascii_uppercase().as_str())
}

/// True if `s` (case-insensitive) is a month name or abbreviation.
pub fn is_month(s: &str) -> bool {
    MONTHS.contains(&s.trim().to_ascii_lowercase().as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn country_names_detected_case_insensitively() {
        assert!(is_country_name("United States"));
        assert!(is_country_name("CHINA"));
        assert!(is_country_name("  japan "));
        assert!(!is_country_name("Atlantis"));
    }

    #[test]
    fn country_codes_detected() {
        assert!(is_country_code("US"));
        assert!(is_country_code("cn"));
        assert!(!is_country_code("USA"));
        assert!(!is_country_code("QQ"));
    }

    #[test]
    fn months_detected() {
        assert!(is_month("mar"));
        assert!(is_month("September"));
        assert!(!is_month("smarch"));
    }

    #[test]
    fn lexicons_are_lowercase_or_uppercase_as_documented() {
        assert!(COUNTRY_NAMES.iter().all(|c| *c == c.to_lowercase()));
        assert!(COUNTRY_CODES.iter().all(|c| *c == c.to_uppercase()));
    }
}
