//! Small static lexicons used by the word-class detectors.

/// Country names and common WHOIS spellings thereof, lower-case.
///
/// This is the detector lexicon (used for the `COUNTRY` word class), not a
/// complete ISO list: it covers the countries that dominate `.com`
/// registrations in the paper's Table 3 plus common extras seen in WHOIS
/// records.
pub const COUNTRY_NAMES: &[&str] = &[
    "united states",
    "china",
    "united kingdom",
    "germany",
    "france",
    "canada",
    "spain",
    "australia",
    "japan",
    "india",
    "turkey",
    "russia",
    "russian federation",
    "vietnam",
    "viet nam",
    "netherlands",
    "italy",
    "brazil",
    "south korea",
    "korea",
    "mexico",
    "sweden",
    "switzerland",
    "poland",
    "hong kong",
    "taiwan",
    "singapore",
    "indonesia",
    "denmark",
    "norway",
    "belgium",
    "austria",
    "ireland",
    "israel",
    "ukraine",
    "argentina",
    "portugal",
    "greece",
    "czech republic",
    "finland",
    "new zealand",
    "south africa",
    "thailand",
    "malaysia",
    "philippines",
    "pakistan",
    "egypt",
    "saudi arabia",
    "united arab emirates",
    "colombia",
    "chile",
    "romania",
    "hungary",
    "bulgaria",
];

/// Two-letter ISO 3166-1 alpha-2 codes commonly seen in WHOIS country
/// fields, upper-case.
pub const COUNTRY_CODES: &[&str] = &[
    "US", "CN", "GB", "UK", "DE", "FR", "CA", "ES", "AU", "JP", "IN", "TR", "RU", "VN", "NL", "IT",
    "BR", "KR", "MX", "SE", "CH", "PL", "HK", "TW", "SG", "ID", "DK", "NO", "BE", "AT", "IE", "IL",
    "UA", "AR", "PT", "GR", "CZ", "FI", "NZ", "ZA", "TH", "MY", "PH", "PK", "EG", "SA", "AE", "CO",
    "CL", "RO", "HU", "BG",
];

/// English and abbreviated month names, lower-case, for date detection.
pub const MONTHS: &[&str] = &[
    "jan",
    "feb",
    "mar",
    "apr",
    "may",
    "jun",
    "jul",
    "aug",
    "sep",
    "oct",
    "nov",
    "dec",
    "january",
    "february",
    "march",
    "april",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
];

/// Country names bucketed by byte length, so a lookup only compares
/// against same-length candidates (this runs per segment on the hot
/// tokenization path).
fn country_name_candidates(len: usize) -> &'static [&'static str] {
    use std::sync::OnceLock;
    static BUCKETS: OnceLock<Vec<Vec<&'static str>>> = OnceLock::new();
    let buckets = BUCKETS.get_or_init(|| {
        let max = COUNTRY_NAMES.iter().map(|c| c.len()).max().unwrap_or(0);
        let mut v = vec![Vec::new(); max + 1];
        for &c in COUNTRY_NAMES {
            v[c.len()].push(c);
        }
        v
    });
    buckets.get(len).map(Vec::as_slice).unwrap_or(&[])
}

/// True if `s` (case-insensitive) is a known country name.
pub fn is_country_name(s: &str) -> bool {
    let t = s.trim();
    country_name_candidates(t.len())
        .iter()
        .any(|c| c.eq_ignore_ascii_case(t))
}

/// True if `s` is a known two-letter country code (exact, upper-case or
/// lower-case).
pub fn is_country_code(s: &str) -> bool {
    use std::sync::OnceLock;
    static BITMAP: OnceLock<[u64; 11]> = OnceLock::new();
    let bitmap = BITMAP.get_or_init(|| {
        let mut bits = [0u64; 11];
        for code in COUNTRY_CODES {
            let b = code.as_bytes();
            let idx = (b[0] - b'A') as usize * 26 + (b[1] - b'A') as usize;
            bits[idx / 64] |= 1 << (idx % 64);
        }
        bits
    });
    let t = s.trim().as_bytes();
    if t.len() != 2 {
        return false;
    }
    let (a, b) = (t[0].to_ascii_uppercase(), t[1].to_ascii_uppercase());
    if !a.is_ascii_uppercase() || !b.is_ascii_uppercase() {
        return false;
    }
    let idx = (a - b'A') as usize * 26 + (b - b'A') as usize;
    bitmap[idx / 64] & (1 << (idx % 64)) != 0
}

/// True if `s` (case-insensitive) is a month name or abbreviation.
pub fn is_month(s: &str) -> bool {
    let t = s.trim();
    MONTHS.iter().any(|m| m.eq_ignore_ascii_case(t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn country_names_detected_case_insensitively() {
        assert!(is_country_name("United States"));
        assert!(is_country_name("CHINA"));
        assert!(is_country_name("  japan "));
        assert!(!is_country_name("Atlantis"));
    }

    #[test]
    fn country_codes_detected() {
        assert!(is_country_code("US"));
        assert!(is_country_code("cn"));
        assert!(!is_country_code("USA"));
        assert!(!is_country_code("QQ"));
    }

    #[test]
    fn months_detected() {
        assert!(is_month("mar"));
        assert!(is_month("September"));
        assert!(!is_month("smarch"));
    }

    #[test]
    fn lexicons_are_lowercase_or_uppercase_as_documented() {
        assert!(COUNTRY_NAMES.iter().all(|c| *c == c.to_lowercase()));
        assert!(COUNTRY_CODES.iter().all(|c| *c == c.to_uppercase()));
    }
}
