//! Integration test for the `whoisml` CLI binary: the gen → train →
//! parse / label / inspect round trip a downstream user runs.

use std::path::PathBuf;
use std::process::{Command, Stdio};

fn cli() -> Command {
    // Cargo puts the binary next to the test executable's parent dir.
    let mut path = PathBuf::from(env!("CARGO_BIN_EXE_whoisml"));
    if !path.exists() {
        path = PathBuf::from("target/release/whoisml");
    }
    Command::new(path)
}

#[test]
fn gen_train_parse_label_inspect_roundtrip() {
    let dir = std::env::temp_dir().join(format!("whoisml-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.jsonl");
    let model = dir.join("model.json");
    let record = dir.join("record.txt");

    // gen
    let out = cli()
        .args([
            "gen",
            "--count",
            "150",
            "--seed",
            "9",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .output()
        .expect("run gen");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(&corpus).unwrap();
    assert_eq!(body.lines().count(), 150);
    let first: serde_json::Value = serde_json::from_str(body.lines().next().unwrap()).unwrap();
    assert!(first["text"].as_str().unwrap().len() > 50);
    assert!(first["labels"].as_array().unwrap().len() > 3);

    // train
    let out = cli()
        .args([
            "train",
            "--corpus",
            corpus.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
        ])
        .output()
        .expect("run train");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());

    // parse a record taken from a fresh corpus line
    let sample_text = first["text"].as_str().unwrap();
    std::fs::write(&record, sample_text).unwrap();
    let out = cli()
        .args([
            "parse",
            "--model",
            model.to_str().unwrap(),
            "--domain",
            first["domain"].as_str().unwrap(),
            "--input",
            record.to_str().unwrap(),
        ])
        .output()
        .expect("run parse");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let parsed: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(parsed["domain"], first["domain"]);
    assert!(parsed["registrar"].is_string(), "parsed: {parsed}");

    // label with confidence columns
    let out = cli()
        .args([
            "label",
            "--model",
            model.to_str().unwrap(),
            "--input",
            record.to_str().unwrap(),
        ])
        .output()
        .expect("run label");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let rows: Vec<&str> = text.lines().collect();
    assert!(rows.len() > 5);
    for row in &rows {
        let cols: Vec<&str> = row.splitn(3, '\t').collect();
        assert_eq!(cols.len(), 3, "row {row:?}");
        let conf: f64 = cols[1].parse().unwrap();
        assert!((0.0..=1.0).contains(&conf));
    }

    // inspect
    let out = cli()
        .args(["inspect", "--model", model.to_str().unwrap()])
        .output()
        .expect("run inspect");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("registrant"));
    assert!(text.contains("=="));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_reports_errors_cleanly() {
    // Unknown command.
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing required flag.
    let out = cli()
        .args(["train", "--corpus", "/nonexistent.jsonl"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // No args prints usage.
    let out = cli().stdin(Stdio::null()).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn serve_and_query_roundtrip() {
    use std::io::{BufRead, BufReader, Read};

    let dir = std::env::temp_dir().join(format!("whoisml-serve-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.jsonl");
    let model = dir.join("model.json");
    let record = dir.join("record.txt");

    // gen + train a small model for the daemon.
    let out = cli()
        .args([
            "gen",
            "--count",
            "60",
            "--seed",
            "31",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = cli()
        .args([
            "train",
            "--corpus",
            corpus.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A record body to parse, taken from the corpus itself.
    let body = std::fs::read_to_string(&corpus).unwrap();
    let first: serde_json::Value = serde_json::from_str(body.lines().next().unwrap()).unwrap();
    let domain = first["domain"].as_str().unwrap().to_string();
    std::fs::write(&record, first["text"].as_str().unwrap()).unwrap();

    // Start the daemon on an ephemeral port and read the bound address.
    let mut daemon = cli()
        .args([
            "serve",
            "--model",
            model.to_str().unwrap(),
            "--workers",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut line = String::new();
    BufReader::new(daemon.stdout.as_mut().unwrap())
        .read_line(&mut line)
        .unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap()
        .to_string();

    // query --input → PARSE, twice (the second is a cache hit).
    for _ in 0..2 {
        let out = cli()
            .args([
                "query",
                "--addr",
                &addr,
                "--domain",
                &domain,
                "--input",
                record.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let parsed: serde_json::Value =
            serde_json::from_slice(&out.stdout).expect("query prints the record as JSON");
        assert_eq!(parsed["domain"].as_str().unwrap(), domain.to_lowercase());
    }

    // query --stats → serving counters reflect the two PARSEs.
    let out = cli()
        .args(["query", "--addr", &addr, "--stats", "1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stats: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(stats["parse_requests"].as_u64().unwrap(), 2);
    assert_eq!(stats["cache_hits"].as_u64().unwrap(), 1);
    assert_eq!(stats["cache_misses"].as_u64().unwrap(), 1);

    daemon.kill().unwrap();
    let mut rest = String::new();
    daemon.stdout.take().unwrap().read_to_string(&mut rest).ok();
    daemon.wait().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
