//! Integration: the three-way parser comparison the paper's evaluation
//! rests on (statistical vs. rule-based vs. template-based).

use whoisml::gen::corpus::{generate_corpus, GenConfig, GeneratedDomain};
use whoisml::gen::tlds;
use whoisml::model::{BlockLabel, Tld};
use whoisml::parser::{LevelParser, ParserConfig, TrainExample};
use whoisml::rules::RuleBasedParser;
use whoisml::templates::TemplateParser;

fn stat_examples(domains: &[GeneratedDomain]) -> Vec<TrainExample<BlockLabel>> {
    domains
        .iter()
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect()
}

fn rule_pairs(domains: &[GeneratedDomain]) -> Vec<(String, Vec<BlockLabel>)> {
    domains
        .iter()
        .map(|d| (d.rendered.text(), d.block_labels().labels()))
        .collect()
}

#[test]
fn statistical_dominates_rolled_back_rules_at_small_sizes() {
    // The Figure 2 relationship at 20 training examples. (Seed
    // recalibrated for the vendored RNG stream: the margin at 20
    // examples is seed-sensitive, and the vendored `rand` stand-in
    // draws a different corpus realization than upstream rand did.)
    let corpus = generate_corpus(GenConfig::new(55, 800));
    let (pool, test) = corpus.split_at(100);
    let train = &pool[..20];

    let stat = LevelParser::train(&stat_examples(train), &ParserConfig::default());
    let rules = RuleBasedParser::fit(&rule_pairs(train));

    let stat_err = stat.evaluate(&stat_examples(test)).line_error_rate();
    let rule_err = rules.evaluate(&rule_pairs(test)).line_error_rate();
    assert!(
        stat_err < rule_err,
        "statistical ({stat_err}) must beat rolled-back rules ({rule_err})"
    );
}

#[test]
fn templates_are_perfect_in_distribution_but_collapse_under_drift() {
    let corpus = generate_corpus(GenConfig::new(89, 300));
    let mut templates = TemplateParser::new();
    for d in &corpus {
        let text = d.rendered.text();
        let lines = whoisml::model::non_empty_lines(&text);
        templates.add_example(d.registrar.name, &lines, &d.block_labels().labels());
    }
    // In-distribution: same registrars, new domains.
    let fresh = generate_corpus(GenConfig::new(90, 200));
    let fresh_examples: Vec<(String, String, Vec<BlockLabel>)> = fresh
        .iter()
        .map(|d| {
            (
                d.registrar.name.to_string(),
                d.rendered.text(),
                d.block_labels().labels(),
            )
        })
        .collect();
    let (cov, err) = templates.evaluate(&fresh_examples);
    assert!(cov.coverage_rate() > 0.9);
    assert!(err.line_error_rate() < 0.1, "{}", err.line_error_rate());

    // Under drift the same parser collapses while a statistical parser
    // trained on the same undrifted data stays accurate.
    let drifted = generate_corpus(GenConfig {
        drift_fraction: 1.0,
        ..GenConfig::new(90, 200)
    });
    let drifted_examples: Vec<(String, String, Vec<BlockLabel>)> = drifted
        .iter()
        .map(|d| {
            (
                d.registrar.name.to_string(),
                d.rendered.text(),
                d.block_labels().labels(),
            )
        })
        .collect();
    let (dcov, derr) = templates.evaluate(&drifted_examples);
    assert!(
        dcov.failed as f64 / dcov.covered.max(1) as f64 > 0.8,
        "most drifted records must break their template: {dcov:?}"
    );

    let stat = LevelParser::train(&stat_examples(&corpus), &ParserConfig::default());
    let stat_err = stat.evaluate(&stat_examples(&drifted)).line_error_rate();
    assert!(
        stat_err < 0.10 && stat_err < derr.line_error_rate() / 3.0,
        "statistical under drift: {stat_err} vs templates {}",
        derr.line_error_rate()
    );
}

#[test]
fn statistical_generalizes_to_new_tlds_better_than_rules() {
    // Table 2's aggregate relationship.
    let corpus = generate_corpus(GenConfig::new(91, 1000));
    let stat = LevelParser::train(&stat_examples(&corpus), &ParserConfig::default());
    let rules = RuleBasedParser::fit(&rule_pairs(&corpus));

    let mut stat_total = 0usize;
    let mut rule_total = 0usize;
    for tld in Tld::TABLE2_TLDS {
        let sample = tlds::tld_sample(tld, 91).unwrap();
        let gold = sample.block_labels();
        let ex = TrainExample {
            text: sample.text(),
            labels: gold.labels(),
        };
        stat_total += stat.evaluate(std::slice::from_ref(&ex)).line_errors;
        rule_total += rules
            .evaluate(&[(sample.text(), gold.labels())])
            .line_errors;
    }
    assert!(
        stat_total * 2 < rule_total,
        "statistical total {stat_total} should be far below rules {rule_total}"
    );
}

#[test]
fn full_rule_parser_remains_the_near_perfect_labeler() {
    // §4.2: the full rule base labels the corpus it was developed for.
    let corpus = generate_corpus(GenConfig::new(92, 400));
    let full = RuleBasedParser::full();
    let err = full.evaluate(&rule_pairs(&corpus)).line_error_rate();
    assert!(err < 0.02, "full rule parser error {err}");
}
