//! End-to-end: mock WHOIS ecosystem → crawler → parse service → survey.
//!
//! The batch pipeline (tests/crawl_pipeline.rs) drives the parser as a
//! library; this test drives it as the long-running `whois-serve`
//! daemon instead — crawled records go over the wire as `PARSE`
//! requests, the service's own upstream path is exercised with `FETCH`,
//! and the survey is aggregated from the service's replies.

use std::collections::HashMap;
use std::sync::Arc;
use whoisml::gen::corpus::{generate_corpus, GenConfig};
use whoisml::model::{BlockLabel, RegistrantLabel};
use whoisml::net::{Crawler, CrawlerConfig, InMemoryStore, ServerConfig, WhoisClient, WhoisServer};
use whoisml::parser::{ParserConfig, TrainExample, WhoisParser};
use whoisml::serve::{ModelRegistry, ParseService, ServeClient, ServeConfig, UpstreamConfig};
use whoisml::survey::Survey;

#[test]
fn crawl_serve_survey_pipeline() {
    let corpus = generate_corpus(GenConfig::new(909, 80));

    // Mock ecosystem: one thin registry + per-registrar thick servers.
    let mut thin = InMemoryStore::new();
    let mut per_registrar: HashMap<&str, InMemoryStore> = HashMap::new();
    for d in &corpus {
        thin.insert(&d.facts.domain, d.thin_text());
        per_registrar
            .entry(d.registrar.whois_server)
            .or_default()
            .insert(&d.facts.domain, d.rendered.text());
    }
    let registry_server = WhoisServer::start(thin, ServerConfig::default()).unwrap();
    let mut resolver = HashMap::new();
    let mut servers = Vec::new();
    for (host, store) in per_registrar {
        let server = WhoisServer::start(store, ServerConfig::default()).unwrap();
        resolver.insert(host.to_string(), server.addr());
        servers.push(server);
    }

    // Train a model and start the parse service with upstream access.
    let first: Vec<TrainExample<BlockLabel>> = corpus
        .iter()
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect();
    let second: Vec<TrainExample<RegistrantLabel>> = corpus
        .iter()
        .filter_map(|d| {
            let reg = d.registrant_labels();
            (!reg.is_empty()).then(|| TrainExample {
                text: reg.texts().join("\n"),
                labels: reg.labels(),
            })
        })
        .collect();
    let parser = WhoisParser::train(&first, &second, &ParserConfig::default());
    let model_registry = Arc::new(ModelRegistry::new(parser, "model-0001", 1));
    let mut service = ParseService::start(
        model_registry,
        ServeConfig {
            workers: 2,
            upstream: Some(UpstreamConfig {
                registry: registry_server.addr(),
                resolver: resolver.clone(),
                client: WhoisClient::default(),
            }),
            ..Default::default()
        },
        0,
    )
    .unwrap();

    // Crawl the zone, then push every crawled thick record through the
    // service and aggregate its replies into a survey.
    let crawler = Arc::new(Crawler::new(
        registry_server.addr(),
        resolver,
        CrawlerConfig::default(),
    ));
    let zone: Vec<String> = corpus.iter().map(|d| d.facts.domain.clone()).collect();
    let report = crawler.crawl(&zone);
    assert!(report.coverage() > 0.95, "coverage {}", report.coverage());

    let mut client = ServeClient::connect(service.addr()).unwrap();
    let mut survey = Survey::new();
    let mut parsed = 0usize;
    for r in &report.results {
        if let Some(thick) = &r.thick {
            let reply = client.parse(&r.domain, thick).unwrap();
            survey.add(&reply.record.unwrap(), false);
            parsed += 1;
        }
    }
    assert_eq!(survey.total as usize, parsed);
    assert!(survey.registrar_all.distinct() > 3);
    assert!(survey.country_all.total() > 0);

    // The service's own upstream path (FETCH, with referral following)
    // agrees with what the crawler handed us.
    let sample = &corpus[0];
    let reply = client.fetch(&sample.facts.domain).unwrap();
    let record = reply.record.unwrap();
    assert_eq!(record.domain, sample.facts.domain.to_lowercase());

    // Re-parsing the same corpus is nearly all cache hits.
    for r in &report.results {
        if let Some(thick) = &r.thick {
            client.parse(&r.domain, thick).unwrap();
        }
    }
    let stats = client.stats().unwrap();
    assert!(
        stats.cache_hit_rate > 0.4,
        "second sweep should hit, rate {}",
        stats.cache_hit_rate
    );
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.fetch_failures, 0);

    let drain = service.shutdown();
    assert_eq!(drain.shed, 0, "idle shutdown sheds nothing");
}
