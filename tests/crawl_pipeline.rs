//! Integration: the full §4.1→§6 pipeline over real loopback TCP —
//! generate an ecosystem, serve it, crawl it, parse the crawl output,
//! aggregate a survey.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use whoisml::gen::corpus::{generate_corpus, GenConfig};
use whoisml::model::{BlockLabel, RawRecord, RegistrantLabel};
use whoisml::net::crawler::CrawlStatus;
use whoisml::net::{
    Crawler, CrawlerConfig, FaultConfig, InMemoryStore, RateLimitConfig, ServerConfig, WhoisServer,
};
use whoisml::parser::{ParserConfig, TrainExample, WhoisParser};
use whoisml::survey::Survey;

#[test]
fn crawl_parse_survey_pipeline() {
    let corpus = generate_corpus(GenConfig::new(404, 120));

    // Serve it.
    let mut thin = InMemoryStore::new();
    let mut per_registrar: HashMap<&str, InMemoryStore> = HashMap::new();
    for d in &corpus {
        thin.insert(&d.facts.domain, d.thin_text());
        per_registrar
            .entry(d.registrar.whois_server)
            .or_default()
            .insert(&d.facts.domain, d.rendered.text());
    }
    let registry = WhoisServer::start(thin, ServerConfig::default()).unwrap();
    let mut resolver = HashMap::new();
    let mut servers = Vec::new();
    for (i, (host, store)) in per_registrar.into_iter().enumerate() {
        let server = WhoisServer::start(
            store,
            ServerConfig {
                rate_limit: RateLimitConfig {
                    burst: 12,
                    per_second: 800.0,
                    penalty: Duration::from_millis(10),
                },
                faults: FaultConfig {
                    drop_chance: 0.03,
                    ..Default::default()
                },
                fault_seed: i as u64,
                ..Default::default()
            },
        )
        .unwrap();
        resolver.insert(host.to_string(), server.addr());
        servers.push(server);
    }

    // Crawl it.
    let crawler = Arc::new(Crawler::new(
        registry.addr(),
        resolver,
        CrawlerConfig::default(),
    ));
    let zone: Vec<String> = corpus.iter().map(|d| d.facts.domain.clone()).collect();
    let report = crawler.crawl(&zone);
    assert_eq!(report.results.len(), corpus.len());
    assert!(
        report.coverage() > 0.85,
        "coverage {} too low",
        report.coverage()
    );

    // The crawled thick records match what the generator rendered.
    let by_domain: HashMap<&str, &str> = corpus
        .iter()
        .map(|d| (d.facts.domain.as_str(), d.registrar.whois_server))
        .collect();
    for r in &report.results {
        if r.status == CrawlStatus::Full {
            assert!(by_domain.contains_key(r.domain.as_str()));
            let thick = r.thick.as_deref().unwrap();
            assert!(
                thick.contains(&r.domain) || thick.contains(&r.domain.to_uppercase()),
                "thick record for {} does not mention the domain",
                r.domain
            );
        }
    }

    // Parse + survey the crawl output.
    let first: Vec<TrainExample<BlockLabel>> = corpus
        .iter()
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect();
    let second: Vec<TrainExample<RegistrantLabel>> = corpus
        .iter()
        .filter_map(|d| {
            let reg = d.registrant_labels();
            (!reg.is_empty()).then(|| TrainExample {
                text: reg.texts().join("\n"),
                labels: reg.labels(),
            })
        })
        .collect();
    let parser = WhoisParser::train(&first, &second, &ParserConfig::default());

    let mut survey = Survey::new();
    for r in &report.results {
        if let Some(thick) = &r.thick {
            let parsed = parser.parse(&RawRecord::new(r.domain.clone(), thick.clone()));
            survey.add(&parsed, false);
        }
    }
    assert_eq!(survey.total as usize, report.count(CrawlStatus::Full));
    assert!(
        survey.registrar_all.distinct() > 5,
        "survey should see many registrars"
    );
    assert!(survey.country_all.total() > 0);
    // The registry-side counts agree with the server-side counters.
    let answered = registry
        .stats()
        .answered
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(answered as usize >= corpus.len());
}

#[test]
fn garbled_replies_do_not_crash_the_parser() {
    // Records mangled by fault injection must never panic the pipeline.
    let corpus = generate_corpus(GenConfig::new(405, 20));
    let mut store = InMemoryStore::new();
    for d in &corpus {
        store.insert(&d.facts.domain, d.rendered.text());
    }
    let server = WhoisServer::start(
        store,
        ServerConfig {
            faults: FaultConfig {
                garble_chance: 1.0,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    let client = whoisml::net::WhoisClient::default();
    let first: Vec<TrainExample<BlockLabel>> = corpus
        .iter()
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect();
    let parser = WhoisParser::train(
        &first,
        &[TrainExample {
            text: "Registrant Name: X".to_string(),
            labels: vec![RegistrantLabel::Name],
        }],
        &ParserConfig::default(),
    );
    for d in &corpus {
        let body = client.query(server.addr(), &d.facts.domain).unwrap();
        let parsed = parser.parse(&RawRecord::new(d.facts.domain.clone(), body));
        assert_eq!(parsed.domain, d.facts.domain);
    }
}
