//! End-to-end integration: generator → two-level parser → structured
//! output, validated against the generator's ground-truth facts.

use whoisml::gen::corpus::{generate_corpus, GenConfig, GeneratedDomain};
use whoisml::model::{BlockLabel, RegistrantLabel};
use whoisml::parser::{ParserConfig, TrainExample, WhoisParser};

fn examples(domains: &[GeneratedDomain]) -> Vec<TrainExample<BlockLabel>> {
    domains
        .iter()
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect()
}

fn second(domains: &[GeneratedDomain]) -> Vec<TrainExample<RegistrantLabel>> {
    domains
        .iter()
        .filter_map(|d| {
            let reg = d.registrant_labels();
            (!reg.is_empty()).then(|| TrainExample {
                text: reg.texts().join("\n"),
                labels: reg.labels(),
            })
        })
        .collect()
}

fn trained(seed: u64, n_train: usize, n_test: usize) -> (WhoisParser, Vec<GeneratedDomain>) {
    let corpus = generate_corpus(GenConfig::new(seed, n_train + n_test));
    let (train, test) = corpus.split_at(n_train);
    let parser = WhoisParser::train(&examples(train), &second(train), &ParserConfig::default());
    (parser, test.to_vec())
}

#[test]
fn first_level_accuracy_above_99_percent_with_300_examples() {
    let (parser, test) = trained(1, 300, 300);
    let stats = parser.evaluate_first_level(&examples(&test));
    assert!(
        stats.line_error_rate() < 0.01,
        "line error {} (paper: >99% with far fewer formats per example)",
        stats.line_error_rate()
    );
}

#[test]
fn second_level_accuracy_above_97_percent() {
    let (parser, test) = trained(2, 300, 300);
    let stats = parser.evaluate_second_level(&second(&test));
    assert!(
        stats.line_error_rate() < 0.03,
        "registrant sub-field line error {}",
        stats.line_error_rate()
    );
}

#[test]
fn structured_extraction_matches_ground_truth_facts() {
    let (parser, test) = trained(3, 300, 200);
    let mut registrar_ok = 0;
    let mut year_ok = 0;
    let mut email_ok = 0;
    let mut name_candidates = 0;
    let mut name_ok = 0;
    for d in &test {
        let parsed = parser.parse(&d.raw());
        if parsed.registrar.as_deref() == Some(d.facts.registrar_name.as_str()) {
            registrar_ok += 1;
        }
        if parsed.creation_year() == Some(d.facts.created.y) {
            year_ok += 1;
        }
        if let Some(reg) = &parsed.registrant {
            if reg.email.as_deref() == Some(d.facts.registrant.email.as_str()) {
                email_ok += 1;
            }
            name_candidates += 1;
            if reg.name.as_deref() == Some(d.facts.registrant.name.as_str()) {
                name_ok += 1;
            }
        }
    }
    let n = test.len() as f64;
    assert!(
        registrar_ok as f64 / n > 0.9,
        "registrar {registrar_ok}/{n}"
    );
    assert!(year_ok as f64 / n > 0.9, "creation year {year_ok}/{n}");
    assert!(email_ok as f64 / n > 0.8, "registrant email {email_ok}/{n}");
    assert!(
        name_ok as f64 / name_candidates.max(1) as f64 > 0.75,
        "registrant name {name_ok}/{name_candidates}"
    );
}

#[test]
fn parser_handles_degenerate_inputs_gracefully() {
    let (parser, _) = trained(4, 120, 1);
    for text in [
        "",
        "\n\n\n",
        "%%%%\n####",
        "single line with no structure at all",
        "a:\nb:\nc:",
    ] {
        let raw = whoisml::model::RawRecord::new("weird.com", text);
        let parsed = parser.parse(&raw);
        assert_eq!(parsed.domain, "weird.com");
        // Label count always matches the chunker's line count.
        assert_eq!(
            parser.label_blocks(text).len(),
            whoisml::model::non_empty_lines(text).len()
        );
    }
}

#[test]
fn drifted_records_still_parse_well_statistically() {
    // Fragility test: a parser trained on undrifted formats meets records
    // whose registrars changed their schema. The statistical parser
    // degrades gracefully (the paper's robustness claim).
    let corpus = generate_corpus(GenConfig::new(5, 400));
    let parser = WhoisParser::train(
        &examples(&corpus),
        &second(&corpus),
        &ParserConfig::default(),
    );
    let drifted = generate_corpus(GenConfig {
        drift_fraction: 1.0,
        ..GenConfig::new(6, 150)
    });
    let stats = parser.evaluate_first_level(&examples(&drifted));
    assert!(
        stats.line_error_rate() < 0.10,
        "drifted line error {} should stay below 10% (templates fail ~100%)",
        stats.line_error_rate()
    );
}
