//! Integration: model persistence (save/load) and §5.3 adaptation.

use whoisml::gen::corpus::{generate_corpus, GenConfig};
use whoisml::gen::tlds;
use whoisml::model::{BlockLabel, RegistrantLabel};
use whoisml::parser::{LevelParser, ParserConfig, TrainExample, WhoisParser};

fn train_examples(seed: u64, n: usize) -> Vec<TrainExample<BlockLabel>> {
    generate_corpus(GenConfig::new(seed, n))
        .iter()
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect()
}

#[test]
fn saved_and_loaded_model_is_bit_identical_in_behaviour() {
    let corpus = generate_corpus(GenConfig::new(55, 150));
    let first: Vec<TrainExample<BlockLabel>> = corpus
        .iter()
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect();
    let second: Vec<TrainExample<RegistrantLabel>> = corpus
        .iter()
        .filter_map(|d| {
            let reg = d.registrant_labels();
            (!reg.is_empty()).then(|| TrainExample {
                text: reg.texts().join("\n"),
                labels: reg.labels(),
            })
        })
        .collect();
    let parser = WhoisParser::train(&first, &second, &ParserConfig::default());

    let json = parser.to_json().unwrap();
    let loaded = WhoisParser::from_json(&json).unwrap();

    let fresh = generate_corpus(GenConfig::new(56, 50));
    for d in &fresh {
        let raw = d.raw();
        assert_eq!(loaded.parse(&raw), parser.parse(&raw), "{}", raw.domain);
    }
    // Round-tripping again is stable.
    let json2 = loaded.to_json().unwrap();
    assert_eq!(json, json2);
}

#[test]
fn adaptation_with_one_example_fixes_a_new_format() {
    let mut examples = train_examples(57, 400);
    let mut parser = LevelParser::train(&examples, &ParserConfig::default());

    let sample = tlds::tld_sample("travel", 3).unwrap();
    let new_format = TrainExample {
        text: sample.text(),
        labels: sample.block_labels().labels(),
    };
    // It may or may not err before; after adding one example it must be
    // perfect on a *different* record of the same format.
    examples.push(new_format);
    parser.retrain(&examples, &ParserConfig::default());

    let fresh = tlds::tld_sample("travel", 4).unwrap();
    let test = TrainExample {
        text: fresh.text(),
        labels: fresh.block_labels().labels(),
    };
    let errors = parser.evaluate(std::slice::from_ref(&test)).line_errors;
    assert_eq!(errors, 0, "one labeled example should fix the format");

    // No regression on the original distribution.
    let holdout = train_examples(58, 150);
    assert!(parser.evaluate(&holdout).line_error_rate() < 0.01);
}

#[test]
fn retrain_without_new_words_warm_starts() {
    // Retraining on the same data keeps the same dictionary and converges
    // quickly from the current weights (the warm-start path).
    let examples = train_examples(59, 100);
    let mut parser = LevelParser::train(&examples, &ParserConfig::default());
    let dict_len = parser.encoder().dictionary().len();
    let weights_before = parser.crf().weights().to_vec();
    parser.retrain(&examples, &ParserConfig::default());
    assert_eq!(parser.encoder().dictionary().len(), dict_len);
    // Weights may move slightly but the model stays consistent.
    assert_eq!(parser.crf().weights().len(), weights_before.len());
    assert!(parser.evaluate(&examples).line_errors == 0);
}
