//! Property-based tests (proptest) over the core invariants:
//! CRF inference vs. brute force, gradient vs. finite differences,
//! tokenizer/chunker agreement, dictionary encoding, template
//! self-consistency, and generator ground-truth alignment.

use proptest::prelude::*;
use whoisml::crf::diagnostics::{brute_force_log_z, brute_force_viterbi, finite_difference_grad};
use whoisml::crf::{
    backward, forward, node_marginals, viterbi, Crf, Instance, Objective, Sequence,
};
use whoisml::model::BlockLabel;

/// Strategy: a small random CRF (weights included) plus a compatible
/// observation sequence.
fn crf_and_sequence() -> impl Strategy<Value = (Crf, Sequence)> {
    (2usize..4, 2usize..6, 1usize..5).prop_flat_map(|(n_states, n_feats, t_len)| {
        let weights = proptest::collection::vec(-2.0..2.0f64, {
            // dim computed the same way Crf does: pair-eligible = even ids
            let n_pair = n_feats.div_ceil(2);
            n_states * n_states + n_feats * n_states + n_pair * n_states * n_states
        });
        let obs = proptest::collection::vec(
            proptest::collection::btree_set(0..n_feats as u32, 0..=n_feats.min(3)),
            t_len,
        );
        (Just((n_states, n_feats)), weights, obs).prop_map(|((n_states, n_feats), w, obs)| {
            let pair: Vec<bool> = (0..n_feats).map(|f| f % 2 == 0).collect();
            let mut crf = Crf::new(n_states, n_feats, &pair);
            crf.set_weights(w);
            let seq = Sequence::new(obs.into_iter().map(|s| s.into_iter().collect()).collect());
            (crf, seq)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn forward_log_z_equals_brute_force((crf, seq) in crf_and_sequence()) {
        let table = crf.score_table(&seq);
        let fwd = forward(&table);
        let brute = brute_force_log_z(&crf, &seq);
        prop_assert!((fwd.log_z - brute).abs() < 1e-8,
            "dp {} vs brute {}", fwd.log_z, brute);
    }

    #[test]
    fn viterbi_equals_brute_force_argmax((crf, seq) in crf_and_sequence()) {
        let table = crf.score_table(&seq);
        let (path, score) = viterbi(&table);
        let (bpath, bscore) = brute_force_viterbi(&crf, &seq);
        prop_assert!((score - bscore).abs() < 1e-8);
        // Paths may differ only on exact ties; scores must agree.
        prop_assert!((crf.path_score(&seq, &path) - crf.path_score(&seq, &bpath)).abs() < 1e-8);
    }

    #[test]
    fn node_marginals_are_distributions((crf, seq) in crf_and_sequence()) {
        let table = crf.score_table(&seq);
        let fwd = forward(&table);
        let beta = backward(&table);
        let nm = node_marginals(&table, &fwd, &beta);
        let n = crf.num_states();
        for t in 0..seq.len() {
            let row = &nm[t*n..(t+1)*n];
            let sum: f64 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-8, "t={t} sum={sum}");
            prop_assert!(row.iter().all(|&p| (-1e-12..=1.0 + 1e-9).contains(&p)));
        }
    }

    #[test]
    fn viterbi_path_beats_random_paths(
        (crf, seq) in crf_and_sequence(),
        random_bits in proptest::collection::vec(0usize..100, 1..5),
    ) {
        if seq.is_empty() { return Ok(()); }
        let table = crf.score_table(&seq);
        let (_, best) = viterbi(&table);
        let n = crf.num_states();
        for bits in random_bits.chunks(1) {
            let path: Vec<usize> = (0..seq.len()).map(|t| (bits[0] + t) % n).collect();
            prop_assert!(crf.path_score(&seq, &path) <= best + 1e-9);
        }
    }

    #[test]
    fn objective_gradient_matches_finite_differences(
        (crf, seq) in crf_and_sequence(),
        label_bits in proptest::collection::vec(0usize..16, 1..5),
    ) {
        if seq.is_empty() { return Ok(()); }
        let n = crf.num_states();
        let labels: Vec<usize> = (0..seq.len())
            .map(|t| label_bits[t % label_bits.len()] % n)
            .collect();
        let data = vec![Instance::new(seq.clone(), labels)];
        let structure = Crf::new(
            n,
            crf.num_obs_features(),
            &(0..crf.num_obs_features() as u32).map(|f| crf.is_pair_eligible(f)).collect::<Vec<_>>(),
        );
        let mut obj = Objective::new(structure.clone(), &data, 0.05, 1);
        let w: Vec<f64> = crf.weights().iter().map(|x| x * 0.3).collect();
        let mut g = vec![0.0; w.len()];
        obj.eval(&w, &mut g);
        let mut obj2 = Objective::new(structure, &data, 0.05, 1);
        let fd = finite_difference_grad(|x| {
            let mut scratch = vec![0.0; x.len()];
            obj2.eval(x, &mut scratch)
        }, &w, 1e-5);
        for k in 0..w.len() {
            prop_assert!((g[k] - fd[k]).abs() < 1e-4,
                "param {k}: analytic {} vs fd {}", g[k], fd[k]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn annotation_agrees_with_chunker(text in "[ -~\n]{0,400}") {
        let annotated = whoisml::tokenize::annotate_record(&text);
        let lines = whoisml::model::non_empty_lines(&text);
        prop_assert_eq!(annotated.len(), lines.len());
        for (obs, line) in annotated.iter().zip(&lines) {
            prop_assert_eq!(obs.text.as_str(), *line);
        }
    }

    #[test]
    fn dictionary_encode_is_sorted_unique(words in proptest::collection::vec("[a-z]{1,6}", 1..20)) {
        let features: Vec<String> = words.iter().map(|w| format!("w:{w}@V")).collect();
        let dict = whoisml::tokenize::Dictionary::from_bags(
            vec![features.iter().map(String::as_str)],
            1,
        );
        let ids = dict.encode(features.iter().map(String::as_str));
        prop_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(ids.len() <= features.len());
        for id in ids {
            prop_assert!(dict.id(dict.name(id)) == Some(id));
        }
    }

    #[test]
    fn separator_split_reassembles(line in "[ -~]{0,120}") {
        if let Some((title, value, _)) = whoisml::tokenize::split_title_value(&line) {
            // Title and value are both substrings of the original line,
            // in order, separated by at least one character.
            prop_assert!(line.starts_with(title));
            prop_assert!(line.ends_with(value));
            prop_assert!(title.len() + value.len() < line.len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_domains_always_align_with_chunker(seed in 0u64..5000) {
        let corpus = whoisml::gen::corpus::generate_corpus(
            whoisml::gen::corpus::GenConfig::new(seed, 3),
        );
        for d in corpus {
            let raw = d.raw();
            let labels = d.block_labels();
            prop_assert_eq!(raw.lines().len(), labels.len());
            // Registrant sub-labels cover exactly the registrant lines.
            let reg_lines = labels
                .lines
                .iter()
                .filter(|l| l.label == BlockLabel::Registrant)
                .count();
            prop_assert_eq!(d.registrant_labels().len(), reg_lines);
        }
    }

    #[test]
    fn template_learned_from_a_record_reparses_it(seed in 0u64..5000) {
        let corpus = whoisml::gen::corpus::generate_corpus(
            whoisml::gen::corpus::GenConfig::new(seed, 2),
        );
        for d in corpus {
            let text = d.rendered.text();
            let lines = whoisml::model::non_empty_lines(&text);
            let gold = d.block_labels().labels();
            let template = whoisml::templates::Template::learn("r", &lines, &gold);
            prop_assert_eq!(template.apply(&lines), Some(gold));
        }
    }
}
