//! Minimal offline stand-in for `criterion`.
//!
//! Provides the measurement API surface the workspace's benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `iter`/`iter_batched`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros). Measurement is
//! intentionally simple: a fixed warm-up pass, then `sample_size`
//! timed samples; mean and throughput are printed per benchmark. No
//! statistics, plots, or HTML reports — enough to compare variants and
//! keep `cargo bench` runnable offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterized benchmark (`name/param`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{parameter}", name.into()),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { full: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { full: name }
    }
}

/// Collects per-iteration timings for one benchmark target.
pub struct Bencher {
    samples: u64,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    fn new(samples: u64) -> Self {
        Bencher {
            samples,
            total: Duration::ZERO,
            iterations: 0,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up once, then time each sample individually.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut first = setup();
        black_box(routine(&mut first));
        for _ in 0..self.samples {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }

    fn mean(&self) -> Duration {
        if self.iterations == 0 {
            Duration::ZERO
        } else {
            self.total / self.iterations as u32
        }
    }
}

fn report(name: &str, mean: Duration, throughput: Option<Throughput>) {
    let per_second = |count: u64| {
        let secs = mean.as_secs_f64();
        if secs > 0.0 {
            count as f64 / secs
        } else {
            f64::INFINITY
        }
    };
    match throughput {
        Some(Throughput::Elements(n)) => {
            println!(
                "{name:<50} {mean:>12.2?}  {:>14.0} elem/s",
                per_second(n)
            );
        }
        Some(Throughput::Bytes(n)) => {
            println!("{name:<50} {mean:>12.2?}  {:>14.0} B/s", per_second(n));
        }
        None => println!("{name:<50} {mean:>12.2?}"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion requires >= 10; we honor small values to stay fast.
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size.min(MAX_STUB_SAMPLES));
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.full),
            b.mean(),
            self.throughput,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size.min(MAX_STUB_SAMPLES));
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.full),
            b.mean(),
            self.throughput,
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// Cap on timed samples: the stand-in favors bounded wall-clock time
/// over statistical power.
const MAX_STUB_SAMPLES: u64 = 20;

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(10.min(MAX_STUB_SAMPLES));
        f(&mut b);
        report(name, b.mean(), None);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            let _ = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group
            .sample_size(3)
            .throughput(Throughput::Elements(100))
            .bench_function("sum", |b| {
                b.iter(|| (0..100u64).sum::<u64>());
            })
            .bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
                b.iter_batched(|| vec![k; 16], |v| v.iter().sum::<u64>(), BatchSize::SmallInput);
            });
        group.finish();
    }
}
