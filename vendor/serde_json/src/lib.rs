//! Minimal offline stand-in for `serde_json`, delegating to the
//! vendored serde's [`Value`] model and JSON codec.
//!
//! Floats print via Rust's shortest-roundtrip `Display`, so the
//! `float_roundtrip` feature's guarantee (parse(print(x)) == x) holds
//! by construction.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt;

pub use serde::Value;

/// Serialization/deserialization failure.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error { msg: e.to_string() }
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::json::to_text(&value.to_value(), false))
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::json::to_text(&value.to_value(), true))
}

pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = serde::json::from_text(text)?;
    Ok(T::from_value(&value)?)
}

pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error {
        msg: format!("input is not UTF-8: {e}"),
    })?;
    from_str(text)
}

pub fn from_value<T: DeserializeOwned>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_vec_roundtrip() {
        let v = vec!["a".to_string(), "b\"c".to_string()];
        let text = to_string(&v).unwrap();
        let back: Vec<String> = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn value_indexing_matches_cli_usage() {
        let v: Value = from_str(r#"{"domain":"x.com","labels":["a","b"]}"#).unwrap();
        assert_eq!(v["domain"].as_str(), Some("x.com"));
        assert_eq!(v["labels"].as_array().unwrap().len(), 2);
        assert!(v["missing"].is_null());
        assert!(v["domain"].is_string());
        assert_eq!(format!("{v}"), r#"{"domain":"x.com","labels":["a","b"]}"#);
    }
}
