//! JSON text codec for [`Value`](crate::Value).
//!
//! Float formatting uses Rust's shortest-roundtrip `Display`, which
//! matches what `serde_json`'s `float_roundtrip` feature guarantees:
//! parsing the printed text recovers the exact same `f64`. Integral
//! floats therefore print without a fraction and re-parse as `Int`;
//! numeric deserializers accept either representation.

use crate::{DeError, Value};
use std::fmt::Write as _;

/// Serialize a value tree to JSON text.
pub fn to_text(v: &Value, pretty: bool) -> String {
    let mut out = String::new();
    write_value(v, &mut out, if pretty { Some(0) } else { None });
    out
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                let _ = write!(out, "{f}");
            } else {
                // JSON has no Infinity/NaN; mirror serde_json by nulling.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => write_seq(out, indent, items.len(), '[', ']', |out, next, i| {
            write_value(&items[i], out, next)
        }),
        Value::Object(fields) => write_seq(out, indent, fields.len(), '{', '}', |out, next, i| {
            write_string(&fields[i].0, out);
            out.push(':');
            if next.is_some() {
                out.push(' ');
            }
            write_value(&fields[i].1, out, next)
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let next = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(depth) = next {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(depth * 2));
        }
        item(out, next, i);
    }
    if let Some(depth) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(depth * 2));
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse JSON text into a value tree.
pub fn from_text(text: &str) -> Result<Value, DeError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(DeError::new(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, DeError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(DeError::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, DeError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(DeError::new(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, DeError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(DeError::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, DeError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(DeError::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, DeError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(DeError::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: a \uXXXX low half follows.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((cp - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| DeError::new("bad \\u escape"))?);
                        }
                        Some(esc) => {
                            out.push(match esc {
                                b'"' => '"',
                                b'\\' => '\\',
                                b'/' => '/',
                                b'b' => '\u{8}',
                                b'f' => '\u{c}',
                                b'n' => '\n',
                                b'r' => '\r',
                                b't' => '\t',
                                _ => return Err(DeError::new("bad escape in string")),
                            });
                            self.pos += 1;
                        }
                        None => return Err(DeError::new("unterminated escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar; input came from &str, so
                    // boundaries are valid.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| DeError::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, DeError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(DeError::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| DeError::new("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| DeError::new("bad \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::new("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| DeError::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Object(vec![
            ("s".into(), Value::Str("a\n\"b\"\\".into())),
            ("n".into(), Value::Int(-42)),
            ("f".into(), Value::Float(0.1)),
            (
                "a".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("e".into(), Value::Object(vec![])),
        ]);
        let text = to_text(&v, false);
        assert_eq!(from_text(&text).unwrap(), v);
        let pretty = to_text(&v, true);
        assert_eq!(from_text(&pretty).unwrap(), v);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for f in [0.1, 1e-17, 123456.789, -2.2250738585072014e-308] {
            let text = to_text(&Value::Float(f), false);
            match from_text(&text).unwrap() {
                Value::Float(back) => assert_eq!(back, f),
                Value::Int(i) => assert_eq!(i as f64, f),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn integral_float_prints_as_int() {
        assert_eq!(to_text(&Value::Float(3.0), false), "3");
        assert_eq!(from_text("3").unwrap(), Value::Int(3));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_text(r#""Aé""#).unwrap(), Value::Str("Aé".into()));
        assert_eq!(
            from_text(r#""😀""#).unwrap(),
            Value::Str("😀".into())
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_text("{").is_err());
        assert!(from_text("[1,]").is_err());
        assert!(from_text("hello").is_err());
        assert!(from_text("{} extra").is_err());
    }
}
