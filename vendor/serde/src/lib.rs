//! Minimal offline stand-in for `serde` (plus the JSON codec that
//! `serde_json` re-exports).
//!
//! Real serde decouples data structures from formats through visitor
//! traits; this workspace only ever serializes to and from JSON, so the
//! stand-in collapses the data model to a concrete [`Value`] tree:
//!
//! * [`Serialize`] renders a type into a [`Value`].
//! * [`Deserialize`] rebuilds a type from a borrowed [`Value`].
//! * [`json`] converts between [`Value`] and JSON text.
//!
//! `#[derive(Serialize, Deserialize)]` comes from the companion
//! `serde_derive` stand-in, which generates `to_value` / `from_value`
//! impls and understands the attribute subset used in this repo:
//! `rename_all = "lowercase"`, `from`/`into`, `skip`, `default`, and
//! `skip_serializing_if`.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::marker::PhantomData;

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// A JSON-shaped value tree: the universal interchange form.
///
/// Numbers keep an integer/float split so `u64` counters survive
/// round-trips without precision loss; `Object` preserves insertion
/// order (lookups are linear, which is fine at record scale).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn is_string(&self) -> bool {
        matches!(self, Value::Str(_))
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Member lookup; `None` when `self` is not an object or lacks `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| field(o, key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&json::to_text(self, false))
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

/// Look up `name` in an object's field list (used by derived impls).
pub fn field<'a>(fields: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Deserialization failure: a message describing the shape mismatch.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Render `self` into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a borrowed [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

pub mod ser {
    pub use super::Serialize;
}

pub mod de {
    pub use super::Deserialize;

    /// In real serde this distinguishes lifetime-free deserialization;
    /// the Value-based model is always owned, so it is a blanket alias.
    pub trait DeserializeOwned: Deserialize {}

    impl<T: Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }

        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::Int(i) => *i,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(DeError::new(format!(
                            "expected integer, got {other}"
                        )))
                    }
                };
                <$ty>::try_from(raw).map_err(|_| {
                    DeError::new(format!(
                        "integer {raw} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|f| f as $ty)
                    .ok_or_else(|| DeError::new(format!("expected number, got {v}")))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::new(format!("expected bool, got {v}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new(format!("expected string, got {v}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new(format!("expected array, got {v}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new(format!("expected object, got {v}")))?
            .iter()
            .map(|(k, raw)| Ok((k.clone(), V::from_value(raw)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output; HashMap iteration order is not.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new(format!("expected object, got {v}")))?
            .iter()
            .map(|(k, raw)| Ok((k.clone(), V::from_value(raw)?)))
            .collect()
    }
}

impl<T> Serialize for PhantomData<T> {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T> Deserialize for PhantomData<T> {
    fn from_value(_: &Value) -> Result<Self, DeError> {
        Ok(PhantomData)
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+ ; $len:expr) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v
                    .as_array()
                    .ok_or_else(|| DeError::new(format!("expected array, got {v}")))?;
                if items.len() != $len {
                    return Err(DeError::new(format!(
                        "expected {}-tuple, got {} elements",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(A: 0; 1);
impl_tuple!(A: 0, B: 1; 2);
impl_tuple!(A: 0, B: 1, C: 2; 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3; 4);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_and_map_roundtrip() {
        let mut m: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        m.insert("a".into(), vec![1, 2]);
        let v = m.to_value();
        let back: BTreeMap<String, Vec<u32>> = Deserialize::from_value(&v).unwrap();
        assert_eq!(m, back);

        let none: Option<String> = None;
        assert_eq!(none.to_value(), Value::Null);
        let back: Option<String> = Deserialize::from_value(&Value::Null).unwrap();
        assert!(back.is_none());
    }

    #[test]
    fn index_missing_key_gives_null() {
        let v = Value::Object(vec![("x".into(), Value::Int(1))]);
        assert!(v["y"].is_null());
        assert_eq!(v["x"].as_i64(), Some(1));
    }

    #[test]
    fn int_float_cross_decoding() {
        // A float that prints without a fraction re-parses as Int; the
        // f64 decoder must accept it.
        let f: f64 = Deserialize::from_value(&Value::Int(3)).unwrap();
        assert_eq!(f, 3.0);
        let n: u32 = Deserialize::from_value(&Value::Float(4.0)).unwrap();
        assert_eq!(n, 4);
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }
}
