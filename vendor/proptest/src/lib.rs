//! Minimal offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, `Just`, range
//! and tuple strategies, `collection::{vec, btree_set}`, a small
//! `[class]{m,n}`-style regex string strategy, and the [`proptest!`]
//! macro with `ProptestConfig::with_cases`, `prop_assert!`, and
//! `prop_assert_eq!`. Failing cases report their seed and iteration but
//! are **not shrunk** — acceptable for CI-style regression testing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Runner configuration; only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed test case (assertion message plus formatted context).
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// The generator driving strategies: deterministic per test name.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A value generator. Unlike real proptest there is no value tree or
/// shrinking; `generate` draws one concrete value.
pub trait Strategy: Sized {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            f,
            reason,
        }
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let inner = (self.f)(self.base.generate(rng));
        inner.generate(rng)
    }
}

pub struct Filter<S, F> {
    base: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.reason);
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.rng().random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.rng().random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// String literals act as regex-flavored strategies producing `String`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        regex_like::generate(self, rng)
    }
}

/// Size argument for collection strategies: a fixed count or a range.
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng
                .rng()
                .random_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng
                .rng()
                .random_range(self.size.lo..=self.size.hi_inclusive);
            let mut out = BTreeSet::new();
            // A small element domain may not be able to reach `target`
            // distinct values; give up after a bounded number of draws,
            // like real proptest's rejection cap.
            let mut attempts = 0;
            while out.len() < target && attempts < 100 + 10 * target {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

mod regex_like {
    use super::TestRng;
    use rand::Rng;

    /// Generate a string from the tiny regex subset the tests use:
    /// concatenations of literal chars or `[class]`es, each optionally
    /// followed by `{m}`, `{m,n}`, `+`, `*`, or `?`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1);
                    i = next;
                    set
                }
                '\\' => {
                    i += 2;
                    vec![unescape(chars[i - 1])]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (lo, hi, next) = parse_quantifier(&chars, i);
            i = next;
            let n = if lo == hi {
                lo
            } else {
                rng.rng().random_range(lo..=hi)
            };
            for _ in 0..n {
                let pick = rng.rng().random_range(0..alphabet.len());
                out.push(alphabet[pick]);
            }
        }
        out
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            'r' => '\r',
            't' => '\t',
            other => other,
        }
    }

    /// Parse a `[...]` class body starting just past the `[`; returns
    /// the expanded alphabet and the index past the closing `]`.
    fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
        let mut set = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let c = if chars[i] == '\\' {
                i += 1;
                unescape(chars[i])
            } else {
                chars[i]
            };
            // Range `a-z` (a `-` in last position is a literal).
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                let hi = chars[i + 2];
                for code in (c as u32)..=(hi as u32) {
                    if let Some(ch) = char::from_u32(code) {
                        set.push(ch);
                    }
                }
                i += 3;
            } else {
                set.push(c);
                i += 1;
            }
        }
        assert!(i < chars.len(), "unterminated character class in pattern");
        (set, i + 1)
    }

    /// Parse an optional quantifier at `i`; returns (lo, hi, next_index).
    fn parse_quantifier(chars: &[char], i: usize) -> (usize, usize, usize) {
        match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated {} quantifier")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                };
                (lo, hi, close + 1)
            }
            Some('+') => (1, 8, i + 1),
            Some('*') => (0, 8, i + 1),
            Some('?') => (0, 1, i + 1),
            _ => (1, 1, i),
        }
    }
}

/// Define property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn name(x in 0usize..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest `{}` failed on case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e);
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = &$left;
        let r = &$right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = &$left;
        let r = &$right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = &$left;
        let r = &$right;
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy as _;

    fn pair() -> impl crate::Strategy<Value = (usize, Vec<f64>)> {
        (1usize..5).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(-1.0..1.0f64, n))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn flat_mapped_sizes_agree((n, v) in pair()) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn regex_classes_respect_bounds(s in "[a-c]{2,5}", t in "[ -~\n]{0,40}") {
            prop_assert!((2..=5).contains(&s.chars().count()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(t.chars().count() <= 40);
            prop_assert!(t.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }

        #[test]
        fn sets_are_within_domain(s in crate::collection::btree_set(0u32..4, 0..=3usize)) {
            prop_assert!(s.len() <= 3);
            prop_assert!(s.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn early_return_ok_compiles() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn inner(n in 0usize..3) {
                if n == 0 { return Ok(()); }
                prop_assert!(n < 3);
            }
        }
        inner();
    }
}
