//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Provides the two facilities this workspace uses:
//!
//! * [`thread::scope`] — scoped threads, delegating to `std::thread::scope`
//!   (stable since Rust 1.63) behind crossbeam's `Result`-returning API.
//! * [`channel::unbounded`] — an MPMC channel built on `Mutex` + `Condvar`.
//!   Receivers block until a message arrives or every sender is dropped.

pub mod thread {
    use std::any::Any;

    /// Mirror of `crossbeam::thread::Scope`; wraps the std scope handle.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned.
    ///
    /// Unlike real crossbeam this never returns `Err`: a panicking child
    /// propagates through `std::thread::scope` instead. Callers that
    /// `.expect()` the result behave identically either way.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            state.queue.push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message is available or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        pub fn try_recv(&self) -> Option<T> {
            self.shared.state.lock().unwrap().queue.pop_front()
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_workers() {
        let data = [1, 2, 3, 4];
        let total: i32 = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn channel_fans_out_and_disconnects() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::spawn(move || {
            for i in 0..5 {
                tx2.send(i).unwrap();
            }
        });
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
