//! Minimal offline stand-in for `serde_derive`.
//!
//! Without crates.io access there is no `syn`/`quote`, so this macro
//! walks the raw `TokenStream` by hand and emits impls of the vendored
//! serde's Value-based `Serialize` / `Deserialize` traits as source
//! strings. Supported shapes — exactly what this workspace declares:
//!
//! * structs with named fields, optionally generic (`Foo<L>`); derived
//!   impls add a `serde::Serialize` / `serde::Deserialize` bound per
//!   type parameter, like real serde;
//! * enums whose variants are all unit variants;
//! * container attrs `rename_all = "lowercase"`, `from = "T"`,
//!   `into = "T"`; field attrs `skip`, `default`,
//!   `skip_serializing_if = "path"`.
//!
//! Anything outside that (tuple structs, data-carrying variants, other
//! attrs) panics at expansion time with a pointed message, which is a
//! compile error exactly where the unsupported derive sits.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

#[derive(Default)]
struct ContainerAttrs {
    lowercase: bool,
    from: Option<String>,
    into: Option<String>,
}

struct Field {
    name: String,
    skip: bool,
    default: bool,
    skip_ser_if: Option<String>,
}

enum Kind {
    Struct(Vec<Field>),
    Enum(Vec<String>),
}

struct Input {
    attrs: ContainerAttrs,
    name: String,
    /// `(param_name, declared_bounds_source)` per type parameter.
    generics: Vec<(String, String)>,
    kind: Kind,
}

fn expand(input: TokenStream, ser: bool) -> TokenStream {
    let parsed = parse_input(input);
    let code = if ser {
        gen_serialize(&parsed)
    } else {
        gen_deserialize(&parsed)
    };
    code.parse()
        .unwrap_or_else(|e| panic!("serde stand-in derive generated invalid Rust: {e}\n{code}"))
}

// -----------------------------------------------------------------
// Parsing
// -----------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut attrs = ContainerAttrs::default();
    let mut i = 0;
    let mut keyword = String::new();

    // Preamble: attributes and visibility, then `struct` / `enum`.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    for (key, value) in serde_attr_items(g.stream()) {
                        match (key.as_str(), value) {
                            ("rename_all", Some(v)) if v == "lowercase" => {
                                attrs.lowercase = true;
                            }
                            ("rename_all", Some(v)) => {
                                panic!("serde stand-in: unsupported rename_all = \"{v}\"")
                            }
                            ("from", Some(v)) => attrs.from = Some(v),
                            ("into", Some(v)) => attrs.into = Some(v),
                            (other, _) => {
                                panic!("serde stand-in: unsupported container attr `{other}`")
                            }
                        }
                    }
                }
                i += 2;
            }
            TokenTree::Ident(id) => {
                let word = id.to_string();
                i += 1;
                if word == "struct" || word == "enum" {
                    keyword = word;
                    break;
                }
            }
            _ => i += 1,
        }
    }
    if keyword.is_empty() {
        panic!("serde stand-in: expected `struct` or `enum`");
    }

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stand-in: expected type name, got {other}"),
    };
    i += 1;

    // Generic parameter list, if present.
    let mut generics = Vec::new();
    if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1usize;
        let mut current: Vec<String> = Vec::new();
        while depth > 0 {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    depth += 1;
                    current.push("<".into());
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        push_param(&mut generics, &current);
                    } else {
                        current.push(">".into());
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    push_param(&mut generics, &current);
                    current.clear();
                }
                other => current.push(other.to_string()),
            }
            i += 1;
        }
    }

    // Body: the brace group (skipping any `where` clause tokens).
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde stand-in: tuple structs are not supported ({name})")
            }
            Some(_) => i += 1,
            None => panic!("serde stand-in: {name} has no braced body (unit types unsupported)"),
        }
    };

    let kind = if keyword == "struct" {
        Kind::Struct(split_top_level(body).iter().map(|c| parse_field(c)).collect())
    } else {
        Kind::Enum(
            split_top_level(body)
                .iter()
                .map(|c| parse_variant(c, &name))
                .collect(),
        )
    };

    Input {
        attrs,
        name,
        generics,
        kind,
    }
}

/// Record one `<...>` parameter as (name, declared bound source). Skips
/// lifetimes and const params — neither occurs with serde fields here.
fn push_param(out: &mut Vec<(String, String)>, tokens: &[String]) {
    if tokens.is_empty() || tokens[0] == "'" || tokens[0] == "const" {
        return;
    }
    let name = tokens[0].clone();
    let bounds = if tokens.len() > 2 && tokens[1] == ":" {
        tokens[2..].join(" ")
    } else {
        String::new()
    };
    out.push((name, bounds));
}

/// Split a brace-group stream at top-level commas, tracking `<>` depth
/// (parens/brackets/braces arrive as atomic `Group` tokens already).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut depth = 0i32;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().unwrap().push(t);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

fn parse_field(chunk: &[TokenTree]) -> Field {
    let mut field = Field {
        name: String::new(),
        skip: false,
        default: false,
        skip_ser_if: None,
    };
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = chunk.get(i + 1) {
                    for (key, value) in serde_attr_items(g.stream()) {
                        match (key.as_str(), value) {
                            ("skip", None) => field.skip = true,
                            ("default", None) => field.default = true,
                            ("skip_serializing_if", Some(path)) => {
                                field.skip_ser_if = Some(path);
                            }
                            (other, _) => {
                                panic!("serde stand-in: unsupported field attr `{other}`")
                            }
                        }
                    }
                }
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(chunk.get(i), Some(TokenTree::Group(_))) {
                    i += 1; // pub(crate) and friends
                }
            }
            TokenTree::Ident(id) => {
                field.name = id.to_string();
                break;
            }
            other => panic!("serde stand-in: unexpected token in field position: {other}"),
        }
    }
    if field.name.is_empty() {
        panic!("serde stand-in: could not find a field name");
    }
    field
}

fn parse_variant(chunk: &[TokenTree], enum_name: &str) -> String {
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) => {
                if chunk.get(i + 1).is_some() {
                    panic!(
                        "serde stand-in: {enum_name}::{id} carries data; \
                         only unit variants are supported"
                    );
                }
                return id.to_string();
            }
            other => panic!("serde stand-in: unexpected token in variant position: {other}"),
        }
    }
    panic!("serde stand-in: empty variant in {enum_name}");
}

/// Extract `(key, value)` items from one `#[serde(...)]` attribute body;
/// returns empty for any other attribute (doc comments, derives, ...).
fn serde_attr_items(bracket: TokenStream) -> Vec<(String, Option<String>)> {
    let mut it = bracket.into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Vec::new(),
    }
    let Some(TokenTree::Group(args)) = it.next() else {
        return Vec::new();
    };
    let mut items = Vec::new();
    let mut pending: Option<String> = None;
    let mut tokens = args.stream().into_iter();
    while let Some(t) = tokens.next() {
        match t {
            TokenTree::Ident(id) => pending = Some(id.to_string()),
            TokenTree::Punct(p) if p.as_char() == '=' => {
                let key = pending.take().unwrap_or_default();
                match tokens.next() {
                    Some(TokenTree::Literal(lit)) => {
                        let raw = lit.to_string();
                        items.push((key, Some(raw.trim_matches('"').to_string())));
                    }
                    other => panic!("serde stand-in: expected literal after `{key} =`, got {other:?}"),
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {
                if let Some(key) = pending.take() {
                    items.push((key, None));
                }
            }
            _ => {}
        }
    }
    if let Some(key) = pending.take() {
        items.push((key, None));
    }
    items
}

// -----------------------------------------------------------------
// Code generation
// -----------------------------------------------------------------

/// Render `impl<...>` generics and the `Name<...>` type path, adding
/// the given serde trait bound to every type parameter.
fn impl_header(input: &Input, bound: &str) -> (String, String) {
    if input.generics.is_empty() {
        return (String::new(), input.name.clone());
    }
    let params: Vec<String> = input
        .generics
        .iter()
        .map(|(name, declared)| {
            if declared.is_empty() {
                format!("{name}: {bound}")
            } else {
                format!("{name}: {declared} + {bound}")
            }
        })
        .collect();
    let names: Vec<&str> = input.generics.iter().map(|(n, _)| n.as_str()).collect();
    (
        format!("<{}>", params.join(", ")),
        format!("{}<{}>", input.name, names.join(", ")),
    )
}

fn variant_wire_name(attrs: &ContainerAttrs, variant: &str) -> String {
    if attrs.lowercase {
        variant.to_ascii_lowercase()
    } else {
        variant.to_string()
    }
}

fn gen_serialize(input: &Input) -> String {
    let (impl_generics, ty) = impl_header(input, "serde::Serialize");
    let name = &input.name;
    let body = if let Some(into_ty) = &input.attrs.into {
        format!(
            "let repr: {into_ty} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             serde::Serialize::to_value(&repr)"
        )
    } else {
        match &input.kind {
            Kind::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        let wire = variant_wire_name(&input.attrs, v);
                        format!(
                            "{name}::{v} => serde::Value::Str(\
                             ::std::string::String::from(\"{wire}\")),"
                        )
                    })
                    .collect();
                format!("match self {{\n{}\n}}", arms.join("\n"))
            }
            Kind::Struct(fields) => {
                let mut pushes = Vec::new();
                for f in fields {
                    if f.skip {
                        continue;
                    }
                    let fname = &f.name;
                    let push = format!(
                        "fields.push((::std::string::String::from(\"{fname}\"), \
                         serde::Serialize::to_value(&self.{fname})));"
                    );
                    match &f.skip_ser_if {
                        Some(pred) => pushes.push(format!(
                            "if !(({pred})(&self.{fname})) {{ {push} }}"
                        )),
                        None => pushes.push(push),
                    }
                }
                format!(
                    "let mut fields: ::std::vec::Vec<(::std::string::String, serde::Value)> = \
                     ::std::vec::Vec::new();\n{}\nserde::Value::Object(fields)",
                    pushes.join("\n")
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} serde::Serialize for {ty} {{\n\
         fn to_value(&self) -> serde::Value {{\n{body}\n}}\n}}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let (impl_generics, ty) = impl_header(input, "serde::Deserialize");
    let name = &input.name;
    let body = if let Some(from_ty) = &input.attrs.from {
        format!(
            "let repr: {from_ty} = serde::Deserialize::from_value(v)?;\n\
             ::std::result::Result::Ok(<Self as ::std::convert::From<{from_ty}>>::from(repr))"
        )
    } else {
        match &input.kind {
            Kind::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        let wire = variant_wire_name(&input.attrs, v);
                        format!(
                            "::std::option::Option::Some(\"{wire}\") => \
                             ::std::result::Result::Ok({name}::{v}),"
                        )
                    })
                    .collect();
                format!(
                    "match v.as_str() {{\n{}\n\
                     ::std::option::Option::Some(other) => ::std::result::Result::Err(\
                     serde::DeError::new(::std::format!(\
                     \"unknown variant `{{}}` for {name}\", other))),\n\
                     ::std::option::Option::None => ::std::result::Result::Err(\
                     serde::DeError::new(\"expected string for enum {name}\")),\n}}",
                    arms.join("\n")
                )
            }
            Kind::Struct(fields) => {
                let mut inits = Vec::new();
                for f in fields {
                    let fname = &f.name;
                    let init = if f.skip {
                        format!("{fname}: ::std::default::Default::default(),")
                    } else if f.default {
                        format!(
                            "{fname}: match serde::field(fields, \"{fname}\") {{\n\
                             ::std::option::Option::Some(x) => serde::Deserialize::from_value(x)?,\n\
                             ::std::option::Option::None => ::std::default::Default::default(),\n\
                             }},"
                        )
                    } else {
                        format!(
                            "{fname}: match serde::field(fields, \"{fname}\") {{\n\
                             ::std::option::Option::Some(x) => serde::Deserialize::from_value(x)?,\n\
                             ::std::option::Option::None => return ::std::result::Result::Err(\
                             serde::DeError::new(\"missing field `{fname}` in {name}\")),\n\
                             }},"
                        )
                    };
                    inits.push(init);
                }
                format!(
                    "let fields = match v.as_object() {{\n\
                     ::std::option::Option::Some(f) => f,\n\
                     ::std::option::Option::None => return ::std::result::Result::Err(\
                     serde::DeError::new(\"expected object for {name}\")),\n\
                     }};\n\
                     ::std::result::Result::Ok({name} {{\n{}\n}})",
                    inits.join("\n")
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} serde::Deserialize for {ty} {{\n\
         fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{\n\
         {body}\n}}\n}}"
    )
}
