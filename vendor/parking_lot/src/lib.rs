//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the small API slice it actually uses. Semantics
//! match `parking_lot` where it matters to callers: `lock()` returns a
//! guard directly (no poisoning), and `Mutex::new` is `const`.

use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutex that hands back the data on `lock()` without a poison layer.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with the same no-poison contract.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
