//! Minimal offline stand-in for the `bytes` crate, backed by `Vec<u8>`.
//!
//! Only the slice-of-bytes surface this workspace touches is provided:
//! `Bytes`, `BytesMut` (`with_capacity` / `put_slice` / `split_to` /
//! `extend_from_slice` / `freeze`) and the `BufMut` trait. No shared
//! zero-copy buffers — every handle owns its storage, which is fine for
//! the small protocol frames used here.

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.0
    }
}

/// A growable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq, Hash)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut(Vec::with_capacity(capacity))
    }

    pub fn capacity(&self) -> usize {
        self.0.capacity()
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Split off and return the first `at` bytes, keeping the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.0.split_off(at);
        BytesMut(std::mem::replace(&mut self.0, rest))
    }

    pub fn clear(&mut self) {
        self.0.clear();
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut(v.to_vec())
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut(v)
    }
}

/// Write-side trait; `BytesMut` is the only implementor used here.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_to_detaches_prefix() {
        let mut b = BytesMut::from(&b"hello world"[..]);
        let head = b.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&b[..], b" world");
    }

    #[test]
    fn put_slice_then_freeze() {
        let mut b = BytesMut::with_capacity(8);
        b.put_slice(b"abc");
        b.put_u8(b'!');
        let frozen = b.freeze();
        assert_eq!(&frozen[..], b"abc!");
    }
}
