//! Minimal offline stand-in for `rand` 0.9.
//!
//! The workspace's build image has no crates.io access, so this vendored
//! crate supplies the slice of the rand 0.9 API the code uses: the
//! `RngCore` / `Rng` / `SeedableRng` traits, `random` / `random_bool` /
//! `random_range` over integer and float ranges, `rngs::StdRng`, and
//! `seq::{SliceRandom, IndexedRandom}`. The generator is xoshiro256**
//! seeded via SplitMix64 — statistically strong enough for corpus
//! generation and SGD shuffling; streams differ from upstream rand, so
//! only deterministic-given-seed behavior is guaranteed, not identical
//! sequences.

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from the generator's full output.
pub trait SampleStandard {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// A range argument accepted by [`Rng::random_range`].
///
/// Blanket-implemented once per range shape (not per element type) so
/// type inference can flow from the range literal to `T`, matching how
/// integer-literal defaulting behaves with the real crate.
pub trait SampleRange<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types drawable uniformly from a bounded interval.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// Convert a 64-bit word into a uniform f64 in `[0, 1)`.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl SampleStandard for $ty {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                // i128 arithmetic covers the full span of every
                // implementing type; modulo bias is negligible for the
                // small spans sampled here.
                let span = (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u128;
                let offset = rng.next_u64() as u128 % span;
                (lo as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                lo + (unit_f64(rng.next_u64()) as $ty) * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn random<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_range(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface; only `seed_from_u64` is used in this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** generator, seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: this stand-in uses one engine for every nominal generator.
    pub type SmallRng = StdRng;
}

pub mod seq {
    use super::Rng;

    /// In-place shuffling for slices.
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Uniform element selection from slices.
    pub trait IndexedRandom {
        type Output;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x = rng.random_range(3..9);
            assert!((3..9).contains(&x));
            let y: i32 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn random_bool_matches_extremes_and_rough_rate() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
