//! Minimal offline stand-in for `rand_chacha`.
//!
//! The workspace only ever seeds `ChaCha8Rng` through `seed_from_u64`
//! and draws via the `Rng` trait, so a distinct ChaCha implementation
//! buys nothing here — the vendored xoshiro engine stands in. Streams
//! are deterministic per seed but differ from the real crate.

pub type ChaCha8Rng = rand::rngs::StdRng;
pub type ChaCha12Rng = rand::rngs::StdRng;
pub type ChaCha20Rng = rand::rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::ChaCha8Rng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }
}
