//! Look inside a trained model: the heaviest emission features per label
//! (the paper's Table 1) and the strongest transition-detecting features
//! (Figure 1).
//!
//! ```text
//! cargo run --release --example inspect_model
//! ```

use whoisml::gen::corpus::{generate_corpus, GenConfig};
use whoisml::model::BlockLabel;
use whoisml::parser::{inspect, LevelParser, ParserConfig, TrainExample};

fn main() {
    println!("training the first-level CRF on 800 records...");
    let corpus = generate_corpus(GenConfig::new(31337, 800));
    let examples: Vec<TrainExample<BlockLabel>> = corpus
        .iter()
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect();
    let parser = LevelParser::train(&examples, &ParserConfig::default());

    println!("\n== Table 1: heavily weighted features per label ==");
    print!("{}", inspect::render_emission_table(&parser, 8));

    println!("\n== Figure 1: transition-detecting features ==");
    print!("{}", inspect::render_transition_graph(&parser, 3));

    println!(
        "\nmodel size: {} parameters over {} observation features",
        parser.crf().dim(),
        parser.encoder().dictionary().len()
    );
}
