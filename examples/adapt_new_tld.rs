//! Maintainability demo (§5.3): a parser trained on `.com` meets an
//! unfamiliar TLD format, errs, and is fixed by adding ONE labeled
//! example and retraining — no rule surgery required.
//!
//! ```text
//! cargo run --release --example adapt_new_tld
//! ```

use whoisml::gen::corpus::{generate_corpus, GenConfig};
use whoisml::gen::tlds;
use whoisml::model::BlockLabel;
use whoisml::parser::{LevelParser, ParserConfig, TrainExample};

fn main() {
    println!("training the first-level CRF on 500 com records...");
    let corpus = generate_corpus(GenConfig::new(77, 500));
    let mut examples: Vec<TrainExample<BlockLabel>> = corpus
        .iter()
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect();
    let mut parser = LevelParser::train(&examples, &ParserConfig::default());

    // Meet .coop — the registry-dump format whose registrant block titles
    // never say "registrant".
    let sample = tlds::tld_sample("coop", 1).expect("coop sample");
    let before = TrainExample {
        text: sample.text(),
        labels: sample.block_labels().labels(),
    };
    let errs = parser.evaluate(std::slice::from_ref(&before)).line_errors;
    println!(
        "\nbefore adaptation: {errs}/{} lines of a .coop record mislabeled",
        before.labels.len()
    );

    // The fix: label that one record, add it, retrain.
    println!("adding the single labeled .coop example and retraining...");
    examples.push(before);
    parser.retrain(&examples, &ParserConfig::default());

    // Verify on a DIFFERENT .coop record (same template, fresh values).
    let fresh = tlds::tld_sample("coop", 2).expect("coop sample");
    let after = TrainExample {
        text: fresh.text(),
        labels: fresh.block_labels().labels(),
    };
    let errs = parser.evaluate(std::slice::from_ref(&after)).line_errors;
    println!(
        "after adaptation:  {errs}/{} lines of an unseen .coop record mislabeled",
        after.labels.len()
    );

    // And .com accuracy did not regress.
    let holdout = generate_corpus(GenConfig::new(78, 200));
    let holdout_examples: Vec<TrainExample<BlockLabel>> = holdout
        .iter()
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect();
    let stats = parser.evaluate(&holdout_examples);
    println!(
        "com holdout line error rate: {:.5} ({} documents)",
        stats.line_error_rate(),
        stats.documents
    );
}
