//! Crawl a simulated `.com` ecosystem over real loopback TCP — thin
//! registry, per-registrar thick servers, rate limits, faults — then
//! stream everything that was crawled through the batch parse engine
//! into survey counters (the paper's §4.1 → §3 → §6 pipeline).
//!
//! ```text
//! cargo run --release --example crawl_and_parse
//! ```

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use whoisml::gen::corpus::{generate_corpus, GenConfig};
use whoisml::model::{BlockLabel, RegistrantLabel};
use whoisml::net::crawler::CrawlStatus;
use whoisml::net::{
    crawl_parse_survey, Crawler, CrawlerConfig, FaultConfig, InMemoryStore, RateLimitConfig,
    ServerConfig, WhoisServer,
};
use whoisml::parser::{ParseEngine, ParserConfig, TrainExample, WhoisParser};

fn main() {
    // Build the ecosystem: 200 domains across ~30 registrars.
    println!("generating 200 domains and starting the server fleet...");
    let corpus = generate_corpus(GenConfig::new(99, 200));
    let mut thin = InMemoryStore::new();
    let mut per_registrar: HashMap<&str, InMemoryStore> = HashMap::new();
    for d in &corpus {
        thin.insert(&d.facts.domain, d.thin_text());
        per_registrar
            .entry(d.registrar.whois_server)
            .or_default()
            .insert(&d.facts.domain, d.rendered.text());
    }

    let registry = WhoisServer::start(thin, ServerConfig::default()).expect("registry");
    let mut resolver = HashMap::new();
    let mut servers = Vec::new();
    for (i, (host, store)) in per_registrar.into_iter().enumerate() {
        let server = WhoisServer::start(
            store,
            ServerConfig {
                rate_limit: RateLimitConfig {
                    burst: 10,
                    per_second: 500.0,
                    penalty: Duration::from_millis(20),
                },
                faults: FaultConfig {
                    drop_chance: 0.05,
                    empty_chance: 0.02,
                    garble_chance: 0.01,
                    ..FaultConfig::none()
                },
                fault_seed: i as u64,
                ..Default::default()
            },
        )
        .expect("registrar server");
        resolver.insert(host.to_string(), server.addr());
        servers.push(server);
    }
    println!("{} registrar servers listening on loopback", servers.len());

    // Train a parser on labeled examples, then wrap it in the engine.
    let first: Vec<TrainExample<BlockLabel>> = corpus
        .iter()
        .take(150)
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect();
    let second: Vec<TrainExample<RegistrantLabel>> = corpus
        .iter()
        .take(150)
        .filter_map(|d| {
            let reg = d.registrant_labels();
            (!reg.is_empty()).then(|| TrainExample {
                text: reg.texts().join("\n"),
                labels: reg.labels(),
            })
        })
        .collect();
    println!("training the two-level parser on 150 labeled records...");
    let parser = WhoisParser::train(&first, &second, &ParserConfig::default());
    let engine = ParseEngine::new(parser);

    // Crawl → parse → survey, fused: records are parsed in batches while
    // the crawl workers are still fetching.
    let crawler = Arc::new(Crawler::new(
        registry.addr(),
        resolver,
        CrawlerConfig::default(),
    ));
    let zone: Vec<String> = corpus.iter().map(|d| d.facts.domain.clone()).collect();
    let report = crawl_parse_survey(&crawler, &engine, &zone, 32);

    println!(
        "crawl finished in {:.1}s: {} full, {} thin-only, {} failed ({:.1}% coverage)",
        report.crawl.elapsed.as_secs_f64(),
        report.crawl.count(CrawlStatus::Full),
        report.crawl.count(CrawlStatus::ThinOnly),
        report.crawl.count(CrawlStatus::Failed),
        100.0 * report.crawl.coverage()
    );
    println!(
        "parse stage: {} records at {:.0} records/s ({} lines labeled, {} registrant blocks)",
        report.parse.records,
        report.parse.records_per_sec(),
        report.parse.lines_labeled,
        report.parse.registrant_blocks
    );
    println!(
        "survey: {} records aggregated; top registrars: {}",
        report.survey.total,
        report
            .survey
            .registrar_all
            .top(3)
            .into_iter()
            .map(|(name, n)| format!("{name} ({n})"))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
