//! Crawl a simulated `.com` ecosystem over real loopback TCP — thin
//! registry, per-registrar thick servers, rate limits, faults — then
//! parse everything that was crawled (the paper's §4.1 pipeline).
//!
//! ```text
//! cargo run --release --example crawl_and_parse
//! ```

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use whoisml::gen::corpus::{generate_corpus, GenConfig};
use whoisml::model::{BlockLabel, RawRecord, RegistrantLabel};
use whoisml::net::crawler::CrawlStatus;
use whoisml::net::{
    Crawler, CrawlerConfig, FaultConfig, InMemoryStore, RateLimitConfig, ServerConfig, WhoisServer,
};
use whoisml::parser::{ParserConfig, TrainExample, WhoisParser};

fn main() {
    // Build the ecosystem: 200 domains across ~30 registrars.
    println!("generating 200 domains and starting the server fleet...");
    let corpus = generate_corpus(GenConfig::new(99, 200));
    let mut thin = InMemoryStore::new();
    let mut per_registrar: HashMap<&str, InMemoryStore> = HashMap::new();
    for d in &corpus {
        thin.insert(&d.facts.domain, d.thin_text());
        per_registrar
            .entry(d.registrar.whois_server)
            .or_default()
            .insert(&d.facts.domain, d.rendered.text());
    }

    let registry = WhoisServer::start(thin, ServerConfig::default()).expect("registry");
    let mut resolver = HashMap::new();
    let mut servers = Vec::new();
    for (i, (host, store)) in per_registrar.into_iter().enumerate() {
        let server = WhoisServer::start(
            store,
            ServerConfig {
                rate_limit: RateLimitConfig {
                    burst: 10,
                    per_second: 500.0,
                    penalty: Duration::from_millis(20),
                },
                faults: FaultConfig {
                    drop_chance: 0.05,
                    empty_chance: 0.02,
                    garble_chance: 0.01,
                },
                fault_seed: i as u64,
                ..Default::default()
            },
        )
        .expect("registrar server");
        resolver.insert(host.to_string(), server.addr());
        servers.push(server);
    }
    println!("{} registrar servers listening on loopback", servers.len());

    // Crawl: thin query -> referral -> thick query, with rate inference.
    let crawler = Arc::new(Crawler::new(
        registry.addr(),
        resolver,
        CrawlerConfig::default(),
    ));
    let zone: Vec<String> = corpus.iter().map(|d| d.facts.domain.clone()).collect();
    let report = crawler.crawl(&zone);
    println!(
        "crawl finished in {:.1}s: {} full, {} thin-only, {} failed ({:.1}% coverage)",
        report.elapsed.as_secs_f64(),
        report.count(CrawlStatus::Full),
        report.count(CrawlStatus::ThinOnly),
        report.count(CrawlStatus::Failed),
        100.0 * report.coverage()
    );

    // Train a parser on labeled examples and parse the crawl output.
    let first: Vec<TrainExample<BlockLabel>> = corpus
        .iter()
        .take(150)
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect();
    let second: Vec<TrainExample<RegistrantLabel>> = corpus
        .iter()
        .take(150)
        .filter_map(|d| {
            let reg = d.registrant_labels();
            (!reg.is_empty()).then(|| TrainExample {
                text: reg.texts().join("\n"),
                labels: reg.labels(),
            })
        })
        .collect();
    let parser = WhoisParser::train(&first, &second, &ParserConfig::default());

    let mut extracted = 0;
    for result in &report.results {
        if let Some(thick) = &result.thick {
            let parsed = parser.parse(&RawRecord::new(result.domain.clone(), thick.clone()));
            if parsed.has_registrant() {
                extracted += 1;
            }
        }
    }
    println!(
        "parsed {extracted}/{} crawled thick records with a registrant extracted",
        report.count(CrawlStatus::Full)
    );
}
