//! Quickstart: train the two-level statistical parser on labeled records
//! and parse an unseen one into structured form.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use whoisml::gen::corpus::{generate_corpus, GenConfig};
use whoisml::model::{BlockLabel, RegistrantLabel};
use whoisml::parser::{ParserConfig, TrainExample, WhoisParser};

fn main() {
    // 1. Labeled training data. Here it comes from the calibrated
    //    generator; in a real deployment you would hand-label ~100
    //    records (the paper reaches >98% line accuracy with 100).
    println!("generating 300 labeled training records...");
    let corpus = generate_corpus(GenConfig::new(2024, 320));
    let (train, test) = corpus.split_at(300);

    let first: Vec<TrainExample<BlockLabel>> = train
        .iter()
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect();
    let second: Vec<TrainExample<RegistrantLabel>> = train
        .iter()
        .filter_map(|d| {
            let reg = d.registrant_labels();
            (!reg.is_empty()).then(|| TrainExample {
                text: reg.texts().join("\n"),
                labels: reg.labels(),
            })
        })
        .collect();

    // 2. Train both CRF levels (L-BFGS, parallel gradient).
    println!("training the two-level CRF parser...");
    let parser = WhoisParser::train(&first, &second, &ParserConfig::default());

    // 3. Parse an unseen record.
    let unseen = &test[0];
    let raw = unseen.raw();
    println!("\n--- raw record for {} ---\n{}", raw.domain, raw.text);

    let parsed = parser.parse(&raw);
    println!("--- structured parse ---");
    println!("registrar:    {:?}", parsed.registrar);
    println!("whois server: {:?}", parsed.whois_server);
    println!("created:      {:?}", parsed.created);
    println!("expires:      {:?}", parsed.expires);
    println!("name servers: {:?}", parsed.name_servers);
    if let Some(reg) = &parsed.registrant {
        println!("registrant:");
        println!("  name:     {:?}", reg.name);
        println!("  org:      {:?}", reg.org);
        println!("  city:     {:?}", reg.city);
        println!("  country:  {:?}", reg.country);
        println!("  email:    {:?}", reg.email);
    }

    // 4. And the per-line labels, if you want the raw segmentation.
    println!("\n--- first-level labels ---");
    let labels = parser.label_blocks(&raw.text);
    for (line, label) in raw.lines().iter().zip(&labels) {
        println!("{:<11} | {}", label.to_string(), line);
    }

    // 5. Save the model for later use.
    let json = parser.to_json().expect("serialize model");
    println!("\nserialized model: {} KiB", json.len() / 1024);
}
