//! Walkthrough: run the WHOIS parse *service* end to end.
//!
//! ```text
//! cargo run --release --example serve_and_query
//! ```
//!
//! 1. Train a model on a synthetic corpus and start `whois-serve`.
//! 2. Query it: `PARSE` a record twice (miss, then cache hit).
//! 3. Retrain and hot-swap the model by dropping a new version into the
//!    watched model directory — zero downtime, generation bumps.
//! 4. Read the `STATS` verb and shut down gracefully.

use std::sync::Arc;
use std::time::{Duration, Instant};
use whoisml::gen::corpus::{generate_corpus, GenConfig};
use whoisml::model::{BlockLabel, RegistrantLabel};
use whoisml::parser::{ParserConfig, TrainExample, WhoisParser};
use whoisml::serve::{ModelRegistry, ModelWatcher, ParseService, ServeClient, ServeConfig};

fn train(seed: u64, docs: usize) -> WhoisParser {
    let corpus = generate_corpus(GenConfig::new(seed, docs));
    let first: Vec<TrainExample<BlockLabel>> = corpus
        .iter()
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect();
    let second: Vec<TrainExample<RegistrantLabel>> = corpus
        .iter()
        .filter_map(|d| {
            let reg = d.registrant_labels();
            (!reg.is_empty()).then(|| TrainExample {
                text: reg.texts().join("\n"),
                labels: reg.labels(),
            })
        })
        .collect();
    WhoisParser::train(&first, &second, &ParserConfig::default())
}

fn main() {
    // 1. Train the initial model, start the service, watch a model dir.
    println!("== 1. train + serve ==");
    let model_dir =
        std::env::temp_dir().join(format!("whoisml-example-models-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&model_dir);
    std::fs::create_dir_all(&model_dir).unwrap();

    let registry = Arc::new(ModelRegistry::new(train(7, 60), "model-0001", 1));
    let watcher = ModelWatcher::start(registry.clone(), &model_dir, Duration::from_millis(50));
    let mut service = ParseService::start(
        registry.clone(),
        ServeConfig {
            workers: 2,
            ..Default::default()
        },
        0,
    )
    .unwrap();
    println!("serving on {}", service.addr());

    // 2. Parse one record twice: a miss that pays for the parse, then a
    // cache hit that skips parse and serialization entirely.
    println!("\n== 2. parse (miss, then hit) ==");
    let corpus = generate_corpus(GenConfig::new(99, 5));
    let sample = &corpus[0];
    let mut client = ServeClient::connect(service.addr()).unwrap();
    for pass in ["miss", "hit"] {
        let t = Instant::now();
        let reply = client
            .parse(&sample.facts.domain, &sample.rendered.text())
            .unwrap();
        println!(
            "{pass}: {:?} via {} → registrar {:?}",
            t.elapsed(),
            reply.model.unwrap(),
            reply.record.unwrap().registrar.unwrap_or_default()
        );
    }

    // 3. Hot-swap: publish a retrained model into the watched directory
    // (write to a temp name, then rename — atomic publish).
    println!("\n== 3. hot model swap ==");
    let fresh = train(23, 60);
    std::fs::write(model_dir.join("model-0002.tmp"), fresh.to_json().unwrap()).unwrap();
    std::fs::rename(
        model_dir.join("model-0002.tmp"),
        model_dir.join("model-0002.json"),
    )
    .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while registry.current().version != "model-0002" && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let reply = client
        .parse(&sample.facts.domain, &sample.rendered.text())
        .unwrap();
    println!(
        "after swap: served by {} (generation {})",
        reply.model.unwrap(),
        registry.current().generation
    );

    // 4. Stats + graceful drain.
    println!("\n== 4. stats + shutdown ==");
    let stats = client.stats().unwrap();
    println!(
        "requests {} | hits {} | misses {} | hit rate {:.0}% | parses {} | swaps {}",
        stats.requests,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_hit_rate * 100.0,
        stats.parses,
        stats.model_swaps
    );
    println!(
        "mean latency: cache {:.1}µs | parse {:.1}µs | serialize {:.1}µs",
        stats.cache_lookup.mean_us, stats.parse.mean_us, stats.serialize.mean_us
    );
    let report = service.shutdown();
    println!("drained: {report:?}");
    watcher.stop();
    let _ = std::fs::remove_dir_all(&model_dir);
}
