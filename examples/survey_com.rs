//! Survey a `.com`-like corpus through the full pipeline: generate →
//! parse with the trained CRF → aggregate registrant countries,
//! registrars, and privacy services (the paper's §6 analysis in
//! miniature).
//!
//! ```text
//! cargo run --release --example survey_com [-- N]
//! ```

use whoisml::gen::corpus::{generate_corpus, GenConfig};
use whoisml::model::{BlockLabel, RegistrantLabel};
use whoisml::parser::{ParserConfig, TrainExample, WhoisParser};
use whoisml::survey::Survey;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5000);
    println!("generating {n} records...");
    let corpus = generate_corpus(GenConfig::new(5150, n));

    let train = &corpus[..500.min(n)];
    let first: Vec<TrainExample<BlockLabel>> = train
        .iter()
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect();
    let second: Vec<TrainExample<RegistrantLabel>> = train
        .iter()
        .filter_map(|d| {
            let reg = d.registrant_labels();
            (!reg.is_empty()).then(|| TrainExample {
                text: reg.texts().join("\n"),
                labels: reg.labels(),
            })
        })
        .collect();
    println!("training on {} labeled records...", train.len());
    let parser = WhoisParser::train(&first, &second, &ParserConfig::default());

    println!("parsing and aggregating...");
    let mut survey = Survey::new();
    for d in &corpus {
        survey.add(&parser.parse(&d.raw()), false);
    }

    println!();
    println!(
        "{}",
        survey
            .country_all
            .render_table("Top registrant countries", 8)
    );
    println!("{}", survey.registrar_all.render_table("Top registrars", 8));
    println!(
        "{}",
        survey
            .privacy_services
            .render_table("Privacy-protection services", 6)
    );
    println!(
        "privacy adoption: {:.1}% of surveyed domains",
        100.0 * survey.privacy_services.total() as f64 / survey.total.max(1) as f64
    );
    println!("\n{}", survey.render_year_histogram());
}
